//! Dispute-resolution service: many claims, many claimants, one compile.
//!
//! Two owners (Alice and Carol) each deploy a watermarked model; a wave of
//! ownership claims — genuine ones from the owners, forged ones from
//! Mallory — arrives at the judge's `DisputeService`. The service compiles
//! each registered deployment exactly once and resolves the whole docket
//! concurrently, sharding every disguised verification batch across worker
//! threads.
//!
//! Run with `cargo run --release --example serve_disputes`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;
use wdte::prelude::*;

fn embed(spec: SyntheticSpec, identity: &str, seed: u64) -> (WatermarkOutcome, wdte::data::Dataset) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let dataset = spec.generate(&mut rng);
    let (train, test) = dataset.split_stratified(0.8, &mut rng);
    let signature = Signature::from_identity(identity, 16);
    let config = WatermarkConfig {
        num_trees: 16,
        ..WatermarkConfig::fast()
    };
    let outcome = Watermarker::new(config)
        .embed(&train, &signature, &mut rng)
        .expect("embedding succeeds");
    (outcome, test)
}

fn main() {
    let (alice, alice_test) = embed(
        SyntheticSpec::breast_cancer_like().scaled(0.7),
        "alice@modelcorp.example",
        101,
    );
    let (carol, carol_test) = embed(
        SyntheticSpec::ijcnn1_like().scaled(0.06),
        "carol@mlstartup.example",
        202,
    );

    // The judge registers both suspect deployments: one compile each,
    // shared by every claim resolved below.
    let service = DisputeService::new();
    service.register("alice-deployment", &alice.model);
    service.register("carol-deployment", &carol.model);
    println!(
        "registered {} deployments ({} compilations)",
        service.len(),
        service.compile_count()
    );

    // The docket: genuine claims from both owners, plus Mallory filing her
    // own signature with a trigger set sampled from public data against
    // both deployments.
    let genuine_alice = OwnershipClaim::new(
        alice.signature.clone(),
        alice.trigger_set.clone(),
        alice_test.clone(),
    );
    let genuine_carol = OwnershipClaim::new(
        carol.signature.clone(),
        carol.trigger_set.clone(),
        carol_test.clone(),
    );
    let mallory_signature = Signature::from_identity("mallory@pirate.example", 16);
    let mallory_indices: Vec<usize> = (0..alice.trigger_set.len()).collect();
    let forged_vs_alice = OwnershipClaim::new(
        mallory_signature.clone(),
        alice_test.select(&mallory_indices).expect("test set is large enough"),
        alice_test.clone(),
    );
    let forged_vs_carol = OwnershipClaim::new(
        mallory_signature,
        carol_test
            .select(&(0..carol.trigger_set.len()).collect::<Vec<_>>())
            .expect("large enough"),
        carol_test.clone(),
    );
    let mut docket = Vec::new();
    for _ in 0..16 {
        docket.push(Dispute::new("alice-deployment", genuine_alice.clone()));
        docket.push(Dispute::new("carol-deployment", genuine_carol.clone()));
        docket.push(Dispute::new("alice-deployment", forged_vs_alice.clone()));
        docket.push(Dispute::new("carol-deployment", forged_vs_carol.clone()));
    }

    let start = Instant::now();
    let verdicts = service.resolve_many(&docket);
    let elapsed = start.elapsed();

    let mut upheld = 0usize;
    let mut rejected = 0usize;
    let mut queries = 0usize;
    for verdict in &verdicts {
        let report = verdict.as_ref().expect("every dispute names a registered model");
        if report.verified {
            upheld += 1;
        } else {
            rejected += 1;
        }
        queries += report.queries_issued;
    }
    println!(
        "resolved {} disputes in {:.1} ms ({:.0} disputes/s, {} black-box queries)",
        docket.len(),
        elapsed.as_secs_f64() * 1e3,
        docket.len() as f64 / elapsed.as_secs_f64(),
        queries
    );
    println!("  upheld:   {upheld} (the owners' genuine claims)");
    println!("  rejected: {rejected} (Mallory's forgeries)");
    println!("  compilations performed, total: {}", service.compile_count());

    assert_eq!(upheld, 32, "every genuine claim must verify");
    assert_eq!(rejected, 32, "every forged claim must fail");
    assert_eq!(service.compile_count(), 2, "one compile per deployment, ever");
    println!("service docket resolved correctly.");
}
