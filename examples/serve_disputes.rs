//! Judge as a service: a dispute docket resolved over TCP.
//!
//! Two owners (Alice and Carol) each deploy a watermarked model; the judge
//! runs as a network service speaking the versioned WDTP protocol. One
//! deployment is registered directly on the shared service (the judge's
//! own boot path), the other arrives over the wire through
//! `DisputeClient::register_model`. A 64-claim docket — genuine claims
//! from the owners, forged ones from Mallory — is then resolved through
//! the socket, and the example asserts the served verdicts are
//! *bit-identical* to resolving the same docket in process.
//!
//! Run with `cargo run --release --example serve_disputes`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;
use wdte::prelude::*;

fn embed(spec: SyntheticSpec, identity: &str, seed: u64) -> (WatermarkOutcome, wdte::data::Dataset) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let dataset = spec.generate(&mut rng);
    let (train, test) = dataset.split_stratified(0.8, &mut rng);
    let signature = Signature::from_identity(identity, 16);
    let config = WatermarkConfig {
        num_trees: 16,
        ..WatermarkConfig::fast()
    };
    let outcome = Watermarker::new(config)
        .embed(&train, &signature, &mut rng)
        .expect("embedding succeeds");
    (outcome, test)
}

fn main() {
    let (alice, alice_test) = embed(
        SyntheticSpec::breast_cancer_like().scaled(0.7),
        "alice@modelcorp.example",
        101,
    );
    let (carol, carol_test) = embed(
        SyntheticSpec::ijcnn1_like().scaled(0.06),
        "carol@mlstartup.example",
        202,
    );

    // The judge boots with Alice's deployment already registered (as a
    // warm start would) and goes online on an ephemeral loopback port.
    let service = Arc::new(
        DisputeService::builder()
            .max_docket(1024)
            .build()
            .expect("an empty builder always builds"),
    );
    service.register("alice-deployment", &alice.model);
    let server = JudgeServer::bind("127.0.0.1:0", Arc::clone(&service), ServerConfig::default())
        .expect("loopback bind succeeds")
        .spawn();
    println!("judge listening on {}", server.addr());

    // Carol registers her deployment over the wire.
    let mut client = DisputeClient::connect(server.addr()).expect("client connects");
    let pong = client.ping().expect("judge answers ping");
    println!(
        "judge speaks protocol v{} ({} model pre-registered)",
        pong.protocol_version, pong.models_registered
    );
    client
        .register_model("carol-deployment", &carol.model)
        .expect("registration over the wire succeeds");
    println!(
        "registered deployments: {:?}",
        client.list_models().expect("listing")
    );

    // The docket: genuine claims from both owners, plus Mallory filing her
    // own signature with a trigger set sampled from public data.
    let genuine_alice = OwnershipClaim::new(
        alice.signature.clone(),
        alice.trigger_set.clone(),
        alice_test.clone(),
    );
    let genuine_carol = OwnershipClaim::new(
        carol.signature.clone(),
        carol.trigger_set.clone(),
        carol_test.clone(),
    );
    let mallory_signature = Signature::from_identity("mallory@pirate.example", 16);
    let forged_vs_alice = OwnershipClaim::new(
        mallory_signature.clone(),
        alice_test
            .select(&(0..alice.trigger_set.len()).collect::<Vec<_>>())
            .expect("test set is large enough"),
        alice_test.clone(),
    );
    let forged_vs_carol = OwnershipClaim::new(
        mallory_signature,
        carol_test
            .select(&(0..carol.trigger_set.len()).collect::<Vec<_>>())
            .expect("large enough"),
        carol_test.clone(),
    );
    let mut docket = Vec::new();
    for _ in 0..16 {
        docket.push(Dispute::new("alice-deployment", genuine_alice.clone()));
        docket.push(Dispute::new("carol-deployment", genuine_carol.clone()));
        docket.push(Dispute::new("alice-deployment", forged_vs_alice.clone()));
        docket.push(Dispute::new("carol-deployment", forged_vs_carol.clone()));
    }

    let start = Instant::now();
    let served = client.resolve_docket(&docket).expect("docket resolves over the wire");
    let elapsed = start.elapsed();

    let mut upheld = 0usize;
    let mut rejected = 0usize;
    let mut queries = 0usize;
    for verdict in &served {
        let report = verdict.as_ref().expect("every dispute names a registered model");
        if report.verified {
            upheld += 1;
        } else {
            rejected += 1;
        }
        queries += report.queries_issued;
    }
    println!(
        "resolved {} disputes over TCP in {:.1} ms ({:.0} claims/s served, {} black-box queries)",
        docket.len(),
        elapsed.as_secs_f64() * 1e3,
        docket.len() as f64 / elapsed.as_secs_f64(),
        queries
    );
    println!("  upheld:   {upheld} (the owners' genuine claims)");
    println!("  rejected: {rejected} (Mallory's forgeries)");
    println!("  compilations performed, total: {}", service.compile_count());

    // The wire must not change a single bit of any verdict.
    let local = service.resolve_many(&docket);
    assert_eq!(
        served, local,
        "served verdicts must be bit-identical to in-process resolution"
    );

    assert_eq!(upheld, 32, "every genuine claim must verify");
    assert_eq!(rejected, 32, "every forged claim must fail");
    assert_eq!(service.compile_count(), 2, "one compile per deployment, ever");

    drop(client);
    server.shutdown().expect("clean shutdown");
    println!("served docket matches in-process resolution bit for bit.");
}
