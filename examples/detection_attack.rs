//! Detection attack demo: an attacker with white-box access inspects the
//! structure of the trees (depth, number of leaves) and tries to
//! reconstruct the owner's signature, using both strategies evaluated in
//! Table 2 of the paper.
//!
//! Run with `cargo run --release --example detection_attack`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte::prelude::*;

fn main() {
    let mut rng = SmallRng::seed_from_u64(123);

    let dataset = SyntheticSpec::breast_cancer_like().generate(&mut rng);
    let (train, _test) = dataset.split_stratified(0.8, &mut rng);
    let signature = Signature::random(18, 0.5, &mut rng);
    let config = WatermarkConfig {
        num_trees: 18,
        trigger_fraction: 0.02,
        ..WatermarkConfig::fast()
    };
    let outcome = Watermarker::new(config)
        .embed(&train, &signature, &mut rng)
        .expect("embedding succeeds");

    println!("true signature: {signature}");
    println!();
    println!(
        "{:<10} {:<16} {:>10} {:>8} {:>11} {:>18}",
        "feature", "strategy", "correct", "wrong", "uncertain", "guessed accuracy"
    );
    for feature in [DetectionFeature::Depth, DetectionFeature::Leaves] {
        for (strategy, name) in [
            (DetectionStrategy::MeanStdBands, "mean±std bands"),
            (DetectionStrategy::MeanThreshold, "mean threshold"),
        ] {
            let report = evaluate_detection(&outcome.model, &signature, feature, strategy);
            println!(
                "{:<10} {:<16} {:>10} {:>8} {:>11} {:>18.3}",
                feature.name(),
                name,
                report.correct,
                report.wrong,
                report.uncertain,
                report.guessed_accuracy()
            );
        }
    }
    println!();
    println!(
        "Thanks to the Adjust(H) heuristic both kinds of trees have similar structure, so the \
         attacker cannot reliably separate 0-bit trees from 1-bit trees."
    );
}
