//! Ownership dispute resolved entirely from files on disk.
//!
//! The paper's deployment story is train-once / verify-many: Alice trains
//! and watermarks a model *once*, serializes it, and from then on every
//! party works with artefacts loaded from disk — Bob serves the stolen
//! model file, Charlie the judge receives Alice's claim file and queries
//! the deployment black-box through the compiled batch inference path.
//!
//! This example runs that lifecycle end to end:
//!
//! 1. Alice embeds her signature and saves the model (compact binary),
//!    the compiled inference form (auditable JSON) and her ownership claim
//!    under `results/dispute/`.
//! 2. Everything in memory is dropped; the dispute is adjudicated from the
//!    files alone: the judge loads the compiled model and the claim,
//!    verifies Alice's signature and runs the structural detection attack
//!    Bob might have attempted before re-deploying.
//! 3. A tampered model file demonstrates that corruption surfaces as a
//!    typed error rather than a wrong verdict.
//!
//! Run with `cargo run --release --example dispute_from_files`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte::persist;
use wdte::prelude::*;

fn main() {
    let dir = std::path::Path::new("results").join("dispute");
    let model_path = dir.join("alice.model.wdte");
    let compiled_path = dir.join("alice.compiled.json");
    let claim_path = dir.join("alice.claim.wdte");

    // ---------------------------------------------------------------
    // Act 1 — Alice trains, watermarks and ships artefacts to disk.
    // ---------------------------------------------------------------
    let mut rng = SmallRng::seed_from_u64(41);
    let dataset = SyntheticSpec::breast_cancer_like().generate(&mut rng);
    let (train, test) = dataset.split_stratified(0.8, &mut rng);
    let signature = Signature::from_identity("alice@modelcorp.example", 16);
    let config = WatermarkConfig {
        num_trees: 16,
        trigger_fraction: 0.02,
        ..WatermarkConfig::fast()
    };
    let outcome = Watermarker::new(config)
        .embed(&train, &signature, &mut rng)
        .expect("embedding succeeds");
    let compiled = CompiledForest::compile(&outcome.model);
    let claim = OwnershipClaim::new(signature, outcome.trigger_set.clone(), test.clone());

    persist::save(&model_path, &outcome.model, persist::Format::Binary).expect("save model");
    persist::save(&compiled_path, &compiled, persist::Format::Json).expect("save compiled model");
    persist::save(&claim_path, &claim, persist::Format::Binary).expect("save claim");
    println!("Alice shipped her artefacts to {}:", dir.display());
    for path in [&model_path, &compiled_path, &claim_path] {
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        println!("  {} ({bytes} bytes)", path.display());
    }
    drop((outcome, compiled, claim, train));

    // ---------------------------------------------------------------
    // Act 2 — the dispute is adjudicated from the files alone.
    // ---------------------------------------------------------------
    let deployment: CompiledForest = persist::load(&compiled_path).expect("load compiled model");
    let alice_claim: OwnershipClaim = persist::load(&claim_path).expect("load claim");
    let verdict = verify_ownership(&deployment, &alice_claim);
    println!(
        "\nAlice's claim against the loaded deployment: verified={} (bit agreement {:.3}, {} queries)",
        verdict.verified, verdict.bit_agreement, verdict.queries_issued
    );

    // The pointer-tree model round-trips too and agrees with the compiled
    // artefact — the two files describe the same function.
    let pointer_model: RandomForest = persist::load(&model_path).expect("load model");
    let pointer_verdict = verify_ownership(&pointer_model, &alice_claim);
    assert_eq!(verdict, pointer_verdict);

    // Mallory's fabricated claim fails against the same files.
    let mut rng = SmallRng::seed_from_u64(42);
    let mallory_claim = OwnershipClaim::new(
        Signature::from_identity("mallory@pirate.example", 16),
        test.select(&test.sample_indices(alice_claim.trigger_set.len(), &mut rng))
            .expect("test set is large enough"),
        test.clone(),
    );
    let mallory_verdict = verify_ownership(&deployment, &mallory_claim);
    println!(
        "Mallory's claim: verified={} (bit agreement {:.3})",
        mallory_verdict.verified, mallory_verdict.bit_agreement
    );

    // Bob inspects the structure of the loaded artefact, trying to locate
    // the watermarked trees before re-deploying.
    let detection = evaluate_detection(
        &deployment,
        &alice_claim.signature,
        DetectionFeature::Depth,
        DetectionStrategy::MeanThreshold,
    );
    println!(
        "Bob's detection scan on the loaded artefact: {} correct, {} wrong of {} trees",
        detection.correct,
        detection.wrong,
        deployment.num_trees()
    );

    // ---------------------------------------------------------------
    // Act 3 — tampered files fail loudly, not wrongly.
    // ---------------------------------------------------------------
    let mut tampered = std::fs::read(&model_path).expect("read model file");
    let mid = tampered.len() / 2;
    tampered.truncate(mid);
    let tampered_path = dir.join("alice.model.tampered.wdte");
    std::fs::write(&tampered_path, &tampered).expect("write tampered file");
    match persist::load::<RandomForest>(&tampered_path) {
        Err(err) => println!("\nTampered model file rejected: {err}"),
        Ok(_) => unreachable!("a truncated artefact must not load"),
    }

    assert!(verdict.verified && !mallory_verdict.verified);
    assert!(detection.correct < deployment.num_trees());
    println!("\nCharlie rules in favour of Alice — from files alone.");
}
