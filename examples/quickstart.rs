//! Quickstart: watermark a random forest, verify ownership, inspect the
//! accuracy cost.
//!
//! Run with `cargo run --release --example quickstart`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte::prelude::*;

fn main() {
    let mut rng = SmallRng::seed_from_u64(42);

    // 1. Data: a synthetic stand-in for the breast-cancer dataset
    //    (569 instances, 30 features, 63%/37% class balance).
    let dataset = SyntheticSpec::breast_cancer_like().generate(&mut rng);
    let (train, test) = dataset.split_stratified(0.8, &mut rng);
    println!("training on {} instances, testing on {}", train.len(), test.len());

    // 2. Owner identity: a 16-bit signature with half of the bits set.
    let signature = Signature::random(16, 0.5, &mut rng);
    println!("owner signature: {signature}");

    // 3. Embed the watermark (Algorithm 1) and train a standard baseline
    //    with the same pipeline for comparison.
    let config = WatermarkConfig {
        num_trees: 16,
        trigger_fraction: 0.02,
        ..WatermarkConfig::fast()
    };
    let watermarker = Watermarker::new(config);
    let outcome = watermarker.embed(&train, &signature, &mut rng).expect("embedding succeeds");
    let baseline = watermarker.train_baseline(&train, &mut rng);

    println!("trigger set size: {} instances", outcome.trigger_set.len());
    println!("adjusted tree budget: {:?}", outcome.adjusted_tree_params);
    println!("watermarked accuracy: {:.4}", outcome.model.accuracy(&test));
    println!("standard accuracy:    {:.4}", baseline.accuracy(&test));

    // 4. Verify ownership through the black-box protocol: the owner hands
    //    the judge the signature, the trigger set and a disguising test set.
    let claim = OwnershipClaim::new(signature.clone(), outcome.trigger_set.clone(), test.clone());
    let report = verify_ownership(&outcome.model, &claim);
    println!(
        "verification: verified={} bit agreement={:.3} ({} black-box queries)",
        report.verified, report.bit_agreement, report.queries_issued
    );

    // 5. The same claim fails against an unrelated model.
    let unrelated_report = verify_ownership(&baseline, &claim);
    println!(
        "verification against an unrelated model: verified={} bit agreement={:.3}",
        unrelated_report.verified, unrelated_report.bit_agreement
    );
}
