//! Ownership dispute: the full three-party protocol of the paper.
//!
//! Alice trains and watermarks a model; Bob obtains a copy (white-box, but
//! unable to modify it); Mallory falsely claims ownership with her own
//! signature and trigger set; Charlie, the judge, queries Bob's deployment
//! black-box and decides both claims.
//!
//! Run with `cargo run --release --example ownership_dispute`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte::prelude::*;

fn main() {
    let mut rng = SmallRng::seed_from_u64(7);

    // Alice's private, expensively curated training data (ijcnn1-like:
    // imbalanced, 22 features).
    let dataset = SyntheticSpec::ijcnn1_like().scaled(0.08).generate(&mut rng);
    let (train, test) = dataset.split_stratified(0.8, &mut rng);

    // Alice derives her signature from her identity and embeds it.
    let alice_signature = Signature::from_identity("alice@modelcorp.example", 20);
    let config = WatermarkConfig {
        num_trees: 20,
        trigger_fraction: 0.02,
        ..WatermarkConfig::fast()
    };
    let watermarker = Watermarker::new(config);
    let outcome = watermarker
        .embed(&train, &alice_signature, &mut rng)
        .expect("embedding succeeds");
    println!(
        "Alice deploys a watermarked model ({} trees).",
        outcome.model.num_trees()
    );
    println!("  test accuracy: {:.4}", outcome.model.accuracy(&test));

    // Bob steals the model and serves it behind an API: the judge only gets
    // black-box access (per-tree predictions).
    let bobs_deployment = outcome.model.clone();

    // Charlie adjudicates Alice's claim.
    let alice_claim =
        OwnershipClaim::new(alice_signature.clone(), outcome.trigger_set.clone(), test.clone());
    let alice_verdict = verify_ownership(&bobs_deployment, &alice_claim);
    println!(
        "Alice's claim: verified={} (bit agreement {:.3})",
        alice_verdict.verified, alice_verdict.bit_agreement
    );

    // Mallory tries to claim the same model with a forged signature and a
    // trigger set she simply samples from public test data. Without solving
    // the NP-hard forgery problem her claim fails.
    let mallory_signature = Signature::from_identity("mallory@pirate.example", 20);
    let mallory_trigger_indices: Vec<usize> = (0..outcome.trigger_set.len()).collect();
    let mallory_trigger = test.select(&mallory_trigger_indices).expect("test set is large enough");
    let mallory_claim = OwnershipClaim::new(mallory_signature, mallory_trigger, test.clone());
    let mallory_verdict = verify_ownership(&bobs_deployment, &mallory_claim);
    println!(
        "Mallory's claim: verified={} (bit agreement {:.3})",
        mallory_verdict.verified, mallory_verdict.bit_agreement
    );

    assert!(alice_verdict.verified && !mallory_verdict.verified);
    println!("Charlie rules in favour of Alice.");
}
