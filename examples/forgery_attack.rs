//! Forgery attack demo: an attacker with white-box access to a watermarked
//! model tries to forge a trigger set for a fake signature using the
//! constraint solver (the role Z3 plays in the paper), under increasing
//! distortion budgets ε.
//!
//! Run with `cargo run --release --example forgery_attack`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte::prelude::*;
use wdte::solver::LeafIndex;
use wdte_core::forge_trigger_set;

fn main() {
    let mut rng = SmallRng::seed_from_u64(99);

    // Victim: a watermarked model over breast-cancer-like data.
    let dataset = SyntheticSpec::breast_cancer_like().generate(&mut rng);
    let (train, test) = dataset.split_stratified(0.8, &mut rng);
    let signature = Signature::random(14, 0.5, &mut rng);
    let config = WatermarkConfig {
        num_trees: 14,
        trigger_fraction: 0.02,
        ..WatermarkConfig::fast()
    };
    let outcome = Watermarker::new(config)
        .embed(&train, &signature, &mut rng)
        .expect("embedding succeeds");
    println!(
        "victim model: {} trees, {} total leaves, legitimate trigger set of {} instances",
        outcome.model.num_trees(),
        outcome.model.total_leaves(),
        outcome.trigger_set.len()
    );

    // Attacker: fake signature + per-instance constraint solving.
    let fake_signature = Signature::random(outcome.model.num_trees(), 0.5, &mut rng);
    let leaf_index = LeafIndex::new(&outcome.model);
    println!("attacker's fake signature: {fake_signature}");
    println!();
    println!(
        "{:>8} {:>12} {:>16} {:>18}",
        "epsilon", "attempts", "forged", "mean distortion"
    );
    for epsilon in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let attack_config = ForgeryAttackConfig {
            num_fake_signatures: 1,
            ones_fraction: 0.5,
            epsilon,
            solver: SolverConfig::fast(),
            max_instances: Some(60),
        };
        let result = forge_trigger_set(
            &outcome.model,
            &leaf_index,
            &test,
            &fake_signature,
            &attack_config,
        );
        let mean_distortion = if result.forged.is_empty() {
            0.0
        } else {
            result.forged.iter().map(|f| f.distortion).sum::<f64>() / result.forged.len() as f64
        };
        println!(
            "{:>8.1} {:>12} {:>16} {:>18.3}",
            epsilon,
            result.attempts,
            result.forged_count(),
            mean_distortion
        );
    }
    println!();
    println!(
        "Small distortion budgets forge almost nothing; budgets large enough to forge a \
         trigger set of comparable size require distortions that are easy to flag."
    );
}
