//! # wdte — Watermarking Decision Tree Ensembles
//!
//! Facade crate re-exporting the full public API of the reproduction of
//! *Watermarking Decision Tree Ensembles* (Calzavara, Cazzaro, Gera,
//! Orlando — EDBT 2025).
//!
//! The workspace is organised in four library crates, all re-exported here:
//!
//! * [`data`] — dataset substrate: dense matrices, synthetic dataset
//!   generators standing in for MNIST2-6 / breast-cancer / ijcnn1,
//!   train/test splits, stratified sampling and evaluation metrics.
//! * [`trees`] — weighted CART decision trees, random forests *without*
//!   bootstrap exposing per-tree predictions, and grid-search tuning.
//! * [`solver`] — the constraint-solving substrate replacing Z3: leaf-box
//!   DPLL search for forging ensemble output patterns under an L∞ bound,
//!   plus the 3SAT→ensemble reduction of Theorem 1.
//! * [`core`] — the paper's contribution: watermark creation (Algorithm 1),
//!   black-box verification, and the detection / suppression / forgery
//!   attack simulations of the security evaluation.
//! * [`server`] — "judge as a service": a TCP server and typed client
//!   speaking the versioned `WDTP` dispute-resolution protocol
//!   ([`core::proto`]), so the judge runs as its own process.
//!
//! ## Quickstart
//!
//! ```
//! use wdte::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! // A small learnable synthetic dataset (stand-in for breast-cancer).
//! let dataset = SyntheticSpec::breast_cancer_like().scaled(0.5).generate(&mut rng);
//! let (train, test) = dataset.split_train_test(0.8, &mut rng);
//!
//! // Watermark a 16-tree random forest with an 8-one signature.
//! let signature = Signature::random(16, 0.5, &mut rng);
//! let config = WatermarkConfig {
//!     num_trees: 16,
//!     trigger_fraction: 0.02,
//!     ..WatermarkConfig::fast()
//! };
//! let outcome = Watermarker::new(config).embed(&train, &signature, &mut rng).unwrap();
//!
//! // Black-box verification succeeds for the true owner.
//! let claim = OwnershipClaim::new(signature, outcome.trigger_set.clone(), test.clone());
//! let verdict = verify_ownership(&outcome.model, &claim);
//! assert!(verdict.verified);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wdte_core as core;
pub use wdte_core::{persist, proto};
pub use wdte_data as data;
pub use wdte_server as server;
pub use wdte_solver as solver;
pub use wdte_trees as trees;

/// Commonly used types, re-exported for `use wdte::prelude::*`.
pub mod prelude {
    pub use wdte_core::prelude::*;
    pub use wdte_data::prelude::*;
    pub use wdte_server::{ClientConfig, DisputeClient, JudgeServer, ServerConfig};
    pub use wdte_solver::prelude::*;
    pub use wdte_trees::prelude::*;
}
