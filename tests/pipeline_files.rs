//! End-to-end pipeline over the on-disk format: embed a watermark, persist
//! every artefact, drop the in-memory state, reload from disk, and run the
//! full verification + attack battery on the loaded model — the exact
//! lifecycle of a released model that later lands in front of a judge.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte::persist;
use wdte::prelude::*;
use wdte_core::watermark_holds;

/// Unique scratch directory per test (the integration harness may run
/// tests in parallel).
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wdte-pipeline-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn embed_save_load_verify_and_attack_from_disk() {
    let dir = scratch("full");
    let mut rng = SmallRng::seed_from_u64(90_001);
    let dataset = SyntheticSpec::breast_cancer_like().generate(&mut rng);
    let (train, test) = dataset.split_stratified(0.8, &mut rng);
    let signature = Signature::random(12, 0.5, &mut rng);
    let config = WatermarkConfig {
        num_trees: 12,
        trigger_fraction: 0.02,
        ..WatermarkConfig::fast()
    };
    let outcome = Watermarker::new(config)
        .embed(&train, &signature, &mut rng)
        .expect("embedding succeeds for the fixed seed");
    assert!(watermark_holds(&outcome.model, &signature, &outcome.trigger_set));

    // Persist every artefact a dispute needs, in both encodings.
    let claim = OwnershipClaim::new(signature.clone(), outcome.trigger_set.clone(), test.clone());
    let compiled = CompiledForest::compile(&outcome.model);
    persist::save(dir.join("model.wdte"), &outcome.model, persist::Format::Binary).unwrap();
    persist::save(dir.join("model.json"), &outcome.model, persist::Format::Json).unwrap();
    persist::save(dir.join("compiled.wdte"), &compiled, persist::Format::Binary).unwrap();
    persist::save(dir.join("claim.wdte"), &claim, persist::Format::Binary).unwrap();
    persist::save(
        dir.join("trigger.json"),
        &outcome.trigger_set,
        persist::Format::Json,
    )
    .unwrap();
    drop((outcome, compiled, claim));

    // Reload everything from disk.
    let model: RandomForest = persist::load(dir.join("model.wdte")).unwrap();
    let model_json: RandomForest = persist::load(dir.join("model.json")).unwrap();
    let compiled: CompiledForest = persist::load(dir.join("compiled.wdte")).unwrap();
    let claim: OwnershipClaim = persist::load(dir.join("claim.wdte")).unwrap();
    let trigger: wdte_data::Dataset = persist::load(dir.join("trigger.json")).unwrap();
    assert_eq!(
        model, model_json,
        "binary and JSON encodings describe the same model"
    );
    assert_eq!(trigger, claim.trigger_set);

    // Both loaded representations produce bit-identical predictions.
    let reloaded_compiled = CompiledForest::compile(&model);
    assert_eq!(reloaded_compiled, compiled);
    let batch = compiled.predict_all_batch(test.features());
    for (index, (row, _)) in test.iter().enumerate() {
        assert_eq!(batch.sample(index), model.predict_all(row).as_slice());
    }

    // The loaded model still verifies the watermark (paper outcome: the
    // genuine claim is accepted with full bit agreement)…
    let report = verify_ownership(&compiled, &claim);
    assert!(report.verified);
    assert!((report.bit_agreement - 1.0).abs() < 1e-12);
    assert_eq!(
        report.queries_issued,
        claim.trigger_set.len() + claim.test_set.len()
    );
    assert_eq!(report, verify_ownership(&model, &claim));

    // …while the structural detection attack on the loaded artefact cannot
    // reconstruct the signature (Table 2 outcome: far from m correct).
    for feature in [DetectionFeature::Depth, DetectionFeature::Leaves] {
        let detection = evaluate_detection(
            &compiled,
            &claim.signature,
            feature,
            DetectionStrategy::MeanThreshold,
        );
        assert_eq!(
            detection,
            evaluate_detection(
                &model,
                &claim.signature,
                feature,
                DetectionStrategy::MeanThreshold
            )
        );
        assert!(
            detection.correct < model.num_trees(),
            "detection must not perfectly recover the signature from a loaded model"
        );
    }

    // The forgery attack runs against the loaded model; every instance it
    // forges satisfies the attacker's pattern, and small distortion
    // budgets forge no more than generous ones (Figure 4 outcome).
    let mut rng = SmallRng::seed_from_u64(90_002);
    let forgery_config = ForgeryAttackConfig {
        num_fake_signatures: 2,
        epsilon: 0.5,
        max_instances: Some(15),
        solver: SolverConfig::fast(),
        ..ForgeryAttackConfig::default()
    };
    let results = run_forgery_attack(&model, &test, &forgery_config, &mut rng);
    assert_eq!(results.len(), 2);
    for result in &results {
        assert_eq!(result.attempts, 15);
        for forged in &result.forged {
            assert!(forged.distortion <= forgery_config.epsilon + 1e-9);
            let required: Vec<wdte_data::Label> = (0..model.num_trees())
                .map(|i| result.fake_signature.required_prediction(i, forged.label))
                .collect();
            assert_eq!(compiled.predict_all(&forged.instance), required);
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn suppression_on_a_loaded_model_matches_the_original() {
    let dir = scratch("suppression");
    let mut rng = SmallRng::seed_from_u64(90_011);
    let dataset = SyntheticSpec::breast_cancer_like().scaled(0.6).generate(&mut rng);
    let (train, test) = dataset.split_stratified(0.75, &mut rng);
    let signature = Signature::random(10, 0.5, &mut rng);
    let outcome = Watermarker::new(WatermarkConfig {
        num_trees: 10,
        ..WatermarkConfig::fast()
    })
    .embed(&train, &signature, &mut rng)
    .unwrap();

    persist::save(dir.join("model.wdte"), &outcome.model, persist::Format::Binary).unwrap();
    let loaded: RandomForest = persist::load(dir.join("model.wdte")).unwrap();

    let original = evaluate_suppression(
        &outcome.model,
        &outcome.trigger_set,
        &test,
        SuppressionScore::VoteDisagreement,
    );
    let reloaded = evaluate_suppression(
        &loaded,
        &outcome.trigger_set,
        &test,
        SuppressionScore::VoteDisagreement,
    );
    assert_eq!(original, reloaded);
    assert!((0.0..=1.0).contains(&reloaded.auc));

    std::fs::remove_dir_all(&dir).ok();
}
