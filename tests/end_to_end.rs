//! Cross-crate integration tests: the full pipeline from synthetic data
//! through watermark embedding, verification and the attack simulations,
//! driven exclusively through the public facade crate.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte::prelude::*;
use wdte_core::{forge_trigger_set, watermark_holds};
use wdte_solver::LeafIndex;

fn pipeline(seed: u64, num_trees: usize) -> (wdte_data::Dataset, wdte_data::Dataset, WatermarkOutcome) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let dataset = SyntheticSpec::breast_cancer_like().generate(&mut rng);
    let (train, test) = dataset.split_stratified(0.8, &mut rng);
    let signature = Signature::random(num_trees, 0.5, &mut rng);
    let config = WatermarkConfig {
        num_trees,
        trigger_fraction: 0.02,
        ..WatermarkConfig::fast()
    };
    let outcome = Watermarker::new(config)
        .embed(&train, &signature, &mut rng)
        .expect("embedding succeeds");
    (train, test, outcome)
}

#[test]
fn embed_verify_and_attack_pipeline() {
    let (train, test, outcome) = pipeline(1001, 14);

    // The watermark property holds structurally…
    assert!(watermark_holds(
        &outcome.model,
        &outcome.signature,
        &outcome.trigger_set
    ));

    // …and through the black-box verification protocol.
    let claim = OwnershipClaim::new(
        outcome.signature.clone(),
        outcome.trigger_set.clone(),
        test.clone(),
    );
    let report = verify_ownership(&outcome.model, &claim);
    assert!(report.verified);
    assert_eq!(report.bit_agreement, 1.0);

    // Accuracy stays in the same regime as an unwatermarked model.
    let mut rng = SmallRng::seed_from_u64(55);
    let config = WatermarkConfig {
        num_trees: 14,
        trigger_fraction: 0.02,
        ..WatermarkConfig::fast()
    };
    let baseline = Watermarker::new(config).train_baseline(&train, &mut rng);
    let baseline_accuracy = baseline.accuracy(&test);
    let watermarked_accuracy = outcome.model.accuracy(&test);
    assert!(baseline_accuracy > 0.85);
    assert!(baseline_accuracy - watermarked_accuracy < 0.1);

    // Detection attacks cannot fully reconstruct the signature.
    for feature in [DetectionFeature::Depth, DetectionFeature::Leaves] {
        let report = evaluate_detection(
            &outcome.model,
            &outcome.signature,
            feature,
            DetectionStrategy::MeanThreshold,
        );
        assert!(
            report.correct < outcome.model.num_trees(),
            "sharp-threshold detection should not perfectly recover the signature"
        );
    }

    // Suppression distinguisher output is a valid AUC.
    let suppression = evaluate_suppression(
        &outcome.model,
        &outcome.trigger_set,
        &test,
        SuppressionScore::VoteDisagreement,
    );
    assert!((0.0..=1.0).contains(&suppression.auc));
}

#[test]
fn forgery_attack_is_harder_at_small_epsilon() {
    let (_train, test, outcome) = pipeline(2002, 12);
    let leaf_index = LeafIndex::new(&outcome.model);
    let mut rng = SmallRng::seed_from_u64(77);
    let fake = Signature::random(outcome.model.num_trees(), 0.5, &mut rng);
    let mut forged_counts = Vec::new();
    for epsilon in [0.05, 0.5, 0.95] {
        let config = ForgeryAttackConfig {
            num_fake_signatures: 1,
            ones_fraction: 0.5,
            epsilon,
            solver: SolverConfig::fast(),
            max_instances: Some(25),
        };
        let result = forge_trigger_set(&outcome.model, &leaf_index, &test, &fake, &config);
        // Any forged instance must respect the distortion bound.
        for forged in &result.forged {
            assert!(forged.distortion <= epsilon + 1e-9);
        }
        forged_counts.push(result.forged_count());
    }
    assert!(
        forged_counts[0] <= forged_counts[2],
        "larger distortion budgets should never make forgery harder: {forged_counts:?}"
    );
}

#[test]
fn verification_fails_for_forged_claims_built_without_the_solver() {
    let (train, test, outcome) = pipeline(3003, 10);
    let mut rng = SmallRng::seed_from_u64(88);
    // An attacker who simply relabels random training data cannot satisfy
    // the verification pattern for a random fake signature.
    let fake_signature = Signature::random(10, 0.5, &mut rng);
    let fake_trigger_indices = train.sample_indices(outcome.trigger_set.len(), &mut rng);
    let fake_trigger = train.select(&fake_trigger_indices).unwrap();
    let claim = OwnershipClaim::new(fake_signature, fake_trigger, test);
    let report = verify_ownership(&outcome.model, &claim);
    assert!(!report.verified);
    assert!(report.bit_agreement < 0.95);
}

#[test]
fn facade_prelude_exposes_the_full_pipeline() {
    // Compile-time check that the facade re-exports everything the README
    // quickstart needs; a tiny end-to-end run guards against regressions.
    let mut rng = SmallRng::seed_from_u64(4004);
    let dataset = SyntheticSpec::breast_cancer_like().scaled(0.4).generate(&mut rng);
    let (train, test) = dataset.split_stratified(0.75, &mut rng);
    let signature = Signature::random(8, 0.5, &mut rng);
    let config = WatermarkConfig {
        num_trees: 8,
        ..WatermarkConfig::fast()
    };
    let outcome = Watermarker::new(config).embed(&train, &signature, &mut rng).unwrap();
    let claim = OwnershipClaim::new(signature, outcome.trigger_set.clone(), test);
    assert!(verify_ownership(&outcome.model, &claim).verified);
}
