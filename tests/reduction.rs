//! Integration test of the Theorem 1 reduction through the facade: the
//! forgery-based decision procedure must agree with the DPLL solver, and
//! the reduced ensembles must behave like the formulas they encode.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte::prelude::*;
use wdte_data::Label;
use wdte_solver::{assignment_to_instance, Clause, Literal, SatResult};

#[test]
fn reduction_decision_matches_dpll_on_a_batch_of_random_formulas() {
    let mut rng = SmallRng::seed_from_u64(91);
    for round in 0..15 {
        let formula = Cnf::random(4 + round % 3, 4 + round * 2, &mut rng);
        let dpll = DpllSolver.solve(&formula);
        let reduced = solve_via_forgery(&formula, SolverConfig::default());
        match (dpll, reduced) {
            (SatResult::Satisfiable(_), ReductionOutcome::Satisfiable(model)) => {
                assert!(formula.eval(&model));
            }
            (SatResult::Unsatisfiable, ReductionOutcome::Unsatisfiable) => {}
            (a, b) => panic!("disagreement between DPLL and forgery reduction: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn reduced_ensemble_votes_like_the_formula() {
    // (x0 ∨ ¬x1) ∧ (x1 ∨ x2): check the ensemble unanimously predicts +1
    // exactly on satisfying assignments.
    let formula = Cnf::new(
        3,
        vec![
            Clause::new(vec![Literal::positive(0), Literal::negative(1)]),
            Clause::new(vec![Literal::positive(1), Literal::positive(2)]),
        ],
    );
    let ensemble = cnf_to_ensemble(&formula);
    for bits in 0..8u32 {
        let assignment: Vec<bool> = (0..3).map(|i| bits & (1 << i) != 0).collect();
        let instance = assignment_to_instance(&assignment);
        let all_positive = ensemble.predict_all(&instance).iter().all(|&l| l == Label::Positive);
        assert_eq!(all_positive, formula.eval(&assignment));
    }
}
