//! Concurrency determinism suite.
//!
//! The parallel layers added for the dispute service — concurrent `T0`/`T1`
//! training, grid-search fold fan-out, sharded verification batches,
//! multi-claim resolution — must all be *schedule-free*: fixed-seed results
//! are bit-identical with 1 worker and N workers, and concurrent claims
//! against a shared registry never observe partially compiled state.
//!
//! Worker counts are pinned through the rayon compat layer's
//! `ThreadPoolBuilder::num_threads(1)`, which serializes every `par_iter`
//! fan-out reached from `install` (embedding re-installs the limit on the
//! scoped thread it spawns, so both halves of the T0/T1 fork obey it too;
//! the two halves still overlap in time — their bit-identity comes from
//! per-task derived seeds, not from scheduling).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::ThreadPoolBuilder;
use std::sync::Arc;
use wdte::prelude::*;

fn fixture() -> (wdte::data::Dataset, wdte::data::Dataset, Signature, Watermarker) {
    let dataset = SyntheticSpec::breast_cancer_like()
        .scaled(0.7)
        .generate(&mut SmallRng::seed_from_u64(91));
    let mut rng = SmallRng::seed_from_u64(92);
    let (train, test) = dataset.split_stratified(0.75, &mut rng);
    let signature = Signature::random(12, 0.5, &mut rng);
    let watermarker = Watermarker::new(WatermarkConfig {
        num_trees: 12,
        ..WatermarkConfig::fast()
    });
    (train, test, signature, watermarker)
}

#[test]
fn fixed_seed_embedding_is_identical_with_one_worker_and_many() {
    let (train, _, signature, watermarker) = fixture();
    let parallel = watermarker.embed(&train, &signature, &mut SmallRng::seed_from_u64(93)).unwrap();
    let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let serial = pool
        .install(|| watermarker.embed(&train, &signature, &mut SmallRng::seed_from_u64(93)))
        .unwrap();
    assert_eq!(parallel.model, serial.model);
    assert_eq!(parallel.trigger_indices, serial.trigger_indices);
    assert_eq!(parallel.diagnostics, serial.diagnostics);
}

#[test]
fn fixed_seed_resolution_is_identical_with_one_worker_and_many() {
    let (train, test, signature, watermarker) = fixture();
    let outcome = watermarker.embed(&train, &signature, &mut SmallRng::seed_from_u64(94)).unwrap();
    let claim = OwnershipClaim::new(signature, outcome.trigger_set.clone(), test);
    let disputes: Vec<Dispute> = (0..6).map(|_| Dispute::new("m", claim.clone())).collect();

    // Tiny shard size so a single claim really is split across many tasks.
    let service = DisputeService::builder().batch_shard_rows(8).build().unwrap();
    service.register("m", &outcome.model);
    let parallel = service.resolve_many(&disputes);
    let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let serial = pool.install(|| service.resolve_many(&disputes));
    assert_eq!(parallel.len(), serial.len());
    for (a, b) in parallel.iter().zip(&serial) {
        assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        assert!(a.as_ref().unwrap().verified);
    }
    // And both match the plain one-shot verification path.
    assert_eq!(
        *parallel[0].as_ref().unwrap(),
        verify_ownership(&outcome.model, &claim)
    );
}

#[test]
fn concurrent_claims_share_exactly_one_compile() {
    let (train, test, signature, watermarker) = fixture();
    let outcome = watermarker.embed(&train, &signature, &mut SmallRng::seed_from_u64(95)).unwrap();
    let claim = OwnershipClaim::new(signature, outcome.trigger_set.clone(), test);
    let service = Arc::new(DisputeService::builder().build().unwrap());
    service.register("shared", &outcome.model);

    let reference = service.resolve("shared", &claim).unwrap();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let service = Arc::clone(&service);
            let claim = claim.clone();
            std::thread::spawn(move || service.resolve("shared", &claim).unwrap())
        })
        .collect();
    for handle in handles {
        let report = handle.join().unwrap();
        assert_eq!(report, reference);
        assert!(report.verified);
    }
    assert_eq!(
        service.compile_count(),
        1,
        "claim count must not affect compile count"
    );
}

#[test]
fn resolution_never_observes_a_partially_compiled_forest() {
    let (train, test, signature, watermarker) = fixture();
    let outcome = watermarker.embed(&train, &signature, &mut SmallRng::seed_from_u64(96)).unwrap();
    let claim = OwnershipClaim::new(signature.clone(), outcome.trigger_set.clone(), test.clone());
    let service = Arc::new(DisputeService::builder().build().unwrap());
    service.register("target", &outcome.model);
    let reference = service.resolve("target", &claim).unwrap();

    // Hammer the target model from several threads while the registry
    // churns: other models register and deregister concurrently, and
    // "target" itself is re-registered (replaced with the same model)
    // under load. Every resolution must return the complete, identical
    // report — a torn or half-published compiled forest would change
    // per-tree votes (or panic).
    let resolvers: Vec<_> = (0..4)
        .map(|_| {
            let service = Arc::clone(&service);
            let claim = claim.clone();
            std::thread::spawn(move || {
                (0..20).map(|_| service.resolve("target", &claim).unwrap()).collect::<Vec<_>>()
            })
        })
        .collect();
    let churn = {
        let service = Arc::clone(&service);
        let model = outcome.model.clone();
        std::thread::spawn(move || {
            for round in 0..10 {
                let id = format!("churn-{round}");
                service.register(&id, &model);
                service.register("target", &model);
                service.deregister(&id);
            }
        })
    };
    for handle in resolvers {
        for report in handle.join().unwrap() {
            assert_eq!(report, reference);
            assert!(report.verified);
        }
    }
    churn.join().unwrap();
    assert!(service.model("target").is_some());
}

#[test]
fn baseline_training_is_identical_with_one_worker_and_many() {
    let (train, _, _, watermarker) = fixture();
    let parallel = watermarker.train_baseline(&train, &mut SmallRng::seed_from_u64(97));
    let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let serial = pool.install(|| watermarker.train_baseline(&train, &mut SmallRng::seed_from_u64(97)));
    assert_eq!(parallel, serial);
}
