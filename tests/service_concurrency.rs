//! Concurrency determinism suite for the shared work-stealing pool.
//!
//! The parallel layers of the dispute service — concurrent `T0`/`T1`
//! training, grid-search fold fan-out, sharded verification batches,
//! multi-claim resolution — must all be *schedule-free*: fixed-seed results
//! are bit-identical with 1 worker and N workers, and concurrent claims
//! against a shared registry never observe partially compiled state.
//!
//! Worker counts are pinned through the rayon compat layer's
//! `ThreadPoolBuilder::num_threads(k)`, a scoped width limit over the one
//! process-global pool that *travels with the jobs it spawns*: every
//! nested fan-out reached from `install` — the T0/T1 `join` fork, folds
//! inside a grid point, batch shards inside a dispute — obeys the limit on
//! whichever worker thread it lands. `num_threads(1)` is strictly serial;
//! wider limits let the pool steal nested jobs freely, and the outputs'
//! bit-identity across all of them comes from per-task derived seeds plus
//! input-order stitching, not from scheduling.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use std::sync::Arc;
use wdte::prelude::*;

fn fixture() -> (wdte::data::Dataset, wdte::data::Dataset, Signature, Watermarker) {
    let dataset = SyntheticSpec::breast_cancer_like()
        .scaled(0.7)
        .generate(&mut SmallRng::seed_from_u64(91));
    let mut rng = SmallRng::seed_from_u64(92);
    let (train, test) = dataset.split_stratified(0.75, &mut rng);
    let signature = Signature::random(12, 0.5, &mut rng);
    let watermarker = Watermarker::new(WatermarkConfig {
        num_trees: 12,
        ..WatermarkConfig::fast()
    });
    (train, test, signature, watermarker)
}

#[test]
fn fixed_seed_embedding_is_identical_with_one_worker_and_many() {
    let (train, _, signature, watermarker) = fixture();
    let parallel = watermarker.embed(&train, &signature, &mut SmallRng::seed_from_u64(93)).unwrap();
    let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let serial = pool
        .install(|| watermarker.embed(&train, &signature, &mut SmallRng::seed_from_u64(93)))
        .unwrap();
    assert_eq!(parallel.model, serial.model);
    assert_eq!(parallel.trigger_indices, serial.trigger_indices);
    assert_eq!(parallel.diagnostics, serial.diagnostics);
}

#[test]
fn fixed_seed_resolution_is_identical_with_one_worker_and_many() {
    let (train, test, signature, watermarker) = fixture();
    let outcome = watermarker.embed(&train, &signature, &mut SmallRng::seed_from_u64(94)).unwrap();
    let claim = OwnershipClaim::new(signature, outcome.trigger_set.clone(), test);
    let disputes: Vec<Dispute> = (0..6).map(|_| Dispute::new("m", claim.clone())).collect();

    // Tiny shard size so a single claim really is split across many tasks.
    let service = DisputeService::builder().batch_shard_rows(8).build().unwrap();
    service.register("m", &outcome.model);
    let parallel = service.resolve_many(&disputes);
    let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let serial = pool.install(|| service.resolve_many(&disputes));
    assert_eq!(parallel.len(), serial.len());
    for (a, b) in parallel.iter().zip(&serial) {
        assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        assert!(a.as_ref().unwrap().verified);
    }
    // And both match the plain one-shot verification path.
    assert_eq!(
        *parallel[0].as_ref().unwrap(),
        verify_ownership(&outcome.model, &claim)
    );
}

#[test]
fn concurrent_claims_share_exactly_one_compile() {
    let (train, test, signature, watermarker) = fixture();
    let outcome = watermarker.embed(&train, &signature, &mut SmallRng::seed_from_u64(95)).unwrap();
    let claim = OwnershipClaim::new(signature, outcome.trigger_set.clone(), test);
    let service = Arc::new(DisputeService::builder().build().unwrap());
    service.register("shared", &outcome.model);

    let reference = service.resolve("shared", &claim).unwrap();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let service = Arc::clone(&service);
            let claim = claim.clone();
            std::thread::spawn(move || service.resolve("shared", &claim).unwrap())
        })
        .collect();
    for handle in handles {
        let report = handle.join().unwrap();
        assert_eq!(report, reference);
        assert!(report.verified);
    }
    assert_eq!(
        service.compile_count(),
        1,
        "claim count must not affect compile count"
    );
}

#[test]
fn resolution_never_observes_a_partially_compiled_forest() {
    let (train, test, signature, watermarker) = fixture();
    let outcome = watermarker.embed(&train, &signature, &mut SmallRng::seed_from_u64(96)).unwrap();
    let claim = OwnershipClaim::new(signature.clone(), outcome.trigger_set.clone(), test.clone());
    let service = Arc::new(DisputeService::builder().build().unwrap());
    service.register("target", &outcome.model);
    let reference = service.resolve("target", &claim).unwrap();

    // Hammer the target model from several threads while the registry
    // churns: other models register and deregister concurrently, and
    // "target" itself is re-registered (replaced with the same model)
    // under load. Every resolution must return the complete, identical
    // report — a torn or half-published compiled forest would change
    // per-tree votes (or panic).
    let resolvers: Vec<_> = (0..4)
        .map(|_| {
            let service = Arc::clone(&service);
            let claim = claim.clone();
            std::thread::spawn(move || {
                (0..20).map(|_| service.resolve("target", &claim).unwrap()).collect::<Vec<_>>()
            })
        })
        .collect();
    let churn = {
        let service = Arc::clone(&service);
        let model = outcome.model.clone();
        std::thread::spawn(move || {
            for round in 0..10 {
                let id = format!("churn-{round}");
                service.register(&id, &model);
                service.register("target", &model);
                service.deregister(&id);
            }
        })
    };
    for handle in resolvers {
        for report in handle.join().unwrap() {
            assert_eq!(report, reference);
            assert!(report.verified);
        }
    }
    churn.join().unwrap();
    assert!(service.model("target").is_some());
}

#[test]
fn baseline_training_is_identical_with_one_worker_and_many() {
    let (train, _, _, watermarker) = fixture();
    let parallel = watermarker.train_baseline(&train, &mut SmallRng::seed_from_u64(97));
    let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let serial = pool.install(|| watermarker.train_baseline(&train, &mut SmallRng::seed_from_u64(97)));
    assert_eq!(parallel, serial);
}

/// The acceptance bar of the work-stealing pool rewrite: the three
/// fixed-seed pipelines the paper's protocol depends on — embedding,
/// docket resolution, grid search — produce bit-identical output at every
/// pool width, with 1 worker (strictly serial) as the reference.
#[test]
fn embed_resolve_and_grid_are_bit_identical_across_1_2_4_8_workers() {
    let (train, test, signature, watermarker) = fixture();
    let serial = ThreadPoolBuilder::new().num_threads(1).build().unwrap();

    let reference_outcome = serial
        .install(|| watermarker.embed(&train, &signature, &mut SmallRng::seed_from_u64(98)))
        .unwrap();
    let claim = OwnershipClaim::new(
        signature.clone(),
        reference_outcome.trigger_set.clone(),
        test.clone(),
    );
    let disputes: Vec<Dispute> = (0..5).map(|_| Dispute::new("m", claim.clone())).collect();
    let service = DisputeService::builder().batch_shard_rows(8).build().unwrap();
    service.register("m", &reference_outcome.model);
    let reference_verdicts = serial.install(|| service.resolve_many(&disputes));

    let search = wdte::trees::GridSearch::fast(wdte::trees::ForestParams::with_trees(5));
    let reference_grid = serial.install(|| search.run(&train, &mut SmallRng::seed_from_u64(99)));

    for workers in [2, 4, 8] {
        let pool = ThreadPoolBuilder::new().num_threads(workers).build().unwrap();

        let outcome = pool
            .install(|| watermarker.embed(&train, &signature, &mut SmallRng::seed_from_u64(98)))
            .unwrap();
        assert_eq!(
            outcome.model, reference_outcome.model,
            "embed at {workers} workers"
        );
        assert_eq!(outcome.trigger_indices, reference_outcome.trigger_indices);
        assert_eq!(outcome.diagnostics, reference_outcome.diagnostics);

        let verdicts = pool.install(|| service.resolve_many(&disputes));
        assert_eq!(verdicts.len(), reference_verdicts.len());
        for (got, want) in verdicts.iter().zip(&reference_verdicts) {
            assert_eq!(
                got.as_ref().unwrap(),
                want.as_ref().unwrap(),
                "resolve at {workers} workers"
            );
        }

        let grid = pool.install(|| search.run(&train, &mut SmallRng::seed_from_u64(99)));
        assert_eq!(
            grid.best_params, reference_grid.best_params,
            "grid at {workers} workers"
        );
        assert_eq!(grid.all_results, reference_grid.all_results);
    }
}

/// Nested-depth stress on the real workload shape: an outer `par_iter`
/// over dockets, `resolve_many`'s per-dispute fan-out inside it, and the
/// batch-shard fan-out inside *that* — three nested levels scheduled on
/// one shared pool, all inside `install`. Every level must come back in
/// input order with verdicts identical to the serial reference.
#[test]
fn nested_docket_resolution_composes_three_levels_deep() {
    let (train, test, signature, watermarker) = fixture();
    let outcome = watermarker
        .embed(&train, &signature, &mut SmallRng::seed_from_u64(101))
        .unwrap();
    let claim = OwnershipClaim::new(signature, outcome.trigger_set.clone(), test);
    let service = DisputeService::builder().batch_shard_rows(8).build().unwrap();
    service.register("m", &outcome.model);
    let docket: Vec<Dispute> = (0..4).map(|_| Dispute::new("m", claim.clone())).collect();
    let reference = ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(|| service.resolve_many(&docket));

    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let many: Vec<Vec<_>> =
        pool.install(|| (0..6usize).into_par_iter().map(|_| service.resolve_many(&docket)).collect());
    assert_eq!(many.len(), 6);
    for verdicts in &many {
        assert_eq!(verdicts.len(), reference.len());
        for (got, want) in verdicts.iter().zip(&reference) {
            assert_eq!(got.as_ref().unwrap(), want.as_ref().unwrap());
            assert!(got.as_ref().unwrap().verified);
        }
    }
}

/// Pool handles are virtual width limits over the one global pool, so
/// churning them — the old per-connection server pattern, or a test suite
/// building one per case — must be free and leak nothing: results stay
/// identical through hundreds of build/install/drop cycles at shifting
/// widths, including from several OS threads at once.
#[test]
fn pool_churn_and_reuse_stays_deterministic() {
    let (train, test, signature, watermarker) = fixture();
    let outcome = watermarker
        .embed(&train, &signature, &mut SmallRng::seed_from_u64(102))
        .unwrap();
    let claim = OwnershipClaim::new(signature, outcome.trigger_set.clone(), test);
    let service = Arc::new(DisputeService::builder().batch_shard_rows(16).build().unwrap());
    service.register("m", &outcome.model);
    let reference = service.resolve("m", &claim).unwrap();

    std::thread::scope(|scope| {
        for thread in 0..3 {
            let service = Arc::clone(&service);
            let claim = claim.clone();
            let reference = reference.clone();
            scope.spawn(move || {
                for round in 0..40 {
                    let width = 1 + (thread + round) % 5;
                    let pool = ThreadPoolBuilder::new().num_threads(width).build().unwrap();
                    let report = pool.install(|| service.resolve("m", &claim).unwrap());
                    assert_eq!(report, reference, "thread {thread}, round {round}");
                }
            });
        }
    });
}

/// A panic inside one parallel job must reach the submitting caller as a
/// normal unwinding panic — after every sibling task has finished, so no
/// borrow held by a still-running job can dangle — and the shared pool
/// must keep serving afterwards.
#[test]
fn panic_in_a_pool_job_propagates_and_the_pool_survives() {
    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let attempt = std::panic::catch_unwind(|| -> Vec<usize> {
        pool.install(|| {
            (0..32usize)
                .into_par_iter()
                .map(|i| {
                    if i == 13 {
                        panic!("injected fault in job {i}")
                    } else {
                        i * 2
                    }
                })
                .collect()
        })
    });
    assert!(attempt.is_err(), "the job panic must unwind out of collect()");

    // The pool is not poisoned: the very next pipeline — including a real
    // service resolution — behaves normally.
    let doubled: Vec<usize> = pool.install(|| (0..32usize).into_par_iter().map(|x| x * 2).collect());
    assert_eq!(doubled, (0..32).map(|x| x * 2).collect::<Vec<usize>>());

    let (train, test, signature, watermarker) = fixture();
    let outcome = watermarker
        .embed(&train, &signature, &mut SmallRng::seed_from_u64(103))
        .unwrap();
    let claim = OwnershipClaim::new(signature, outcome.trigger_set.clone(), test);
    let service = DisputeService::builder().build().unwrap();
    service.register("m", &outcome.model);
    assert!(pool.install(|| service.resolve("m", &claim).unwrap()).verified);
}
