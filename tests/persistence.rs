//! Negative-path coverage for the on-disk format: corrupted, truncated and
//! version-mismatched files must surface typed `wdte_core` errors — never
//! panics and never silently wrong artefacts — plus property tests that
//! both encodings reproduce model behaviour exactly.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte::persist::{self, Format};
use wdte::prelude::*;

fn fixture() -> (RandomForest, OwnershipClaim, wdte_data::Dataset) {
    let mut rng = SmallRng::seed_from_u64(70_001);
    let dataset = SyntheticSpec::breast_cancer_like().scaled(0.5).generate(&mut rng);
    let (train, test) = dataset.split_stratified(0.8, &mut rng);
    let signature = Signature::random(8, 0.5, &mut rng);
    let outcome = Watermarker::new(WatermarkConfig {
        num_trees: 8,
        ..WatermarkConfig::fast()
    })
    .embed(&train, &signature, &mut rng)
    .unwrap();
    let claim = OwnershipClaim::new(signature, outcome.trigger_set.clone(), test.clone());
    (outcome.model, claim, test)
}

/// Every prefix of every artefact must fail with a typed error. This walks
/// a sweep of truncation points over all artefact kinds and both formats.
#[test]
fn truncated_files_yield_typed_errors_for_every_artefact() {
    let (model, claim, _) = fixture();
    let compiled = CompiledForest::compile(&model);
    let encodings: Vec<(&str, Vec<u8>)> = vec![
        ("model-bin", persist::to_bytes(&model, Format::Binary)),
        ("model-json", persist::to_bytes(&model, Format::Json)),
        ("compiled-bin", persist::to_bytes(&compiled, Format::Binary)),
        ("compiled-json", persist::to_bytes(&compiled, Format::Json)),
        ("claim-bin", persist::to_bytes(&claim, Format::Binary)),
        (
            "signature-json",
            persist::to_bytes(&claim.signature, Format::Json),
        ),
        (
            "trigger-bin",
            persist::to_bytes(&claim.trigger_set, Format::Binary),
        ),
    ];
    for (tag, bytes) in &encodings {
        let full_restores: bool = match *tag {
            "model-bin" | "model-json" => persist::from_bytes::<RandomForest>(bytes).is_ok(),
            "compiled-bin" | "compiled-json" => persist::from_bytes::<CompiledForest>(bytes).is_ok(),
            "claim-bin" => persist::from_bytes::<OwnershipClaim>(bytes).is_ok(),
            "signature-json" => persist::from_bytes::<Signature>(bytes).is_ok(),
            _ => persist::from_bytes::<wdte_data::Dataset>(bytes).is_ok(),
        };
        assert!(full_restores, "{tag}: the untruncated artefact must load");
        for fraction in [0usize, 1, 3, 10, 50, 90, 99] {
            let cut = bytes.len() * fraction / 100;
            let truncated = &bytes[..cut];
            let err = match *tag {
                "model-bin" | "model-json" => {
                    persist::from_bytes::<RandomForest>(truncated).unwrap_err()
                }
                "compiled-bin" | "compiled-json" => {
                    persist::from_bytes::<CompiledForest>(truncated).unwrap_err()
                }
                "claim-bin" => persist::from_bytes::<OwnershipClaim>(truncated).unwrap_err(),
                "signature-json" => persist::from_bytes::<Signature>(truncated).unwrap_err(),
                _ => persist::from_bytes::<wdte_data::Dataset>(truncated).unwrap_err(),
            };
            assert!(
                matches!(
                    err,
                    WatermarkError::CorruptedArtifact { .. } | WatermarkError::UnrecognizedFormat { .. }
                ),
                "{tag} truncated at {fraction}%: unexpected error {err:?}"
            );
        }
    }
}

#[test]
fn version_mismatch_is_reported_with_both_versions() {
    let future = persist::FORMAT_VERSION + 1;
    let (model, _, _) = fixture();
    let mut binary = persist::to_bytes(&model, Format::Binary);
    // Header: 4 magic bytes, 1 container tag, then the u16 LE version.
    binary[5..7].copy_from_slice(&future.to_le_bytes());
    match persist::from_bytes::<RandomForest>(&binary).unwrap_err() {
        WatermarkError::UnsupportedFormatVersion { found, supported } => {
            assert_eq!(found, future);
            assert_eq!(supported, persist::FORMAT_VERSION);
        }
        other => panic!("expected a version error, got {other:?}"),
    }

    let json = String::from_utf8(persist::to_bytes(&model, Format::Json)).unwrap();
    let bumped = json.replacen(
        &format!("\"version\": {}", persist::FORMAT_VERSION),
        &format!("\"version\": {future}"),
        1,
    );
    assert_ne!(bumped, json);
    match persist::from_bytes::<RandomForest>(bumped.as_bytes()).unwrap_err() {
        WatermarkError::UnsupportedFormatVersion { found, .. } => assert_eq!(found, future),
        other => panic!("expected a version error, got {other:?}"),
    }
}

#[test]
fn corrupted_payloads_are_rejected_not_misread() {
    let (model, _, _) = fixture();
    let compiled = CompiledForest::compile(&model);
    let bytes = persist::to_bytes(&compiled, Format::Binary);

    // Flip bytes throughout the payload; every outcome must be either a
    // typed error or a value identical in behaviour (a flip may land in
    // dead padding of a float, but must never panic).
    for position in (7..bytes.len()).step_by(bytes.len() / 37 + 1) {
        let mut garbled = bytes.clone();
        garbled[position] ^= 0xA5;
        match persist::from_bytes::<CompiledForest>(&garbled) {
            Ok(loaded) => {
                // Structural validation passed; the loaded forest must at
                // least still be shaped like the original.
                assert_eq!(loaded.num_trees(), compiled.num_trees());
            }
            Err(
                WatermarkError::CorruptedArtifact { .. }
                | WatermarkError::UnrecognizedFormat { .. }
                | WatermarkError::UnsupportedFormatVersion { .. },
            ) => {}
            Err(other) => panic!("byte {position}: unexpected error {other:?}"),
        }
    }

    // Not-our-file inputs.
    for junk in [&b"PK\x03\x04zipfile"[..], b"", b"[1, 2, 3]", b"WDTEZ\x01\x00"] {
        assert!(matches!(
            persist::from_bytes::<CompiledForest>(junk).unwrap_err(),
            WatermarkError::UnrecognizedFormat { .. } | WatermarkError::CorruptedArtifact { .. }
        ));
    }

    // A structurally invalid compiled forest (tree_starts not anchored at
    // zero) must be caught by validation even though the container is
    // intact.
    let original = String::from_utf8(persist::to_bytes(&compiled, Format::Json)).unwrap();
    let sabotage = original.replacen("\"tree_starts\": [\n      0,", "\"tree_starts\": [\n      1,", 1);
    assert_ne!(
        sabotage, original,
        "the envelope must contain the tree_starts array"
    );
    assert!(matches!(
        persist::from_bytes::<CompiledForest>(sabotage.as_bytes()).unwrap_err(),
        WatermarkError::CorruptedArtifact { .. }
    ));
}

#[test]
fn corrupted_pointer_models_are_rejected_not_walked() {
    let (model, _, test) = fixture();

    // A child index pointing out of the arena must be caught at load time,
    // not panic during prediction.
    let json = String::from_utf8(persist::to_bytes(&model, Format::Json)).unwrap();
    let out_of_range = json.replacen("\"left\": 1,", "\"left\": 999999,", 1);
    assert_ne!(out_of_range, json, "the envelope must contain a left child index");
    assert!(matches!(
        persist::from_bytes::<RandomForest>(out_of_range.as_bytes()).unwrap_err(),
        WatermarkError::CorruptedArtifact { .. }
    ));

    // A backwards child (cycle) must be caught too — it would otherwise
    // make prediction loop forever.
    let cyclic = json.replacen("\"left\": 1,", "\"left\": 0,", 1);
    assert_ne!(cyclic, json);
    assert!(matches!(
        persist::from_bytes::<RandomForest>(cyclic.as_bytes()).unwrap_err(),
        WatermarkError::CorruptedArtifact { .. }
    ));

    // Bit-flip sweep over the binary encoding: every outcome must be a
    // typed error or a model that can actually be used (predict must not
    // panic or hang on whatever validation lets through).
    let bytes = persist::to_bytes(&model, Format::Binary);
    for position in (7..bytes.len()).step_by(bytes.len() / 53 + 1) {
        let mut garbled = bytes.clone();
        garbled[position] ^= 0x5A;
        match persist::from_bytes::<RandomForest>(&garbled) {
            Ok(loaded) => {
                let _ = loaded.predict_all(test.instance(0));
            }
            Err(
                WatermarkError::CorruptedArtifact { .. }
                | WatermarkError::UnrecognizedFormat { .. }
                | WatermarkError::UnsupportedFormatVersion { .. },
            ) => {}
            Err(other) => panic!("byte {position}: unexpected error {other:?}"),
        }
    }
}

#[test]
fn corrupted_dataset_and_claim_artefacts_are_rejected_not_indexed() {
    let (_, claim, _) = fixture();

    // A trigger set whose matrix dimensions were bit-flipped must fail at
    // load, not index out of bounds during verification.
    let json = String::from_utf8(persist::to_bytes(&claim, Format::Json)).unwrap();
    let bad_rows = json.replacen("\"rows\": ", "\"rows\": 9", 1);
    assert_ne!(bad_rows, json, "the envelope must contain matrix dimensions");
    assert!(matches!(
        persist::from_bytes::<OwnershipClaim>(bad_rows.as_bytes()).unwrap_err(),
        WatermarkError::CorruptedArtifact { .. }
    ));

    // Bit-flip sweep over the binary claim: load must either fail typed or
    // produce a claim that survives verification bookkeeping.
    let bytes = persist::to_bytes(&claim, Format::Binary);
    for position in (7..bytes.len()).step_by(bytes.len() / 41 + 1) {
        let mut garbled = bytes.clone();
        garbled[position] ^= 0x3C;
        match persist::from_bytes::<OwnershipClaim>(&garbled) {
            Ok(loaded) => {
                assert_eq!(loaded.trigger_set.len(), loaded.trigger_set.features().rows());
                assert_eq!(loaded.test_set.len(), loaded.test_set.features().rows());
            }
            Err(
                WatermarkError::CorruptedArtifact { .. }
                | WatermarkError::UnrecognizedFormat { .. }
                | WatermarkError::UnsupportedFormatVersion { .. },
            ) => {}
            Err(other) => panic!("byte {position}: unexpected error {other:?}"),
        }
    }
}

#[test]
fn missing_file_is_an_io_error() {
    let missing = std::env::temp_dir().join("wdte-definitely-missing.wdte");
    assert!(matches!(
        persist::load::<Signature>(&missing).unwrap_err(),
        WatermarkError::Io { .. }
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Round-trips through both formats preserve every prediction exactly,
    /// for arbitrarily seeded models and probe points (including
    /// non-finite probes).
    #[test]
    fn round_trips_reproduce_predictions_bit_for_bit(
        seed in 0u64..10_000,
        probes in proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![
                    -3.0f64..3.0,
                    Just(f64::NAN),
                    Just(f64::INFINITY),
                    Just(f64::NEG_INFINITY),
                ],
                30
            ),
            1..8
        ),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let dataset = SyntheticSpec::breast_cancer_like().scaled(0.3).generate(&mut rng);
        let forest = RandomForest::fit(&dataset, &ForestParams::with_trees(5), &mut rng);
        let compiled = CompiledForest::compile(&forest);

        for format in [Format::Json, Format::Binary] {
            let restored: RandomForest =
                persist::from_bytes(&persist::to_bytes(&forest, format)).unwrap();
            prop_assert_eq!(&restored, &forest);
            let restored_compiled: CompiledForest =
                persist::from_bytes(&persist::to_bytes(&compiled, format)).unwrap();
            prop_assert_eq!(&restored_compiled, &compiled);
            for probe in &probes {
                prop_assert_eq!(restored.predict_all(probe), forest.predict_all(probe));
                prop_assert_eq!(restored_compiled.predict_all(probe), compiled.predict_all(probe));
            }
        }
    }
}
