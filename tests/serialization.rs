//! Serialization integration tests: models, signatures and claims must
//! round-trip through JSON so the verification protocol can exchange
//! artefacts between parties (owner → judge) and models can be shipped to
//! production services.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte::prelude::*;
use wdte_trees::RandomForest;

#[test]
fn watermarked_model_round_trips_through_json() {
    let mut rng = SmallRng::seed_from_u64(11);
    let dataset = SyntheticSpec::breast_cancer_like().scaled(0.5).generate(&mut rng);
    let (train, test) = dataset.split_stratified(0.8, &mut rng);
    let signature = Signature::random(10, 0.5, &mut rng);
    let config = WatermarkConfig {
        num_trees: 10,
        ..WatermarkConfig::fast()
    };
    let outcome = Watermarker::new(config).embed(&train, &signature, &mut rng).unwrap();

    let json = serde_json::to_string(&outcome.model).expect("model serializes");
    let restored: RandomForest = serde_json::from_str(&json).expect("model deserializes");
    assert_eq!(restored, outcome.model);

    // The restored model still verifies the watermark.
    let claim = OwnershipClaim::new(signature, outcome.trigger_set.clone(), test);
    assert!(verify_ownership(&restored, &claim).verified);
}

#[test]
fn signature_and_claim_round_trip() {
    let mut rng = SmallRng::seed_from_u64(12);
    let signature = Signature::random(24, 0.25, &mut rng);
    let json = serde_json::to_string(&signature).unwrap();
    let restored: Signature = serde_json::from_str(&json).unwrap();
    assert_eq!(restored, signature);
    assert_eq!(restored.ones(), 6);

    let dataset = SyntheticSpec::breast_cancer_like().scaled(0.2).generate(&mut rng);
    let (trigger, test) = dataset.split_stratified(0.3, &mut rng);
    let claim = OwnershipClaim::new(signature, trigger, test);
    let json = serde_json::to_string(&claim).unwrap();
    let restored: OwnershipClaim = serde_json::from_str(&json).unwrap();
    assert_eq!(restored, claim);
}

#[test]
fn dataset_round_trips_preserve_labels_and_features() {
    let mut rng = SmallRng::seed_from_u64(13);
    let dataset = SyntheticSpec::ijcnn1_like().scaled(0.01).generate(&mut rng);
    let json = serde_json::to_string(&dataset).unwrap();
    let restored: wdte_data::Dataset = serde_json::from_str(&json).unwrap();
    assert_eq!(restored, dataset);
    assert_eq!(restored.class_distribution(), dataset.class_distribution());
}
