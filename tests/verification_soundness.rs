//! Statistical soundness of black-box verification: against a model that
//! was *not* watermarked with the claimed signature, the per-bit agreement
//! must sit near the noise floor the paper's threshold analysis implies —
//! nowhere near the 100% a genuine claim produces.
//!
//! For a balanced signature (50% ones) the expectation is exactly 1/2
//! regardless of the model's accuracy `p` on the trigger instances: the
//! 0-bits match with probability `p` and the 1-bits with probability
//! `1 − p`, so the mean agreement is `(p + (1 − p)) / 2 = 0.5`. The tests
//! check that fixed-seed runs land inside a tolerance band around that
//! value and that verification always rejects.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte::prelude::*;

/// Builds an unwatermarked forest plus a claim made of a random balanced
/// signature and a random trigger set drawn from training data.
fn unwatermarked_claim(seed: u64, num_trees: usize) -> (RandomForest, OwnershipClaim) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let dataset = SyntheticSpec::breast_cancer_like().generate(&mut rng);
    let (train, test) = dataset.split_stratified(0.8, &mut rng);
    let watermarker = Watermarker::new(WatermarkConfig {
        num_trees,
        ..WatermarkConfig::fast()
    });
    let model = watermarker.train_baseline(&train, &mut rng);
    let signature = Signature::random(num_trees, 0.5, &mut rng);
    let trigger_indices = train.sample_indices(12, &mut rng);
    let trigger = train.select(&trigger_indices).unwrap();
    (model, OwnershipClaim::new(signature, trigger, test))
}

#[test]
fn random_signature_agreement_sits_at_the_noise_floor() {
    // Average the per-run bit agreement over several fixed seeds so the
    // tolerance band can be tight without flaking.
    let seeds = [51_001u64, 51_002, 51_003, 51_004, 51_005, 51_006];
    let mut agreements = Vec::new();
    for &seed in &seeds {
        let (model, claim) = unwatermarked_claim(seed, 16);
        let report = verify_ownership(&model, &claim);
        assert!(
            !report.verified,
            "seed {seed}: an unwatermarked model must never satisfy a random signature"
        );
        assert!(
            report.instance_matches.iter().filter(|&&m| m).count() == 0,
            "seed {seed}: no trigger instance should exhibit the full {}-tree pattern",
            model.num_trees()
        );
        agreements.push(report.bit_agreement);
    }
    let mean = agreements.iter().sum::<f64>() / agreements.len() as f64;
    // The paper's verification threshold separates ≈0.5 noise from the 1.0
    // of a genuine model; the averaged noise must stay well below any
    // sensible acceptance threshold and close to the 0.5 expectation.
    assert!(
        (mean - 0.5).abs() < 0.12,
        "mean bit agreement {mean:.3} strays from the 0.5 noise floor: {agreements:?}"
    );
    assert!(
        agreements.iter().all(|&a| a < 0.85),
        "every single run must stay far from the 1.0 of a genuine claim: {agreements:?}"
    );
}

#[test]
fn genuine_claims_clear_the_margin_that_rejects_random_ones() {
    // The separation the protocol relies on: genuine = 1.0 exactly,
    // random ≈ 0.5. Both measured with the same pipeline and seed.
    let mut rng = SmallRng::seed_from_u64(52_001);
    let dataset = SyntheticSpec::breast_cancer_like().generate(&mut rng);
    let (train, test) = dataset.split_stratified(0.8, &mut rng);
    let signature = Signature::random(14, 0.5, &mut rng);
    let watermarker = Watermarker::new(WatermarkConfig {
        num_trees: 14,
        trigger_fraction: 0.02,
        ..WatermarkConfig::fast()
    });
    let outcome = watermarker.embed(&train, &signature, &mut rng).unwrap();

    let genuine = verify_ownership(
        &outcome.model,
        &OwnershipClaim::new(signature.clone(), outcome.trigger_set.clone(), test.clone()),
    );
    assert!(genuine.verified);
    assert!((genuine.bit_agreement - 1.0).abs() < 1e-12);

    let mut imposter_rng = SmallRng::seed_from_u64(52_002);
    let imposter_signature = Signature::random(14, 0.5, &mut imposter_rng);
    assert!(imposter_signature.hamming_distance(&signature) > 0);
    let imposter = verify_ownership(
        &outcome.model,
        &OwnershipClaim::new(imposter_signature, outcome.trigger_set.clone(), test),
    );
    assert!(!imposter.verified);
    // The imposter flips exactly the mismatched bits on every trigger
    // instance, so the gap to the genuine 1.0 is the Hamming weight of the
    // signature difference — macroscopic, not a rounding margin.
    assert!(genuine.bit_agreement - imposter.bit_agreement > 0.1);
}
