//! Property-based tests for the dataset substrate.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte_data::{linf_distance, ConfusionMatrix, Dataset, DenseMatrix, Label, SyntheticSpec};

fn arbitrary_labels(len: usize) -> impl Strategy<Value = Vec<Label>> {
    proptest::collection::vec(prop_oneof![Just(Label::Negative), Just(Label::Positive)], len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn normalization_always_lands_in_unit_interval(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1000.0f64..1000.0, 5), 2..30)
    ) {
        let mut matrix = DenseMatrix::from_rows(&rows).unwrap();
        matrix.normalize_min_max();
        for row in matrix.iter_rows() {
            for &value in row {
                prop_assert!((0.0..=1.0).contains(&value));
            }
        }
    }

    #[test]
    fn linf_distance_is_a_metric_on_random_vectors(
        a in proptest::collection::vec(-10.0f64..10.0, 8),
        b in proptest::collection::vec(-10.0f64..10.0, 8),
        c in proptest::collection::vec(-10.0f64..10.0, 8)
    ) {
        let dab = linf_distance(&a, &b);
        let dba = linf_distance(&b, &a);
        prop_assert!((dab - dba).abs() < 1e-12, "symmetry");
        prop_assert!(linf_distance(&a, &a) == 0.0, "identity");
        let dac = linf_distance(&a, &c);
        let dcb = linf_distance(&c, &b);
        prop_assert!(dab <= dac + dcb + 1e-12, "triangle inequality");
    }

    #[test]
    fn confusion_matrix_accuracy_is_bounded_and_consistent(
        truth_bits in proptest::collection::vec(any::<bool>(), 1..60),
        predicted_bits in proptest::collection::vec(any::<bool>(), 1..60)
    ) {
        let len = truth_bits.len().min(predicted_bits.len());
        let to_labels = |bits: &[bool]| -> Vec<Label> {
            bits.iter().take(len).map(|&b| if b { Label::Positive } else { Label::Negative }).collect()
        };
        let truth = to_labels(&truth_bits);
        let predicted = to_labels(&predicted_bits);
        let m = ConfusionMatrix::from_predictions(&truth, &predicted);
        prop_assert_eq!(m.total(), len);
        prop_assert!((0.0..=1.0).contains(&m.accuracy()));
        let agreeing = truth.iter().zip(&predicted).filter(|(a, b)| a == b).count();
        prop_assert!((m.accuracy() - agreeing as f64 / len as f64).abs() < 1e-12);
    }

    #[test]
    fn label_flips_are_involutive_per_dataset(labels in arbitrary_labels(20)) {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let dataset = Dataset::new("prop", DenseMatrix::from_rows(&rows).unwrap(), labels).unwrap();
        let double_flipped = dataset.with_flipped_labels().with_flipped_labels();
        prop_assert_eq!(double_flipped.labels(), dataset.labels());
    }

    #[test]
    fn stratified_split_partitions_exactly(seed in 0u64..1000, fraction in 0.2f64..0.8) {
        let dataset = SyntheticSpec::breast_cancer_like().scaled(0.3)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
        let (train, test) = dataset.split_stratified(fraction, &mut rng);
        prop_assert_eq!(train.len() + test.len(), dataset.len());
        prop_assert!(!train.is_empty());
        prop_assert!(!test.is_empty());
    }

    #[test]
    fn sampled_indices_are_unique_and_in_range(seed in 0u64..1000, k in 1usize..50) {
        let dataset = SyntheticSpec::breast_cancer_like().scaled(0.2)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let mut rng = SmallRng::seed_from_u64(seed);
        let indices = dataset.sample_indices(k, &mut rng);
        prop_assert_eq!(indices.len(), k.min(dataset.len()));
        let mut unique = indices.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), indices.len());
        prop_assert!(indices.iter().all(|&i| i < dataset.len()));
    }
}
