//! Synthetic dataset generators.
//!
//! The paper evaluates on MNIST2-6, breast-cancer and ijcnn1. Those exact
//! files are not redistributable here, so this module provides deterministic
//! generators that reproduce each dataset's *shape*: the same number of
//! features, a comparable number of instances, the same class balance, and a
//! difficulty level at which a random forest reaches the same accuracy
//! regime (≈0.95–0.99 test accuracy). Every generator draws exclusively
//! from the caller-supplied RNG, so a fixed seed reproduces the exact same
//! dataset.

use crate::dataset::Dataset;
use crate::label::Label;
use crate::matrix::DenseMatrix;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Generation style, loosely mirroring the character of the original data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyntheticStyle {
    /// Image-like data on a square pixel grid: each class has a smooth
    /// stroke prototype, instances add pixel noise (MNIST2-6 stand-in).
    ImageLike,
    /// Tabular data with class-shifted correlated measurements
    /// (breast-cancer stand-in).
    Tabular,
    /// Low-dimensional data where each class is a mixture of clusters with
    /// strong class imbalance (ijcnn1 stand-in).
    Clustered,
}

/// Full specification of a synthetic dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Dataset name used for reporting.
    pub name: String,
    /// Number of instances to generate.
    pub instances: usize,
    /// Number of features per instance.
    pub features: usize,
    /// Fraction of instances carrying the positive label.
    pub positive_fraction: f64,
    /// Number of features that actually carry class signal.
    pub informative_features: usize,
    /// Standard deviation of the per-instance feature noise.
    pub noise_std: f64,
    /// Fraction of labels flipped after generation, keeping test accuracy
    /// below 1.0 as in real data.
    pub label_noise: f64,
    /// Generation style.
    pub style: SyntheticStyle,
}

impl SyntheticSpec {
    /// Stand-in for MNIST2-6: 28x28 images of digits 2 vs 6
    /// (13,866 instances, 784 features, 51%/49%).
    pub fn mnist2_6_like() -> Self {
        Self {
            name: "mnist2-6-synth".into(),
            instances: 13_866,
            features: 784,
            positive_fraction: 0.51,
            informative_features: 180,
            noise_std: 0.14,
            label_noise: 0.002,
            style: SyntheticStyle::ImageLike,
        }
    }

    /// Stand-in for the Wisconsin breast-cancer dataset
    /// (569 instances, 30 features, 63%/37%).
    pub fn breast_cancer_like() -> Self {
        Self {
            name: "breast-cancer-synth".into(),
            instances: 569,
            features: 30,
            positive_fraction: 0.63,
            informative_features: 14,
            noise_std: 0.85,
            label_noise: 0.02,
            style: SyntheticStyle::Tabular,
        }
    }

    /// Stand-in for ijcnn1 before the stratified reduction
    /// (20,000 instances, 22 features, 10%/90%); the experiments then
    /// subsample to 10,000 instances exactly as the paper does.
    pub fn ijcnn1_like() -> Self {
        Self {
            name: "ijcnn1-synth".into(),
            instances: 20_000,
            features: 22,
            positive_fraction: 0.10,
            informative_features: 12,
            noise_std: 0.07,
            label_noise: 0.01,
            style: SyntheticStyle::Clustered,
        }
    }

    /// The three paper datasets, in Table 1 order.
    pub fn paper_trio() -> Vec<SyntheticSpec> {
        vec![
            Self::mnist2_6_like(),
            Self::breast_cancer_like(),
            Self::ijcnn1_like(),
        ]
    }

    /// Returns a copy with the instance count scaled by `factor`
    /// (never below 60 instances). Used to keep unit tests and the default
    /// experiment configuration laptop-sized while preserving the shape of
    /// the dataset.
    pub fn scaled(&self, factor: f64) -> SyntheticSpec {
        assert!(factor > 0.0, "scale factor must be positive");
        let mut spec = self.clone();
        spec.instances = ((self.instances as f64 * factor).round() as usize).max(60);
        spec
    }

    /// Generates the dataset. All randomness comes from `rng`, so a fixed
    /// seed reproduces the same dataset bit-for-bit.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        assert!(self.features >= 1, "need at least one feature");
        assert!(
            self.informative_features >= 1,
            "need at least one informative feature"
        );
        assert!(
            self.positive_fraction > 0.0 && self.positive_fraction < 1.0,
            "positive fraction must be in (0, 1)"
        );
        let positives = ((self.instances as f64) * self.positive_fraction).round() as usize;
        let positives = positives.clamp(1, self.instances - 1);
        let negatives = self.instances - positives;

        let mut rows = Vec::with_capacity(self.instances);
        let mut labels = Vec::with_capacity(self.instances);
        match self.style {
            SyntheticStyle::ImageLike => {
                self.generate_image_like(positives, negatives, &mut rows, &mut labels, rng)
            }
            SyntheticStyle::Tabular => {
                self.generate_tabular(positives, negatives, &mut rows, &mut labels, rng)
            }
            SyntheticStyle::Clustered => {
                self.generate_clustered(positives, negatives, &mut rows, &mut labels, rng)
            }
        }

        // Shuffle instances and apply label noise.
        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.shuffle(rng);
        let mut shuffled_rows = Vec::with_capacity(rows.len());
        let mut shuffled_labels = Vec::with_capacity(labels.len());
        for &i in &order {
            shuffled_rows.push(std::mem::take(&mut rows[i]));
            shuffled_labels.push(labels[i]);
        }
        for label in shuffled_labels.iter_mut() {
            if rng.gen_bool(self.label_noise.clamp(0.0, 1.0)) {
                *label = label.flipped();
            }
        }

        let features = DenseMatrix::from_rows(&shuffled_rows).expect("generated rows are rectangular");
        Dataset::new(self.name.clone(), features, shuffled_labels).expect("labels align with rows")
    }

    /// Image-like generation: each class owns a stroke prototype drawn as a
    /// set of random walks on the pixel grid, blurred into neighbouring
    /// pixels; instances add Gaussian pixel noise and a random global
    /// intensity factor, then clamp into `[0, 1]`.
    fn generate_image_like<R: Rng + ?Sized>(
        &self,
        positives: usize,
        negatives: usize,
        rows: &mut Vec<Vec<f64>>,
        labels: &mut Vec<Label>,
        rng: &mut R,
    ) {
        let side = (self.features as f64).sqrt().ceil() as usize;
        let prototype_pos = stroke_prototype(side, self.features, self.informative_features, rng);
        let prototype_neg = stroke_prototype(side, self.features, self.informative_features, rng);
        let noise = Normal::new(0.0, self.noise_std).expect("valid std");
        for (count, label, prototype) in [
            (positives, Label::Positive, &prototype_pos),
            (negatives, Label::Negative, &prototype_neg),
        ] {
            for _ in 0..count {
                let intensity: f64 = rng.gen_range(0.75..1.0);
                let row: Vec<f64> = prototype
                    .iter()
                    .map(|&p| (p * intensity + noise.sample(rng)).clamp(0.0, 1.0))
                    .collect();
                rows.push(row);
                labels.push(label);
            }
        }
    }

    /// Tabular generation: informative features get class-dependent means
    /// (separated by roughly two noise standard deviations), the remaining
    /// features are pure noise shared between classes.
    fn generate_tabular<R: Rng + ?Sized>(
        &self,
        positives: usize,
        negatives: usize,
        rows: &mut Vec<Vec<f64>>,
        labels: &mut Vec<Label>,
        rng: &mut R,
    ) {
        let informative = self.informative_features.min(self.features);
        let mut informative_indices: Vec<usize> = (0..self.features).collect();
        informative_indices.shuffle(rng);
        informative_indices.truncate(informative);

        // Class means on a raw scale; min-max normalization at the end maps
        // everything into [0, 1].
        let mut mean_pos = vec![0.0; self.features];
        let mut mean_neg = vec![0.0; self.features];
        for &feature in &informative_indices {
            let base: f64 = rng.gen_range(-1.0..1.0);
            let separation: f64 = rng.gen_range(1.4..2.4) * self.noise_std;
            let direction = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            mean_pos[feature] = base + direction * separation / 2.0;
            mean_neg[feature] = base - direction * separation / 2.0;
        }
        let noise = Normal::new(0.0, self.noise_std).expect("valid std");
        for (count, label, means) in [
            (positives, Label::Positive, &mean_pos),
            (negatives, Label::Negative, &mean_neg),
        ] {
            for _ in 0..count {
                let row: Vec<f64> = means.iter().map(|&m| m + noise.sample(rng)).collect();
                rows.push(row);
                labels.push(label);
            }
        }
        min_max_normalize_rows(rows);
    }

    /// Clustered generation: each class is a mixture of axis-aligned
    /// Gaussian clusters in the informative subspace, the rest of the
    /// features are uniform noise. The positive class uses more, tighter
    /// clusters, mimicking the rare-class structure of ijcnn1.
    fn generate_clustered<R: Rng + ?Sized>(
        &self,
        positives: usize,
        negatives: usize,
        rows: &mut Vec<Vec<f64>>,
        labels: &mut Vec<Label>,
        rng: &mut R,
    ) {
        let informative = self.informative_features.min(self.features);
        let pos_clusters = sample_cluster_centers(4, informative, rng);
        let neg_clusters = sample_cluster_centers(6, informative, rng);
        let noise = Normal::new(0.0, self.noise_std).expect("valid std");
        for (count, label, clusters) in [
            (positives, Label::Positive, &pos_clusters),
            (negatives, Label::Negative, &neg_clusters),
        ] {
            for _ in 0..count {
                let center = &clusters[rng.gen_range(0..clusters.len())];
                let mut row = Vec::with_capacity(self.features);
                // An index loop (not an iterator chain) keeps the RNG call
                // order explicit, which generated datasets depend on.
                #[allow(clippy::needless_range_loop)]
                for feature in 0..self.features {
                    let value = if feature < informative {
                        (center[feature] + noise.sample(rng)).clamp(0.0, 1.0)
                    } else {
                        rng.gen_range(0.0..1.0)
                    };
                    row.push(value);
                }
                rows.push(row);
                labels.push(label);
            }
        }
    }
}

/// Specification of a k-class synthetic dataset, the workload generator
/// behind the multi-class experiment driver. Each class is a mixture of
/// axis-aligned Gaussian clusters in an informative subspace (the
/// `Clustered` style above, generalized to k classes); label noise rotates
/// labels to the next class so every corruption is a genuine class change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiClassSpec {
    /// Dataset name used for reporting.
    pub name: String,
    /// Number of instances to generate.
    pub instances: usize,
    /// Number of features per instance.
    pub features: usize,
    /// Number of classes `k` (at least 2).
    pub num_classes: usize,
    /// Number of features that actually carry class signal.
    pub informative_features: usize,
    /// Standard deviation of the per-instance feature noise.
    pub noise_std: f64,
    /// Fraction of labels rotated to the next class after generation.
    pub label_noise: f64,
}

impl MultiClassSpec {
    /// A laptop-sized k-class workload with a learnable cluster structure,
    /// used by the k ∈ {2, 3, 5, 10} experiment sweep.
    pub fn k_class(num_classes: usize) -> Self {
        assert!(num_classes >= 2, "need at least two classes");
        Self {
            name: format!("synth-k{num_classes}"),
            instances: 240 * num_classes,
            features: 16,
            num_classes,
            informative_features: 10,
            noise_std: 0.06,
            label_noise: 0.01,
        }
    }

    /// Returns a copy with the instance count scaled by `factor`
    /// (never below 30 instances per class).
    pub fn scaled(&self, factor: f64) -> MultiClassSpec {
        assert!(factor > 0.0, "scale factor must be positive");
        let mut spec = self.clone();
        spec.instances = ((self.instances as f64 * factor).round() as usize).max(30 * self.num_classes);
        spec
    }

    /// Generates the dataset. All randomness comes from `rng`, so a fixed
    /// seed reproduces the same dataset bit-for-bit.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        assert!(self.num_classes >= 2, "need at least two classes");
        assert!(self.features >= 1, "need at least one feature");
        let informative = self.informative_features.min(self.features).max(1);
        // Two clusters per class keeps the decision surface non-linear
        // without making k=10 unlearnable at laptop-sized instance counts.
        let centers: Vec<Vec<Vec<f64>>> = (0..self.num_classes)
            .map(|_| sample_cluster_centers(2, informative, rng))
            .collect();
        let base = self.instances / self.num_classes;
        let remainder = self.instances % self.num_classes;
        let noise = Normal::new(0.0, self.noise_std).expect("valid std");
        let mut rows = Vec::with_capacity(self.instances);
        let mut labels = Vec::with_capacity(self.instances);
        for (class, clusters) in centers.iter().enumerate() {
            let count = base + usize::from(class < remainder);
            let label = Label::from_index(class).expect("class fits a label");
            for _ in 0..count {
                let center = &clusters[rng.gen_range(0..clusters.len())];
                let mut row = Vec::with_capacity(self.features);
                // An index loop (not an iterator chain) keeps the RNG call
                // order explicit, which generated datasets depend on.
                #[allow(clippy::needless_range_loop)]
                for feature in 0..self.features {
                    let value = if feature < informative {
                        (center[feature] + noise.sample(rng)).clamp(0.0, 1.0)
                    } else {
                        rng.gen_range(0.0..1.0)
                    };
                    row.push(value);
                }
                rows.push(row);
                labels.push(label);
            }
        }

        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.shuffle(rng);
        let mut shuffled_rows = Vec::with_capacity(rows.len());
        let mut shuffled_labels = Vec::with_capacity(labels.len());
        for &i in &order {
            shuffled_rows.push(std::mem::take(&mut rows[i]));
            shuffled_labels.push(labels[i]);
        }
        for label in shuffled_labels.iter_mut() {
            if rng.gen_bool(self.label_noise.clamp(0.0, 1.0)) {
                *label = label.rotated(self.num_classes);
            }
        }

        let features = DenseMatrix::from_rows(&shuffled_rows).expect("generated rows are rectangular");
        Dataset::with_classes(self.name.clone(), features, shuffled_labels, self.num_classes)
            .expect("labels align with rows")
    }
}

/// Draws a stroke prototype: a few random walks over a `side x side` grid,
/// marking roughly `target_active` pixels with high intensity and leaving a
/// dim halo around them.
fn stroke_prototype<R: Rng + ?Sized>(
    side: usize,
    features: usize,
    target_active: usize,
    rng: &mut R,
) -> Vec<f64> {
    let mut image = vec![0.0f64; features];
    let mut active = 0usize;
    let strokes = 3 + rng.gen_range(0..3);
    for _ in 0..strokes {
        let mut row = rng.gen_range(side / 4..(3 * side / 4).max(side / 4 + 1));
        let mut col = rng.gen_range(side / 4..(3 * side / 4).max(side / 4 + 1));
        let steps = (target_active / strokes).max(4);
        for _ in 0..steps {
            let index = row * side + col;
            if index < features && image[index] < 0.5 {
                image[index] = rng.gen_range(0.75..1.0);
                active += 1;
                // Dim halo on the 4-neighbourhood.
                for (dr, dc) in [(0i64, 1i64), (0, -1), (1, 0), (-1, 0)] {
                    let nr = row as i64 + dr;
                    let nc = col as i64 + dc;
                    if nr >= 0 && nc >= 0 && (nr as usize) < side && (nc as usize) < side {
                        let neighbour = nr as usize * side + nc as usize;
                        if neighbour < features && image[neighbour] == 0.0 {
                            image[neighbour] = rng.gen_range(0.2..0.4);
                        }
                    }
                }
            }
            // Random walk step, staying on the grid.
            match rng.gen_range(0..4) {
                0 if row + 1 < side => row += 1,
                1 if row > 0 => row -= 1,
                2 if col + 1 < side => col += 1,
                _ if col > 0 => col -= 1,
                _ => {}
            }
            if active >= target_active {
                break;
            }
        }
        if active >= target_active {
            break;
        }
    }
    image
}

/// Samples `count` cluster centers inside `[0.15, 0.85]^dims`.
fn sample_cluster_centers<R: Rng + ?Sized>(count: usize, dims: usize, rng: &mut R) -> Vec<Vec<f64>> {
    (0..count)
        .map(|_| (0..dims).map(|_| rng.gen_range(0.15..0.85)).collect())
        .collect()
}

/// Min-max normalizes a set of rows column-wise into `[0, 1]`, in place.
fn min_max_normalize_rows(rows: &mut [Vec<f64>]) {
    if rows.is_empty() {
        return;
    }
    let cols = rows[0].len();
    for col in 0..cols {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for row in rows.iter() {
            min = min.min(row[col]);
            max = max.max(row[col]);
        }
        let span = max - min;
        for row in rows.iter_mut() {
            row[col] = if span > 0.0 { (row[col] - min) / span } else { 0.0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn check_shape(spec: &SyntheticSpec, dataset: &Dataset) {
        assert_eq!(dataset.len(), spec.instances);
        assert_eq!(dataset.num_features(), spec.features);
        let (pos, _) = dataset.class_distribution();
        assert!(
            (pos - spec.positive_fraction).abs() < 0.05,
            "class balance drifted: wanted {}, got {pos}",
            spec.positive_fraction
        );
        for (row, _) in dataset.iter() {
            for &v in row {
                assert!((0.0..=1.0).contains(&v), "feature value {v} outside [0,1]");
            }
        }
    }

    #[test]
    fn mnist_like_has_paper_shape_when_scaled() {
        let spec = SyntheticSpec::mnist2_6_like().scaled(0.02);
        let mut rng = SmallRng::seed_from_u64(42);
        let dataset = spec.generate(&mut rng);
        check_shape(&spec, &dataset);
        assert_eq!(dataset.num_features(), 784);
    }

    #[test]
    fn breast_cancer_like_has_paper_shape() {
        let spec = SyntheticSpec::breast_cancer_like();
        let mut rng = SmallRng::seed_from_u64(42);
        let dataset = spec.generate(&mut rng);
        check_shape(&spec, &dataset);
        assert_eq!(dataset.len(), 569);
        assert_eq!(dataset.num_features(), 30);
    }

    #[test]
    fn ijcnn_like_is_imbalanced() {
        let spec = SyntheticSpec::ijcnn1_like().scaled(0.1);
        let mut rng = SmallRng::seed_from_u64(42);
        let dataset = spec.generate(&mut rng);
        check_shape(&spec, &dataset);
        let (pos, neg) = dataset.class_distribution();
        assert!(pos < 0.2 && neg > 0.8);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = SyntheticSpec::breast_cancer_like().scaled(0.3);
        let a = spec.generate(&mut SmallRng::seed_from_u64(7));
        let b = spec.generate(&mut SmallRng::seed_from_u64(7));
        let c = spec.generate(&mut SmallRng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn scaled_never_drops_below_minimum() {
        let spec = SyntheticSpec::breast_cancer_like().scaled(0.0001);
        assert_eq!(spec.instances, 60);
    }

    #[test]
    fn k_class_generator_produces_balanced_learnable_classes() {
        for k in [2usize, 3, 5, 10] {
            let spec = MultiClassSpec::k_class(k);
            let mut rng = SmallRng::seed_from_u64(17);
            let dataset = spec.generate(&mut rng);
            assert_eq!(dataset.num_classes(), k);
            assert_eq!(dataset.len(), spec.instances);
            // Balanced within rounding plus the 1% rotation noise.
            let expected = spec.instances as f64 / k as f64;
            for class in 0..k {
                let count = dataset.labels().iter().filter(|l| l.index() == class).count() as f64;
                assert!(
                    (count - expected).abs() < expected * 0.25 + 2.0,
                    "class {class} count {count} far from {expected}"
                );
            }
            for (row, _) in dataset.iter() {
                for &v in row {
                    assert!((0.0..=1.0).contains(&v));
                }
            }
        }
    }

    #[test]
    fn k_class_generation_is_deterministic_per_seed() {
        let spec = MultiClassSpec::k_class(5);
        let a = spec.generate(&mut SmallRng::seed_from_u64(7));
        let b = spec.generate(&mut SmallRng::seed_from_u64(7));
        let c = spec.generate(&mut SmallRng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn classes_are_linearly_separable_enough_for_a_stump_vote() {
        // A crude learnability check that does not depend on the tree crate:
        // using per-feature class means on a train half, a nearest-mean
        // classifier on the other half should beat 85% accuracy for the
        // tabular stand-in.
        let spec = SyntheticSpec::breast_cancer_like();
        let mut rng = SmallRng::seed_from_u64(5);
        let dataset = spec.generate(&mut rng);
        let (train, test) = dataset.split_stratified(0.7, &mut rng);
        let d = train.num_features();
        let mut mean_pos = vec![0.0; d];
        let mut mean_neg = vec![0.0; d];
        let mut count_pos = 0.0f64;
        let mut count_neg = 0.0f64;
        for (row, label) in train.iter() {
            if label == Label::Positive {
                count_pos += 1.0;
                for (m, &v) in mean_pos.iter_mut().zip(row) {
                    *m += v;
                }
            } else {
                count_neg += 1.0;
                for (m, &v) in mean_neg.iter_mut().zip(row) {
                    *m += v;
                }
            }
        }
        for m in mean_pos.iter_mut() {
            *m /= count_pos.max(1.0);
        }
        for m in mean_neg.iter_mut() {
            *m /= count_neg.max(1.0);
        }
        let mut correct = 0usize;
        for (row, label) in test.iter() {
            let dist =
                |means: &[f64]| -> f64 { means.iter().zip(row).map(|(m, v)| (m - v) * (m - v)).sum() };
            let predicted = if dist(&mean_pos) < dist(&mean_neg) {
                Label::Positive
            } else {
                Label::Negative
            };
            if predicted == label {
                correct += 1;
            }
        }
        let accuracy = correct as f64 / test.len() as f64;
        assert!(accuracy > 0.85, "nearest-mean accuracy too low: {accuracy}");
    }
}
