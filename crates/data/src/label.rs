//! Class labels.
//!
//! The paper restricts the watermarking scheme to binary classification with
//! labels in `{-1, +1}`. This module generalizes that to k-class problems:
//! a [`Label`] is a validated class index (the dataset carries the
//! class-count `k`), and [`ClassCounts`] is a per-class weight table. The
//! binary case is class index `0` (the paper's `-1`) and class index `1`
//! (the paper's `+1`), and every k=2 code path is bit-identical to the
//! original two-variant implementation.

use crate::error::DataError;
use serde::{DeError, Deserialize, Serialize, Value};

/// A class label, stored as a validated class index.
///
/// Index `0` is the paper's negative class (`-1`), index `1` the positive
/// class (`+1`); higher indices are the additional classes of a k-class
/// dataset. The associated constants [`Label::Negative`] and
/// [`Label::Positive`] keep the binary call sites readable (and usable in
/// `match` patterns via the derived `PartialEq`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(u16);

/// Numeric conventions under which a label can be parsed from a float.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelConvention {
    /// The paper's binary convention: `-1.0` is the negative class,
    /// `+1.0` the positive class. Nothing else — in particular `0.0` is
    /// rejected rather than silently conflated with `-1.0`.
    SignedBinary,
    /// Class-index convention: an integral value in `0..num_classes`.
    Indexed {
        /// Number of classes `k` of the dataset being parsed.
        num_classes: usize,
    },
}

impl std::fmt::Display for LabelConvention {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LabelConvention::SignedBinary => write!(f, "{{-1, +1}}"),
            LabelConvention::Indexed { num_classes } => {
                write!(f, "{{0..{}}}", num_classes.saturating_sub(1))
            }
        }
    }
}

#[allow(non_upper_case_globals)]
impl Label {
    /// The negative class (index 0, the paper's `-1`).
    pub const Negative: Label = Label(0);

    /// The positive class (index 1, the paper's `+1`).
    pub const Positive: Label = Label(1);

    /// Largest supported class count (labels are stored as `u16` indices).
    pub const MAX_CLASSES: usize = u16::MAX as usize + 1;

    /// The two binary labels, in index order (negative first).
    pub const ALL: [Label; 2] = [Label::Negative, Label::Positive];

    /// Builds a label from a class index validated against a dataset-level
    /// class count.
    pub fn new(index: usize, num_classes: usize) -> Result<Label, DataError> {
        if index < num_classes && index < Self::MAX_CLASSES {
            Ok(Label(index as u16))
        } else {
            Err(DataError::InvalidClassIndex { index, num_classes })
        }
    }

    /// Returns the opposite *binary* label. Used when flipping binary
    /// trigger-set labels (`D'_trigger = {(x, -y)}` in Algorithm 1); the
    /// k-class generalization is [`Label::rotated`], which coincides with
    /// `flipped` for `k = 2`.
    ///
    /// Must only be called on binary labels (index 0 or 1).
    #[inline]
    pub fn flipped(self) -> Label {
        debug_assert!(self.0 < 2, "flipped() is binary-only; use rotated(k)");
        Label(self.0 ^ 1)
    }

    /// Deterministic class rotation `(index + 1) mod k` — Algorithm 1's
    /// label-flip generalized to k classes (for `k = 2` this *is* the
    /// flip). Rotation is a fixpoint-free permutation, so a rotated label
    /// always disagrees with the original, which is all the trigger-set
    /// construction needs.
    #[inline]
    pub fn rotated(self, num_classes: usize) -> Label {
        let k = num_classes.max(2) as u16;
        Label((self.0 + 1) % k)
    }

    /// Numeric encoding: the paper's `-1.0` / `+1.0` for the binary
    /// indices, the class index as a float for `k > 2` classes.
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self.0 {
            0 => -1.0,
            1 => 1.0,
            i => f64::from(i),
        }
    }

    /// Signed integer encoding (`-1` / `+1` for the binary indices, the
    /// class index saturated into `i8` otherwise).
    #[inline]
    pub fn as_i8(self) -> i8 {
        match self.0 {
            0 => -1,
            1 => 1,
            i => i8::try_from(i).unwrap_or(i8::MAX),
        }
    }

    /// Index into per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Builds a label from a per-class array index without a dataset-level
    /// bound (any index up to [`Label::MAX_CLASSES`]); use [`Label::new`]
    /// when the class count is known.
    #[inline]
    pub fn from_index(index: usize) -> Option<Label> {
        u16::try_from(index).ok().map(Label)
    }

    /// Parses a numeric label under the paper's `{-1, +1}` convention.
    ///
    /// Exactly `-1.0` and `+1.0` are accepted; in particular `0.0` is an
    /// error (it used to be silently conflated with `-1.0`). Use
    /// [`Label::parse_numeric`] with [`LabelConvention::Indexed`] for
    /// `0..k-1` encoded data.
    pub fn from_f64(value: f64) -> Result<Label, DataError> {
        Self::parse_numeric(value, LabelConvention::SignedBinary)
    }

    /// Parses a numeric label under an explicit convention; out-of-set
    /// values are reported with the convention that was expected.
    pub fn parse_numeric(value: f64, convention: LabelConvention) -> Result<Label, DataError> {
        let reject = || DataError::LabelOutsideConvention {
            value,
            convention: convention.to_string(),
        };
        match convention {
            LabelConvention::SignedBinary => {
                if value == -1.0 {
                    Ok(Label::Negative)
                } else if value == 1.0 {
                    Ok(Label::Positive)
                } else {
                    Err(reject())
                }
            }
            LabelConvention::Indexed { num_classes } => {
                if value.fract() == 0.0 && value >= 0.0 && (value as usize) < num_classes {
                    Label::new(value as usize, num_classes).map_err(|_| reject())
                } else {
                    Err(reject())
                }
            }
        }
    }

    /// `true` for the positive class (index 1).
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 == 1
    }
}

/// Displays the paper's `-1` / `+1` for the binary indices and the class
/// index for anything above.
impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            0 => write!(f, "-1"),
            1 => write!(f, "+1"),
            i => write!(f, "{i}"),
        }
    }
}

impl std::ops::Not for Label {
    type Output = Label;

    fn not(self) -> Label {
        self.flipped()
    }
}

/// Labels serialize as their class index. Deserialization also accepts the
/// pre-k-class enum encoding (`"Negative"` / `"Positive"` strings), so
/// binary artifacts written before the format generalization keep loading.
impl Serialize for Label {
    fn to_value(&self) -> Value {
        Value::U64(u64::from(self.0))
    }
}

impl Deserialize for Label {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if let Some(index) = value.as_u64() {
            return u16::try_from(index)
                .map(Label)
                .map_err(|_| DeError::new(format!("class index {index} exceeds the label range")));
        }
        match value.as_str() {
            Some("Negative") => Ok(Label::Negative),
            Some("Positive") => Ok(Label::Positive),
            _ => Err(DeError::expected("class index or legacy variant name", "Label")),
        }
    }
}

/// Class counts the first [`CLASS_COUNTS_INLINE`] classes are stored
/// without heap allocation; larger `k` spills to a `Vec`.
pub const CLASS_COUNTS_INLINE: usize = 4;

/// Weighted per-class counts; used for class-distribution reporting
/// (Table 1) and for majority decisions inside tree leaves.
///
/// A small-vec-style table: class counts up to [`CLASS_COUNTS_INLINE`]
/// classes live inline, larger class counts spill to the heap. The table
/// grows automatically when a label at or beyond the current class count
/// is added, and never shrinks below two classes.
#[derive(Debug, Clone)]
pub struct ClassCounts {
    inline: [f64; CLASS_COUNTS_INLINE],
    spill: Vec<f64>,
    classes: u32,
}

impl Default for ClassCounts {
    fn default() -> Self {
        Self::new()
    }
}

/// Equality compares the per-class weights (and the class count), not the
/// storage representation.
impl PartialEq for ClassCounts {
    fn eq(&self, other: &Self) -> bool {
        self.slice() == other.slice()
    }
}

impl ClassCounts {
    /// An empty binary counter (two classes, both zero).
    pub fn new() -> Self {
        Self::with_classes(2)
    }

    /// An empty counter over `num_classes` classes (at least two).
    pub fn with_classes(num_classes: usize) -> Self {
        let classes = num_classes.max(2);
        let spill = if classes > CLASS_COUNTS_INLINE {
            vec![0.0; classes]
        } else {
            Vec::new()
        };
        ClassCounts {
            inline: [0.0; CLASS_COUNTS_INLINE],
            spill,
            classes: classes as u32,
        }
    }

    /// A binary counter with explicit negative/positive weights.
    #[inline]
    pub fn binary(negative: f64, positive: f64) -> Self {
        let mut inline = [0.0; CLASS_COUNTS_INLINE];
        inline[0] = negative;
        inline[1] = positive;
        ClassCounts {
            inline,
            spill: Vec::new(),
            classes: 2,
        }
    }

    /// A counter initialized from per-class weights (at least two classes;
    /// shorter slices are zero-padded to two).
    pub fn from_slice(counts: &[f64]) -> Self {
        let mut out = Self::with_classes(counts.len());
        out.slice_mut()[..counts.len()].copy_from_slice(counts);
        out
    }

    /// Number of classes tracked.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.classes as usize
    }

    /// Borrow of the per-class weights, in class-index order.
    #[inline]
    pub fn slice(&self) -> &[f64] {
        if self.classes as usize > CLASS_COUNTS_INLINE {
            &self.spill
        } else {
            &self.inline[..self.classes as usize]
        }
    }

    #[inline]
    fn slice_mut(&mut self) -> &mut [f64] {
        if self.classes as usize > CLASS_COUNTS_INLINE {
            &mut self.spill
        } else {
            &mut self.inline[..self.classes as usize]
        }
    }

    /// Grows the table to cover at least `num_classes` classes.
    pub fn grow_to(&mut self, num_classes: usize) {
        let target = num_classes.max(2);
        if target <= self.classes as usize {
            return;
        }
        if target > CLASS_COUNTS_INLINE {
            if self.spill.is_empty() {
                self.spill = vec![0.0; target];
                self.spill[..self.classes as usize]
                    .copy_from_slice(&self.inline[..self.classes as usize]);
            } else {
                self.spill.resize(target, 0.0);
            }
        }
        self.classes = target as u32;
    }

    /// Adds `weight` to the class of `label`, growing the table if the
    /// label's class is not yet tracked.
    #[inline]
    pub fn add(&mut self, label: Label, weight: f64) {
        let index = label.index();
        if index >= self.classes as usize {
            self.grow_to(index + 1);
        }
        self.slice_mut()[index] += weight;
    }

    /// Removes `weight` from the class of `label`.
    #[inline]
    pub fn remove(&mut self, label: Label, weight: f64) {
        let index = label.index();
        if index >= self.classes as usize {
            self.grow_to(index + 1);
        }
        self.slice_mut()[index] -= weight;
    }

    /// Total weight across all classes.
    #[inline]
    pub fn total(&self) -> f64 {
        total_of(self.slice())
    }

    /// Weighted count for a specific class (zero for untracked classes).
    #[inline]
    pub fn count(&self, label: Label) -> f64 {
        self.slice().get(label.index()).copied().unwrap_or(0.0)
    }

    /// Weighted count of the negative class (index 0).
    #[inline]
    pub fn negative(&self) -> f64 {
        self.slice()[0]
    }

    /// Weighted count of the positive class (index 1).
    #[inline]
    pub fn positive(&self) -> f64 {
        self.slice()[1]
    }

    /// The class with the largest weighted count. Ties go to the lowest
    /// class index (negative first), mirroring the deterministic tie-break
    /// used by the forest's plurality vote.
    #[inline]
    pub fn majority(&self) -> Label {
        Label(majority_of(self.slice()) as u16)
    }

    /// Fraction of positive-class weight, in `[0, 1]`. Returns `0.5` for
    /// an empty counter so that callers can treat it as maximally
    /// uncertain.
    #[inline]
    pub fn positive_fraction(&self) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            0.5
        } else {
            self.positive() / total
        }
    }

    /// Gini impurity of the weighted class distribution.
    #[inline]
    pub fn gini(&self) -> f64 {
        gini_of(self.slice())
    }

    /// Shannon entropy (base 2) of the weighted class distribution.
    #[inline]
    pub fn entropy(&self) -> f64 {
        entropy_of(self.slice())
    }
}

/// Total weight of a per-class slice (left-to-right sum in class order —
/// for two classes exactly the original `negative + positive`).
#[inline]
pub fn total_of(counts: &[f64]) -> f64 {
    let mut total = 0.0;
    for &count in counts {
        total += count;
    }
    total
}

/// Index of the largest count; ties go to the lowest index.
#[inline]
pub fn majority_of(counts: &[f64]) -> usize {
    let mut best = 0usize;
    for (index, &count) in counts.iter().enumerate().skip(1) {
        if count > counts[best] {
            best = index;
        }
    }
    best
}

/// Gini impurity of a per-class weight slice.
///
/// The two-class case evaluates the exact expression of the original
/// binary implementation (`1 - p_pos² - p_neg²`, in that subtraction
/// order), so k=2 results are bit-identical to the pre-k-class code.
#[inline]
pub fn gini_of(counts: &[f64]) -> f64 {
    let total = total_of(counts);
    if total <= 0.0 {
        return 0.0;
    }
    if let [negative, positive] = *counts {
        let p_pos = positive / total;
        let p_neg = negative / total;
        return 1.0 - p_pos * p_pos - p_neg * p_neg;
    }
    let mut gini = 1.0;
    for &count in counts {
        let p = count / total;
        gini -= p * p;
    }
    gini
}

/// Shannon entropy (base 2) of a per-class weight slice; the class-order
/// loop matches the original binary implementation exactly for k=2.
#[inline]
pub fn entropy_of(counts: &[f64]) -> f64 {
    let total = total_of(counts);
    if total <= 0.0 {
        return 0.0;
    }
    let mut entropy = 0.0;
    for &count in counts {
        if count > 0.0 {
            let p = count / total;
            entropy -= p * p.log2();
        }
    }
    entropy
}

/// Class counts serialize as the per-class weight sequence. Deserialization
/// also accepts the pre-k-class struct encoding (a map with `negative` /
/// `positive` fields), so binary artifacts keep loading.
impl Serialize for ClassCounts {
    fn to_value(&self) -> Value {
        Value::Seq(self.slice().iter().map(|count| count.to_value()).collect())
    }
}

impl Deserialize for ClassCounts {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if let Some(items) = value.as_seq() {
            if items.len() > Label::MAX_CLASSES {
                return Err(DeError::new(format!(
                    "ClassCounts tracks {} classes but at most {} are supported",
                    items.len(),
                    Label::MAX_CLASSES
                )));
            }
            let counts: Vec<f64> = items.iter().map(f64::from_value).collect::<Result<_, _>>()?;
            return Ok(ClassCounts::from_slice(&counts));
        }
        if let Some(entries) = value.as_map() {
            let negative = f64::from_value(serde::map_get(entries, "negative")?)?;
            let positive = f64::from_value(serde::map_get(entries, "positive")?)?;
            return Ok(ClassCounts::binary(negative, positive));
        }
        Err(DeError::expected("sequence or legacy map", "ClassCounts"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flipping_is_an_involution() {
        for label in Label::ALL {
            assert_eq!(label.flipped().flipped(), label);
            assert_eq!(!(!label), label);
        }
    }

    #[test]
    fn rotation_generalizes_the_flip() {
        for label in Label::ALL {
            assert_eq!(label.rotated(2), label.flipped());
        }
        let k = 5;
        for index in 0..k {
            let label = Label::new(index, k).unwrap();
            let rotated = label.rotated(k);
            assert_ne!(rotated, label, "rotation must be fixpoint-free");
            assert_eq!(rotated.index(), (index + 1) % k);
        }
    }

    #[test]
    fn numeric_round_trip() {
        assert_eq!(Label::from_f64(-1.0).unwrap(), Label::Negative);
        assert_eq!(Label::from_f64(1.0).unwrap(), Label::Positive);
        assert_eq!(Label::Positive.as_f64(), 1.0);
        assert_eq!(Label::Negative.as_i8(), -1);
        assert!(Label::from_f64(0.25).is_err());
    }

    #[test]
    fn signed_binary_convention_rejects_zero() {
        let err = Label::from_f64(0.0).unwrap_err();
        match err {
            DataError::LabelOutsideConvention { value, convention } => {
                assert_eq!(value, 0.0);
                assert!(convention.contains("-1"), "convention named: {convention}");
            }
            other => panic!("expected LabelOutsideConvention, got {other:?}"),
        }
    }

    #[test]
    fn indexed_convention_parses_class_indices() {
        let convention = LabelConvention::Indexed { num_classes: 5 };
        assert_eq!(Label::parse_numeric(0.0, convention).unwrap().index(), 0);
        assert_eq!(Label::parse_numeric(4.0, convention).unwrap().index(), 4);
        assert!(Label::parse_numeric(5.0, convention).is_err());
        assert!(Label::parse_numeric(-1.0, convention).is_err());
        assert!(Label::parse_numeric(1.5, convention).is_err());
        let err = Label::parse_numeric(7.0, convention).unwrap_err();
        assert!(err.to_string().contains("0..4"), "error names the range: {err}");
    }

    #[test]
    fn validated_construction_respects_the_class_count() {
        assert!(Label::new(2, 3).is_ok());
        assert!(Label::new(3, 3).is_err());
        assert_eq!(Label::new(0, 2).unwrap(), Label::Negative);
    }

    #[test]
    fn index_round_trip() {
        for label in Label::ALL {
            assert_eq!(Label::from_index(label.index()), Some(label));
        }
        assert_eq!(Label::from_index(2).map(|l| l.index()), Some(2));
        assert_eq!(Label::from_index(Label::MAX_CLASSES), None);
    }

    #[test]
    fn display_matches_paper_convention() {
        assert_eq!(Label::Positive.to_string(), "+1");
        assert_eq!(Label::Negative.to_string(), "-1");
        assert_eq!(Label::from_index(3).unwrap().to_string(), "3");
    }

    #[test]
    fn class_counts_majority_and_total() {
        let mut counts = ClassCounts::new();
        counts.add(Label::Positive, 2.0);
        counts.add(Label::Negative, 3.0);
        assert_eq!(counts.total(), 5.0);
        assert_eq!(counts.majority(), Label::Negative);
        counts.add(Label::Positive, 2.0);
        assert_eq!(counts.majority(), Label::Positive);
        counts.remove(Label::Positive, 4.0);
        assert_eq!(counts.majority(), Label::Negative);
    }

    #[test]
    fn majority_tie_breaks_negative() {
        let mut counts = ClassCounts::new();
        counts.add(Label::Positive, 1.0);
        counts.add(Label::Negative, 1.0);
        assert_eq!(counts.majority(), Label::Negative);
    }

    #[test]
    fn majority_tie_breaks_lowest_index_for_k_classes() {
        let mut counts = ClassCounts::with_classes(6);
        counts.add(Label::from_index(5).unwrap(), 2.0);
        counts.add(Label::from_index(3).unwrap(), 2.0);
        counts.add(Label::from_index(1).unwrap(), 1.0);
        assert_eq!(counts.majority().index(), 3);
    }

    #[test]
    fn counts_grow_when_new_classes_appear() {
        let mut counts = ClassCounts::new();
        assert_eq!(counts.num_classes(), 2);
        counts.add(Label::from_index(6).unwrap(), 1.5);
        assert_eq!(counts.num_classes(), 7);
        assert_eq!(counts.count(Label::from_index(6).unwrap()), 1.5);
        assert_eq!(counts.count(Label::from_index(4).unwrap()), 0.0);
        // The pre-growth inline values survive the spill.
        counts.add(Label::Negative, 2.0);
        assert_eq!(counts.negative(), 2.0);
    }

    #[test]
    fn gini_and_entropy_extremes() {
        let mut pure = ClassCounts::new();
        pure.add(Label::Positive, 10.0);
        assert!(pure.gini().abs() < 1e-12);
        assert!(pure.entropy().abs() < 1e-12);

        let mut balanced = ClassCounts::new();
        balanced.add(Label::Positive, 5.0);
        balanced.add(Label::Negative, 5.0);
        assert!((balanced.gini() - 0.5).abs() < 1e-12);
        assert!((balanced.entropy() - 1.0).abs() < 1e-12);

        // Uniform over 4 classes: gini = 1 - 4·(1/4)² = 0.75, entropy = 2.
        let uniform = ClassCounts::from_slice(&[1.0; 4]);
        assert!((uniform.gini() - 0.75).abs() < 1e-12);
        assert!((uniform.entropy() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn binary_gini_matches_the_general_expression() {
        // The k=2 fast path must agree with the general formula to within
        // float associativity; spot-check a few distributions.
        for (neg, pos) in [(3.0, 7.0), (1.0, 1.0), (0.0, 5.0), (2.5, 0.5)] {
            let binary = gini_of(&[neg, pos]);
            let total = neg + pos;
            let general: f64 = 1.0 - (pos / total).powi(2) - (neg / total).powi(2);
            assert!((binary - general).abs() < 1e-15);
        }
    }

    #[test]
    fn positive_fraction_of_empty_counter_is_half() {
        assert_eq!(ClassCounts::new().positive_fraction(), 0.5);
    }

    #[test]
    fn label_serializes_as_class_index_and_loads_legacy_names() {
        let json = serde_json::to_string(&Label::Positive).unwrap();
        assert_eq!(json, "1");
        let back: Label = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Label::Positive);
        let legacy: Label = serde_json::from_str("\"Negative\"").unwrap();
        assert_eq!(legacy, Label::Negative);
        let legacy: Label = serde_json::from_str("\"Positive\"").unwrap();
        assert_eq!(legacy, Label::Positive);
        assert!(serde_json::from_str::<Label>("\"Sideways\"").is_err());
    }

    #[test]
    fn class_counts_serialize_as_sequence_and_load_legacy_maps() {
        let counts = ClassCounts::from_slice(&[1.0, 2.0, 3.0]);
        let json = serde_json::to_string(&counts).unwrap();
        let back: ClassCounts = serde_json::from_str(&json).unwrap();
        assert_eq!(back, counts);
        let legacy: ClassCounts = serde_json::from_str("{\"negative\":4.0,\"positive\":5.0}").unwrap();
        assert_eq!(legacy, ClassCounts::binary(4.0, 5.0));
        assert!(serde_json::from_str::<ClassCounts>("true").is_err());
    }
}
