//! Binary class labels.
//!
//! The paper restricts the watermarking scheme to binary classification with
//! labels in `{-1, +1}`; multi-class tasks are handled by one-vs-rest
//! decompositions built on top of this type.

use crate::error::DataError;
use serde::{Deserialize, Serialize};

/// A binary class label, following the paper's `{-1, +1}` convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Label {
    /// The negative class, encoded as `-1`.
    Negative,
    /// The positive class, encoded as `+1`.
    Positive,
}

impl Label {
    /// All labels, in a fixed order (negative first).
    pub const ALL: [Label; 2] = [Label::Negative, Label::Positive];

    /// Returns the opposite label. Used when flipping trigger-set labels
    /// (`D'_trigger = {(x, -y)}` in Algorithm 1).
    #[inline]
    pub fn flipped(self) -> Label {
        match self {
            Label::Negative => Label::Positive,
            Label::Positive => Label::Negative,
        }
    }

    /// Numeric encoding used by the paper (`-1.0` / `+1.0`).
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            Label::Negative => -1.0,
            Label::Positive => 1.0,
        }
    }

    /// Signed integer encoding (`-1` / `+1`).
    #[inline]
    pub fn as_i8(self) -> i8 {
        match self {
            Label::Negative => -1,
            Label::Positive => 1,
        }
    }

    /// Index into per-class arrays: negative is `0`, positive is `1`.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Label::Negative => 0,
            Label::Positive => 1,
        }
    }

    /// Builds a label from a per-class array index.
    #[inline]
    pub fn from_index(index: usize) -> Option<Label> {
        match index {
            0 => Some(Label::Negative),
            1 => Some(Label::Positive),
            _ => None,
        }
    }

    /// Parses a numeric label. Accepts the `{-1, +1}` convention as well as
    /// the `{0, 1}` convention common in CSV dumps of sklearn datasets.
    pub fn from_f64(value: f64) -> Result<Label, DataError> {
        if value == -1.0 || value == 0.0 {
            Ok(Label::Negative)
        } else if value == 1.0 {
            Ok(Label::Positive)
        } else {
            Err(DataError::InvalidLabel(value))
        }
    }

    /// `true` for the positive class.
    #[inline]
    pub fn is_positive(self) -> bool {
        matches!(self, Label::Positive)
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Label::Negative => write!(f, "-1"),
            Label::Positive => write!(f, "+1"),
        }
    }
}

impl std::ops::Not for Label {
    type Output = Label;

    fn not(self) -> Label {
        self.flipped()
    }
}

/// Counts of instances per class; used for class-distribution reporting
/// (Table 1) and for majority decisions inside tree leaves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassCounts {
    /// Weighted count of negative instances.
    pub negative: f64,
    /// Weighted count of positive instances.
    pub positive: f64,
}

impl ClassCounts {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `weight` to the class of `label`.
    #[inline]
    pub fn add(&mut self, label: Label, weight: f64) {
        match label {
            Label::Negative => self.negative += weight,
            Label::Positive => self.positive += weight,
        }
    }

    /// Removes `weight` from the class of `label`.
    #[inline]
    pub fn remove(&mut self, label: Label, weight: f64) {
        match label {
            Label::Negative => self.negative -= weight,
            Label::Positive => self.positive -= weight,
        }
    }

    /// Total weight across both classes.
    #[inline]
    pub fn total(&self) -> f64 {
        self.negative + self.positive
    }

    /// Weighted count for a specific class.
    #[inline]
    pub fn count(&self, label: Label) -> f64 {
        match label {
            Label::Negative => self.negative,
            Label::Positive => self.positive,
        }
    }

    /// The class with the larger weighted count. Ties go to the negative
    /// class, mirroring the deterministic tie-break used by the forest.
    #[inline]
    pub fn majority(&self) -> Label {
        if self.positive > self.negative {
            Label::Positive
        } else {
            Label::Negative
        }
    }

    /// Fraction of positive weight, in `[0, 1]`. Returns `0.5` for an empty
    /// counter so that callers can treat it as maximally uncertain.
    #[inline]
    pub fn positive_fraction(&self) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            0.5
        } else {
            self.positive / total
        }
    }

    /// Gini impurity of the weighted class distribution.
    #[inline]
    pub fn gini(&self) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            return 0.0;
        }
        let p_pos = self.positive / total;
        let p_neg = self.negative / total;
        1.0 - p_pos * p_pos - p_neg * p_neg
    }

    /// Shannon entropy (base 2) of the weighted class distribution.
    #[inline]
    pub fn entropy(&self) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            return 0.0;
        }
        let mut entropy = 0.0;
        for count in [self.negative, self.positive] {
            if count > 0.0 {
                let p = count / total;
                entropy -= p * p.log2();
            }
        }
        entropy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flipping_is_an_involution() {
        for label in Label::ALL {
            assert_eq!(label.flipped().flipped(), label);
            assert_eq!(!(!label), label);
        }
    }

    #[test]
    fn numeric_round_trip() {
        assert_eq!(Label::from_f64(-1.0).unwrap(), Label::Negative);
        assert_eq!(Label::from_f64(0.0).unwrap(), Label::Negative);
        assert_eq!(Label::from_f64(1.0).unwrap(), Label::Positive);
        assert_eq!(Label::Positive.as_f64(), 1.0);
        assert_eq!(Label::Negative.as_i8(), -1);
        assert!(Label::from_f64(0.25).is_err());
    }

    #[test]
    fn index_round_trip() {
        for label in Label::ALL {
            assert_eq!(Label::from_index(label.index()), Some(label));
        }
        assert_eq!(Label::from_index(2), None);
    }

    #[test]
    fn display_matches_paper_convention() {
        assert_eq!(Label::Positive.to_string(), "+1");
        assert_eq!(Label::Negative.to_string(), "-1");
    }

    #[test]
    fn class_counts_majority_and_total() {
        let mut counts = ClassCounts::new();
        counts.add(Label::Positive, 2.0);
        counts.add(Label::Negative, 3.0);
        assert_eq!(counts.total(), 5.0);
        assert_eq!(counts.majority(), Label::Negative);
        counts.add(Label::Positive, 2.0);
        assert_eq!(counts.majority(), Label::Positive);
        counts.remove(Label::Positive, 4.0);
        assert_eq!(counts.majority(), Label::Negative);
    }

    #[test]
    fn majority_tie_breaks_negative() {
        let mut counts = ClassCounts::new();
        counts.add(Label::Positive, 1.0);
        counts.add(Label::Negative, 1.0);
        assert_eq!(counts.majority(), Label::Negative);
    }

    #[test]
    fn gini_and_entropy_extremes() {
        let mut pure = ClassCounts::new();
        pure.add(Label::Positive, 10.0);
        assert!(pure.gini().abs() < 1e-12);
        assert!(pure.entropy().abs() < 1e-12);

        let mut balanced = ClassCounts::new();
        balanced.add(Label::Positive, 5.0);
        balanced.add(Label::Negative, 5.0);
        assert!((balanced.gini() - 0.5).abs() < 1e-12);
        assert!((balanced.entropy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn positive_fraction_of_empty_counter_is_half() {
        assert_eq!(ClassCounts::new().positive_fraction(), 0.5);
    }
}
