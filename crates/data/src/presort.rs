//! Presorted and quantile-binned feature views shared across tree training.
//!
//! CART split search needs, for every node and candidate feature, the
//! node's samples ordered by feature value. Sorting per node costs
//! `O(k · s log s)` per node with cache-hostile gathers from the row-major
//! matrix. Because the sort order of a feature column is independent of
//! sample *weights*, it can instead be computed **once per dataset** and
//! reused by every tree, every forest, and — crucially — every retraining
//! round of the watermark embedding loop (Algorithm 1 retrains the same
//! dataset dozens of times with only the weights changing).
//!
//! [`Presort`] holds, per feature, the column-major values and the row
//! indices sorted by value. [`Binning`] derives per-feature quantile bin
//! edges and per-sample bin codes from a presort, enabling the
//! LightGBM-style histogram split strategy for wide data. Both are cached
//! at the [`crate::Dataset`] level (see `Dataset::presort` /
//! `Dataset::binning`).

use crate::matrix::{ColumnMajor, DenseMatrix};

/// Per-feature sorted order of a feature matrix, built once per dataset.
#[derive(Debug, Clone)]
pub struct Presort {
    rows: usize,
    cols: usize,
    /// Column-major copy of the feature values (unsorted, row order).
    columns: ColumnMajor,
    /// `cols × rows` row indices; the slice for feature `f` lists all rows
    /// sorted ascending by `x[f]` (ties broken by row index, `NaN` last
    /// per [`f64::total_cmp`]).
    sorted_rows: Vec<u32>,
    /// `cols × rows` feature values parallel to `sorted_rows`.
    sorted_values: Vec<f64>,
}

impl Presort {
    /// Builds the presorted view of a matrix. `O(d · n log n)`, paid once
    /// per dataset.
    ///
    /// # Panics
    /// Panics if the matrix has more than `u32::MAX` rows.
    pub fn build(matrix: &DenseMatrix) -> Presort {
        let rows = matrix.rows();
        let cols = matrix.cols();
        assert!(
            rows <= u32::MAX as usize,
            "presort supports at most 2^32 - 1 rows"
        );
        let columns = matrix.to_column_major();
        let mut sorted_rows = Vec::with_capacity(rows * cols);
        let mut sorted_values = Vec::with_capacity(rows * cols);
        let mut order: Vec<u32> = Vec::with_capacity(rows);
        for feature in 0..cols {
            let column = columns.column(feature);
            order.clear();
            order.extend(0..rows as u32);
            // total_cmp gives a total order (NaN sorts last among positive
            // NaNs); the row-index tie-break makes the order fully
            // deterministic, which keeps tree training reproducible.
            order.sort_unstable_by(|&a, &b| {
                column[a as usize].total_cmp(&column[b as usize]).then(a.cmp(&b))
            });
            sorted_rows.extend_from_slice(&order);
            sorted_values.extend(order.iter().map(|&r| column[r as usize]));
        }
        Presort {
            rows,
            cols,
            columns,
            sorted_rows,
            sorted_values,
        }
    }

    /// Number of rows (instances).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of features.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The column-major (unsorted) feature values.
    #[inline]
    pub fn columns(&self) -> &ColumnMajor {
        &self.columns
    }

    /// Row indices sorted ascending by feature value.
    ///
    /// # Panics
    /// Panics if `feature >= cols()`.
    #[inline]
    pub fn sorted_rows(&self, feature: usize) -> &[u32] {
        assert!(feature < self.cols, "feature {feature} out of bounds");
        &self.sorted_rows[feature * self.rows..(feature + 1) * self.rows]
    }

    /// Feature values parallel to [`Presort::sorted_rows`].
    ///
    /// # Panics
    /// Panics if `feature >= cols()`.
    #[inline]
    pub fn sorted_values(&self, feature: usize) -> &[f64] {
        assert!(feature < self.cols, "feature {feature} out of bounds");
        &self.sorted_values[feature * self.rows..(feature + 1) * self.rows]
    }
}

/// Per-feature quantile binning derived from a [`Presort`], for the
/// histogram split strategy.
///
/// Feature `f` is cut at up to `max_bins - 1` equal-frequency edges taken
/// from the actual data values; sample `i` carries a bin code in
/// `0..num_bins(f)` such that `code(x) <= b  ⇔  x <= edge(f, b)`. A split
/// "after bin `b`" therefore uses the real data value `edge(f, b)` as its
/// threshold and classifies exactly like the exact split search would.
#[derive(Debug, Clone)]
pub struct Binning {
    rows: usize,
    cols: usize,
    max_bins: usize,
    /// Per feature: ascending cut values (length `num_bins(f) - 1`).
    edges: Vec<Vec<f64>>,
    /// `cols × rows` per-sample bin codes, column-major.
    codes: Vec<u16>,
}

impl Binning {
    /// Builds quantile bins from a presorted view. `O(d · n)`.
    ///
    /// # Panics
    /// Panics unless `2 <= max_bins <= u16::MAX`.
    pub fn build(presort: &Presort, max_bins: usize) -> Binning {
        assert!(
            (2..=u16::MAX as usize).contains(&max_bins),
            "max_bins must be in 2..=65535"
        );
        let rows = presort.rows();
        let cols = presort.cols();
        let mut edges = Vec::with_capacity(cols);
        let mut codes = vec![0u16; rows * cols];
        for feature in 0..cols {
            let sorted_values = presort.sorted_values(feature);
            let sorted_rows = presort.sorted_rows(feature);
            let feature_edges = quantile_edges(sorted_values, max_bins);
            // Assign codes by walking the sorted column once.
            let code_column = &mut codes[feature * rows..(feature + 1) * rows];
            let mut current = 0usize;
            for (&value, &row) in sorted_values.iter().zip(sorted_rows) {
                while current < feature_edges.len() && feature_edges[current] < value {
                    current += 1;
                }
                // NaN never advances `current` (comparisons are false), but
                // prediction routes NaN right at every threshold, so NaN
                // samples must carry the last bin's code to train the same
                // way. (+inf lands there naturally: every edge is finite.)
                code_column[row as usize] = if value.is_nan() {
                    feature_edges.len() as u16
                } else {
                    current as u16
                };
            }
            edges.push(feature_edges);
        }
        Binning {
            rows,
            cols,
            max_bins,
            edges,
            codes,
        }
    }

    /// Number of rows (instances).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of features.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The requested upper bound on bins per feature.
    #[inline]
    pub fn max_bins(&self) -> usize {
        self.max_bins
    }

    /// Number of bins actually used by a feature (1 for constant columns).
    #[inline]
    pub fn num_bins(&self, feature: usize) -> usize {
        self.edges[feature].len() + 1
    }

    /// The threshold value separating bin `b` from bin `b + 1`; an actual
    /// data value, so `x <= edge` reproduces the bin boundary exactly.
    #[inline]
    pub fn edge(&self, feature: usize, bin: usize) -> f64 {
        self.edges[feature][bin]
    }

    /// Per-sample bin codes of a feature (row order).
    ///
    /// # Panics
    /// Panics if `feature >= cols()`.
    #[inline]
    pub fn codes(&self, feature: usize) -> &[u16] {
        assert!(feature < self.cols, "feature {feature} out of bounds");
        &self.codes[feature * self.rows..(feature + 1) * self.rows]
    }
}

/// Picks up to `max_bins - 1` ascending, distinct, finite cut values at
/// equal-frequency ranks of an already sorted column.
fn quantile_edges(sorted_values: &[f64], max_bins: usize) -> Vec<f64> {
    let n = sorted_values.len();
    let mut edges: Vec<f64> = Vec::new();
    if n < 2 {
        return edges;
    }
    let last = sorted_values[n - 1];
    for bin in 1..max_bins {
        let rank = (n * bin).div_euclid(max_bins).min(n - 1);
        let candidate = sorted_values[rank];
        // An edge equal to the column maximum can never separate anything,
        // and non-finite edges would poison thresholds.
        if !candidate.is_finite() || candidate >= last {
            continue;
        }
        if edges.last().is_none_or(|&previous| candidate > previous) {
            edges.push(candidate);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DenseMatrix;

    fn matrix(rows: &[Vec<f64>]) -> DenseMatrix {
        DenseMatrix::from_rows(rows).unwrap()
    }

    #[test]
    fn presort_orders_every_feature() {
        let m = matrix(&[vec![3.0, 0.5], vec![1.0, 0.7], vec![2.0, 0.1]]);
        let presort = Presort::build(&m);
        assert_eq!(presort.sorted_rows(0), &[1, 2, 0]);
        assert_eq!(presort.sorted_values(0), &[1.0, 2.0, 3.0]);
        assert_eq!(presort.sorted_rows(1), &[2, 0, 1]);
        assert_eq!(presort.columns().column(1), &[0.5, 0.7, 0.1]);
    }

    #[test]
    fn presort_breaks_ties_by_row_index() {
        let m = matrix(&[vec![1.0], vec![0.5], vec![1.0], vec![0.5]]);
        let presort = Presort::build(&m);
        assert_eq!(presort.sorted_rows(0), &[1, 3, 0, 2]);
    }

    #[test]
    fn presort_sorts_nan_last() {
        let m = matrix(&[vec![f64::NAN], vec![0.5], vec![f64::INFINITY]]);
        let presort = Presort::build(&m);
        assert_eq!(presort.sorted_rows(0), &[1, 2, 0]);
    }

    #[test]
    fn binning_codes_respect_edge_semantics() {
        let values: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let m = matrix(&values);
        let presort = Presort::build(&m);
        let binning = Binning::build(&presort, 4);
        assert_eq!(binning.num_bins(0), 4);
        let codes = binning.codes(0);
        for (row, &code) in codes.iter().enumerate() {
            let value = row as f64;
            for bin in 0..binning.num_bins(0) - 1 {
                assert_eq!(
                    usize::from(code) <= bin,
                    value <= binning.edge(0, bin),
                    "row {row} bin {bin}"
                );
            }
        }
    }

    #[test]
    fn nan_and_inf_samples_carry_the_last_bin_code() {
        // Prediction sends NaN/+inf right at every threshold (`x <= t` is
        // false), so training must bucket them past every edge.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64])
            .chain([vec![f64::NAN], vec![f64::INFINITY]])
            .collect();
        let m = matrix(&rows);
        let presort = Presort::build(&m);
        let binning = Binning::build(&presort, 4);
        let last = binning.num_bins(0) as u16 - 1;
        let codes = binning.codes(0);
        assert_eq!(codes[20], last, "NaN row");
        assert_eq!(codes[21], last, "+inf row");
        // Edges stay finite so thresholds remain usable.
        for bin in 0..binning.num_bins(0) - 1 {
            assert!(binning.edge(0, bin).is_finite());
        }
    }

    #[test]
    fn constant_columns_get_a_single_bin() {
        let m = matrix(&[vec![0.5], vec![0.5], vec![0.5]]);
        let presort = Presort::build(&m);
        let binning = Binning::build(&presort, 16);
        assert_eq!(binning.num_bins(0), 1);
        assert!(binning.codes(0).iter().all(|&c| c == 0));
    }

    #[test]
    fn few_distinct_values_collapse_bins() {
        let m = matrix(&[vec![0.0], vec![0.0], vec![1.0], vec![1.0], vec![2.0]]);
        let presort = Presort::build(&m);
        let binning = Binning::build(&presort, 64);
        // Only two usable cut points exist (after 0.0 and after 1.0).
        assert_eq!(binning.num_bins(0), 3);
        assert_eq!(binning.codes(0), &[0, 0, 1, 1, 2]);
    }
}
