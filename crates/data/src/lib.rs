//! # wdte-data
//!
//! Dataset substrate for the *Watermarking Decision Tree Ensembles*
//! reproduction: dense feature matrices, k-class labels (the paper's
//! binary `{-1, +1}` setting is the k=2 special case), synthetic dataset
//! generators standing in for the paper's MNIST2-6 / breast-cancer / ijcnn1
//! datasets plus a k-class workload generator, stratified splits, k-fold
//! cross validation and evaluation metrics.
//!
//! This crate is dependency-light and knows nothing about trees or
//! watermarking; the learning substrate (`wdte-trees`) and the watermarking
//! scheme (`wdte-core`) are layered on top of it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod dataset;
pub mod error;
pub mod folds;
pub mod label;
pub mod matrix;
pub mod metrics;
pub mod presort;
pub mod synth;

pub use dataset::{Dataset, DatasetStats, TrainingCache};
pub use error::{DataError, DataResult};
pub use folds::{stratified_k_folds, Fold};
pub use label::{entropy_of, gini_of, majority_of, total_of, ClassCounts, Label, LabelConvention};
pub use matrix::{l2_distance, linf_distance, ColumnMajor, DenseMatrix};
pub use metrics::{accuracy, mean_std, roc_auc, ConfusionMatrix};
pub use presort::{Binning, Presort};
pub use synth::{MultiClassSpec, SyntheticSpec, SyntheticStyle};

/// Commonly used types, re-exported for `use wdte_data::prelude::*`.
pub mod prelude {
    pub use crate::csv::{load_csv, load_csv_with, parse_csv, parse_csv_with, save_csv, LabelColumn};
    pub use crate::dataset::{Dataset, DatasetStats};
    pub use crate::error::{DataError, DataResult};
    pub use crate::folds::{stratified_k_folds, Fold};
    pub use crate::label::{ClassCounts, Label, LabelConvention};
    pub use crate::matrix::{l2_distance, linf_distance, ColumnMajor, DenseMatrix};
    pub use crate::metrics::{accuracy, mean_std, roc_auc, ConfusionMatrix};
    pub use crate::presort::{Binning, Presort};
    pub use crate::synth::{MultiClassSpec, SyntheticSpec, SyntheticStyle};
}
