//! Error type shared by the dataset substrate.

use std::fmt;

/// Errors produced while constructing, loading or manipulating datasets.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A matrix or dataset was built from rows of inconsistent length.
    DimensionMismatch {
        /// Expected number of columns.
        expected: usize,
        /// Number of columns actually found.
        found: usize,
    },
    /// The number of labels does not match the number of rows.
    LabelCountMismatch {
        /// Number of rows in the feature matrix.
        rows: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// An operation required a non-empty dataset but received an empty one.
    EmptyDataset,
    /// A label value outside the supported binary set was encountered.
    InvalidLabel(f64),
    /// A numeric label did not belong to the expected parsing convention
    /// (the paper's `{-1, +1}` or the class-index `{0..k-1}` set).
    LabelOutsideConvention {
        /// Offending numeric value.
        value: f64,
        /// Human-readable rendering of the expected convention.
        convention: String,
    },
    /// A class index was at or beyond the dataset's class count.
    InvalidClassIndex {
        /// Offending class index.
        index: usize,
        /// Number of classes of the dataset.
        num_classes: usize,
    },
    /// A split fraction or similar ratio was outside `(0, 1)`.
    InvalidFraction(f64),
    /// An index referred to a row or column that does not exist.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Size of the indexed dimension.
        len: usize,
    },
    /// A CSV record could not be parsed.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human readable description of the problem.
        message: String,
    },
    /// Wrapper around I/O failures while loading or saving datasets.
    Io(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "dimension mismatch: expected {expected} columns, found {found}"
                )
            }
            DataError::LabelCountMismatch { rows, labels } => {
                write!(f, "label count mismatch: {rows} rows but {labels} labels")
            }
            DataError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            DataError::InvalidLabel(v) => write!(f, "invalid binary label value {v}"),
            DataError::LabelOutsideConvention { value, convention } => {
                write!(f, "label value {value} is not in the expected set {convention}")
            }
            DataError::InvalidClassIndex { index, num_classes } => {
                write!(f, "class index {index} out of range for {num_classes} classes")
            }
            DataError::InvalidFraction(v) => write!(f, "fraction {v} outside the open interval (0, 1)"),
            DataError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            DataError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            DataError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(err: std::io::Error) -> Self {
        DataError::Io(err.to_string())
    }
}

/// Convenience result alias for the data crate.
pub type DataResult<T> = Result<T, DataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch_mentions_both_sizes() {
        let err = DataError::DimensionMismatch {
            expected: 4,
            found: 7,
        };
        let text = err.to_string();
        assert!(text.contains('4') && text.contains('7'));
    }

    #[test]
    fn display_parse_error_mentions_line() {
        let err = DataError::Parse {
            line: 12,
            message: "bad float".into(),
        };
        assert!(err.to_string().contains("line 12"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: DataError = io.into();
        assert!(matches!(err, DataError::Io(_)));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(DataError::EmptyDataset, DataError::EmptyDataset);
        assert_ne!(DataError::EmptyDataset, DataError::InvalidLabel(0.5));
    }
}
