//! Labeled datasets: a dense feature matrix paired with binary labels.

use crate::error::{DataError, DataResult};
use crate::label::{ClassCounts, Label};
use crate::matrix::DenseMatrix;
use crate::presort::{Binning, Presort};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{DeError, Deserialize, Serialize, Value};
use std::sync::{Arc, Mutex, OnceLock};

/// Lazily built, shared training-time views of a dataset's features: the
/// per-feature presorted order and any quantile binnings requested so far.
///
/// The cache is keyed purely by the *feature matrix*, which label edits do
/// not touch — so the label-flipped copies Algorithm 1 trains on share the
/// cache of the original training set, and the dozens of reweighted
/// retraining rounds of `TrainWithTrigger` all reuse one presort.
#[derive(Debug, Default)]
pub struct TrainingCache {
    presort: OnceLock<Arc<Presort>>,
    binnings: Mutex<Vec<(usize, Arc<Binning>)>>,
}

/// A labeled dataset of real-valued feature vectors and binary labels.
///
/// # NaN handling
///
/// Like [`DenseMatrix`], the constructors accept non-finite feature
/// values; training orders them deterministically with `total_cmp` and
/// never places split thresholds next to them (see the `DenseMatrix`
/// documentation). Labels are always finite by construction.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. `"mnist2-6-synth"`).
    pub name: String,
    features: DenseMatrix,
    labels: Vec<Label>,
    /// Number of classes `k` of the label space (at least 2). Every label
    /// index is strictly below this.
    num_classes: usize,
    /// Shared across clones and label-flipped copies; rebuilt on feature
    /// mutation (`normalize`).
    cache: Arc<TrainingCache>,
}

/// Equality ignores the derived training cache.
impl PartialEq for Dataset {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.features == other.features
            && self.labels == other.labels
            && self.num_classes == other.num_classes
    }
}

impl Serialize for Dataset {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("name".to_string(), self.name.to_value()),
            ("features".to_string(), self.features.to_value()),
            ("labels".to_string(), self.labels.to_value()),
            ("num_classes".to_string(), self.num_classes.to_value()),
        ])
    }
}

impl Deserialize for Dataset {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = value.as_map().ok_or_else(|| DeError::expected("map", "Dataset"))?;
        let name = String::from_value(serde::map_get(entries, "name")?)?;
        let features = DenseMatrix::from_value(serde::map_get(entries, "features")?)?;
        let labels: Vec<Label> = Vec::from_value(serde::map_get(entries, "labels")?)?;
        // Re-validate through the checked constructors so a corrupted
        // serialized dataset (label count disagreeing with the feature
        // rows, labels outside the class count) is rejected instead of
        // panicking during verification. Pre-k-class artifacts have no
        // `num_classes` entry; they are binary by construction, so the
        // inferring constructor restores them as k = 2.
        let num_classes = entries.iter().find(|(key, _)| key == "num_classes");
        match num_classes {
            Some((_, value)) => {
                let num_classes = usize::from_value(value)?;
                Dataset::with_classes(name, features, labels, num_classes)
            }
            None => Dataset::new(name, features, labels),
        }
        .map_err(|err| DeError::new(format!("invalid Dataset: {err}")))
    }
}

impl Dataset {
    /// Builds a dataset, validating that the number of labels matches the
    /// number of feature rows. The class count is inferred as
    /// `max(2, largest label index + 1)`; use [`Dataset::with_classes`]
    /// when the label space is known (a subset may not exercise every
    /// class).
    pub fn new(name: impl Into<String>, features: DenseMatrix, labels: Vec<Label>) -> DataResult<Self> {
        let inferred = labels.iter().map(|label| label.index() + 1).max().unwrap_or(2).max(2);
        Self::with_classes(name, features, labels, inferred)
    }

    /// Builds a dataset over an explicit k-class label space, validating
    /// the label count against the feature rows and every label index
    /// against `num_classes`.
    pub fn with_classes(
        name: impl Into<String>,
        features: DenseMatrix,
        labels: Vec<Label>,
        num_classes: usize,
    ) -> DataResult<Self> {
        if features.rows() != labels.len() {
            return Err(DataError::LabelCountMismatch {
                rows: features.rows(),
                labels: labels.len(),
            });
        }
        let num_classes = num_classes.max(2);
        if num_classes > Label::MAX_CLASSES {
            return Err(DataError::InvalidClassIndex {
                index: num_classes - 1,
                num_classes: Label::MAX_CLASSES,
            });
        }
        if let Some(bad) = labels.iter().find(|label| label.index() >= num_classes) {
            return Err(DataError::InvalidClassIndex {
                index: bad.index(),
                num_classes,
            });
        }
        Ok(Self {
            name: name.into(),
            features,
            labels,
            num_classes,
            cache: Arc::default(),
        })
    }

    /// The presorted per-feature view of the features, built on first use
    /// and cached for the lifetime of the feature matrix. Clones of the
    /// dataset and label-flipped copies share the same cache, so repeated
    /// forest training (Algorithm 1's retraining loop, grid search on the
    /// same dataset) pays the `O(d · n log n)` sort exactly once.
    pub fn presort(&self) -> Arc<Presort> {
        self.cache
            .presort
            .get_or_init(|| Arc::new(Presort::build(&self.features)))
            .clone()
    }

    /// The quantile binning of the features for `max_bins` bins, built on
    /// first use (per distinct `max_bins`) and cached like
    /// [`Dataset::presort`].
    pub fn binning(&self, max_bins: usize) -> Arc<Binning> {
        let mut binnings = self.cache.binnings.lock().expect("binning cache poisoned");
        if let Some((_, binning)) = binnings.iter().find(|(bins, _)| *bins == max_bins) {
            return binning.clone();
        }
        let binning = Arc::new(Binning::build(&self.presort(), max_bins));
        binnings.push((max_bins, binning.clone()));
        binning
    }

    /// Number of instances.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the dataset holds no instances.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per instance.
    #[inline]
    pub fn num_features(&self) -> usize {
        self.features.cols()
    }

    /// Number of classes `k` of the label space (at least 2).
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Borrow of the feature matrix.
    #[inline]
    pub fn features(&self) -> &DenseMatrix {
        &self.features
    }

    /// Borrow of the label vector.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Feature vector of a single instance.
    ///
    /// # Panics
    /// Panics if `index >= len()`.
    #[inline]
    pub fn instance(&self, index: usize) -> &[f64] {
        self.features.row(index)
    }

    /// Label of a single instance.
    ///
    /// # Panics
    /// Panics if `index >= len()`.
    #[inline]
    pub fn label(&self, index: usize) -> Label {
        self.labels[index]
    }

    /// Iterator over `(features, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], Label)> {
        self.features.iter_rows().zip(self.labels.iter().copied())
    }

    /// Weighted class counts over the whole dataset (unit weights).
    pub fn class_counts(&self) -> ClassCounts {
        let mut counts = ClassCounts::with_classes(self.num_classes);
        for &label in &self.labels {
            counts.add(label, 1.0);
        }
        counts
    }

    /// Class distribution as `(positive_fraction, negative_fraction)`;
    /// this is the "Distribution" column of Table 1. For `k > 2` these are
    /// the shares of classes 1 and 0 (they no longer sum to one).
    pub fn class_distribution(&self) -> (f64, f64) {
        let counts = self.class_counts();
        let total = counts.total();
        if total == 0.0 {
            (0.0, 0.0)
        } else {
            (counts.positive() / total, counts.negative() / total)
        }
    }

    /// Copies the given instance indices (order preserved, duplicates
    /// allowed) into a new dataset. The class count of the label space is
    /// preserved even when the subset misses some classes.
    pub fn select(&self, indices: &[usize]) -> DataResult<Dataset> {
        let features = self.features.select_rows(indices)?;
        let mut labels = Vec::with_capacity(indices.len());
        for &index in indices {
            if index >= self.labels.len() {
                return Err(DataError::IndexOutOfBounds {
                    index,
                    len: self.labels.len(),
                });
            }
            labels.push(self.labels[index]);
        }
        Dataset::with_classes(self.name.clone(), features, labels, self.num_classes)
    }

    /// Returns a copy of the dataset with every label rotated to the next
    /// class (`(x, y) -> (x, -y)` for binary labels), as used to build
    /// `D'_trigger` in Algorithm 1; for `k > 2` the flip generalizes to
    /// the deterministic rotation `(index + 1) mod k`.
    ///
    /// The copy shares this dataset's training cache: rewriting labels
    /// does not change the feature matrix, so presorted columns stay
    /// valid.
    pub fn with_flipped_labels(&self) -> Dataset {
        Dataset {
            name: self.name.clone(),
            features: self.features.clone(),
            labels: self.labels.iter().map(|l| l.rotated(self.num_classes)).collect(),
            num_classes: self.num_classes,
            cache: Arc::clone(&self.cache),
        }
    }

    /// Returns a copy with the labels of the listed indices rotated to the
    /// next class (flipped, for binary labels); like
    /// [`Dataset::with_flipped_labels`], the copy shares the training
    /// cache of the original.
    pub fn with_labels_flipped_at(&self, indices: &[usize]) -> DataResult<Dataset> {
        let mut labels = self.labels.clone();
        for &index in indices {
            if index >= labels.len() {
                return Err(DataError::IndexOutOfBounds {
                    index,
                    len: labels.len(),
                });
            }
            labels[index] = labels[index].rotated(self.num_classes);
        }
        Ok(Dataset {
            name: self.name.clone(),
            features: self.features.clone(),
            labels,
            num_classes: self.num_classes,
            cache: Arc::clone(&self.cache),
        })
    }

    /// Concatenates two datasets with the same dimensionality. The result
    /// spans the union of both label spaces.
    pub fn concat(&self, other: &Dataset) -> DataResult<Dataset> {
        if !self.is_empty() && !other.is_empty() && self.num_features() != other.num_features() {
            return Err(DataError::DimensionMismatch {
                expected: self.num_features(),
                found: other.num_features(),
            });
        }
        let mut features = self.features.clone();
        for row in other.features.iter_rows() {
            features.push_row(row)?;
        }
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        Dataset::with_classes(
            self.name.clone(),
            features,
            labels,
            self.num_classes.max(other.num_classes),
        )
    }

    /// Min-max normalizes all features into `[0, 1]` in place and returns
    /// the per-column ranges used. Mutating the features invalidates the
    /// training cache, so this dataset (and only this one — clones keep
    /// the old cache for their unchanged features) starts fresh.
    pub fn normalize(&mut self) -> Vec<(f64, f64)> {
        let ranges = self.features.normalize_min_max();
        self.cache = Arc::default();
        ranges
    }

    /// Random train/test split. `train_fraction` is the share of instances
    /// placed in the training set; the split is shuffled but *not*
    /// stratified (see [`Dataset::split_stratified`] for the stratified
    /// variant used by the experiments).
    pub fn split_train_test<R: Rng + ?Sized>(
        &self,
        train_fraction: f64,
        rng: &mut R,
    ) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must lie in (0, 1), got {train_fraction}"
        );
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        let split = ((self.len() as f64) * train_fraction).round() as usize;
        let split = split.clamp(1, self.len().saturating_sub(1).max(1));
        let train = self.select(&indices[..split]).expect("indices are in range");
        let test = self.select(&indices[split..]).expect("indices are in range");
        (train, test)
    }

    /// Stratified train/test split preserving the class distribution in
    /// both partitions.
    pub fn split_stratified<R: Rng + ?Sized>(
        &self,
        train_fraction: f64,
        rng: &mut R,
    ) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must lie in (0, 1), got {train_fraction}"
        );
        let mut train_indices = Vec::new();
        let mut test_indices = Vec::new();
        for class in 0..self.num_classes {
            let mut class_indices: Vec<usize> =
                (0..self.len()).filter(|&i| self.labels[i].index() == class).collect();
            class_indices.shuffle(rng);
            let split = ((class_indices.len() as f64) * train_fraction).round() as usize;
            let split = split.min(class_indices.len());
            train_indices.extend_from_slice(&class_indices[..split]);
            test_indices.extend_from_slice(&class_indices[split..]);
        }
        train_indices.shuffle(rng);
        test_indices.shuffle(rng);
        let train = self.select(&train_indices).expect("indices are in range");
        let test = self.select(&test_indices).expect("indices are in range");
        (train, test)
    }

    /// Stratified random subsample of `target` instances, used to reduce
    /// ijcnn1 to 10,000 instances as described in the paper's evaluation.
    pub fn stratified_subsample<R: Rng + ?Sized>(
        &self,
        target: usize,
        rng: &mut R,
    ) -> DataResult<Dataset> {
        if target == 0 || self.is_empty() {
            return Err(DataError::EmptyDataset);
        }
        if target >= self.len() {
            return Ok(self.clone());
        }
        let fraction = target as f64 / self.len() as f64;
        let mut selected = Vec::with_capacity(target);
        for class in 0..self.num_classes {
            let mut class_indices: Vec<usize> =
                (0..self.len()).filter(|&i| self.labels[i].index() == class).collect();
            class_indices.shuffle(rng);
            let take = ((class_indices.len() as f64) * fraction).round() as usize;
            selected.extend_from_slice(&class_indices[..take.min(class_indices.len())]);
        }
        // Round-off can leave us slightly off target; trim or top up.
        selected.shuffle(rng);
        selected.truncate(target);
        while selected.len() < target {
            let candidate = rng.gen_range(0..self.len());
            if !selected.contains(&candidate) {
                selected.push(candidate);
            }
        }
        self.select(&selected)
    }

    /// Samples `k` distinct instance indices uniformly at random; this is
    /// the `Sample(D_train, k)` step that draws the trigger set.
    pub fn sample_indices<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<usize> {
        let k = k.min(self.len());
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        indices.truncate(k);
        indices
    }
}

/// Summary statistics of a dataset, mirroring a row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of instances.
    pub instances: usize,
    /// Number of features.
    pub features: usize,
    /// Fraction of positive instances.
    pub positive_fraction: f64,
    /// Fraction of negative instances.
    pub negative_fraction: f64,
}

impl DatasetStats {
    /// Computes the statistics of a dataset.
    pub fn of(dataset: &Dataset) -> Self {
        let (positive_fraction, negative_fraction) = dataset.class_distribution();
        Self {
            name: dataset.name.clone(),
            instances: dataset.len(),
            features: dataset.num_features(),
            positive_fraction,
            negative_fraction,
        }
    }

    /// Renders the class distribution the way Table 1 prints it,
    /// e.g. `"51%/49%"`.
    pub fn distribution_string(&self) -> String {
        format!(
            "{:.0}%/{:.0}%",
            self.positive_fraction * 100.0,
            self.negative_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn toy(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (i * 2) as f64]).collect();
        let labels: Vec<Label> = (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    Label::Positive
                } else {
                    Label::Negative
                }
            })
            .collect();
        Dataset::new("toy", DenseMatrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    #[test]
    fn new_validates_label_count() {
        let features = DenseMatrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(Dataset::new("bad", features, vec![Label::Positive]).is_err());
    }

    #[test]
    fn class_distribution_sums_to_one() {
        let dataset = toy(30);
        let (pos, neg) = dataset.class_distribution();
        assert!((pos + neg - 1.0).abs() < 1e-12);
        assert!(pos > 0.0 && neg > 0.0);
    }

    #[test]
    fn select_and_flip() {
        let dataset = toy(9);
        let subset = dataset.select(&[0, 3, 6]).unwrap();
        assert_eq!(subset.len(), 3);
        assert!(subset.labels().iter().all(|&l| l == Label::Positive));
        let flipped = subset.with_flipped_labels();
        assert!(flipped.labels().iter().all(|&l| l == Label::Negative));
        assert_eq!(flipped.features(), subset.features());
    }

    #[test]
    fn flip_at_specific_indices() {
        let dataset = toy(6);
        let flipped = dataset.with_labels_flipped_at(&[0, 1]).unwrap();
        assert_eq!(flipped.label(0), dataset.label(0).flipped());
        assert_eq!(flipped.label(1), dataset.label(1).flipped());
        assert_eq!(flipped.label(2), dataset.label(2));
        assert!(dataset.with_labels_flipped_at(&[99]).is_err());
    }

    #[test]
    fn concat_appends_instances() {
        let a = toy(4);
        let b = toy(3);
        let c = a.concat(&b).unwrap();
        assert_eq!(c.len(), 7);
        assert_eq!(c.instance(4), b.instance(0));
    }

    #[test]
    fn split_partitions_every_instance_exactly_once() {
        let dataset = toy(50);
        let mut rng = SmallRng::seed_from_u64(1);
        let (train, test) = dataset.split_train_test(0.8, &mut rng);
        assert_eq!(train.len() + test.len(), dataset.len());
        assert_eq!(train.len(), 40);
    }

    #[test]
    fn stratified_split_preserves_distribution() {
        let dataset = toy(300);
        let mut rng = SmallRng::seed_from_u64(2);
        let (train, test) = dataset.split_stratified(0.7, &mut rng);
        let (full_pos, _) = dataset.class_distribution();
        let (train_pos, _) = train.class_distribution();
        let (test_pos, _) = test.class_distribution();
        assert!((train_pos - full_pos).abs() < 0.05);
        assert!((test_pos - full_pos).abs() < 0.05);
    }

    #[test]
    fn stratified_subsample_hits_target_size() {
        let dataset = toy(200);
        let mut rng = SmallRng::seed_from_u64(3);
        let small = dataset.stratified_subsample(50, &mut rng).unwrap();
        assert_eq!(small.len(), 50);
        let (full_pos, _) = dataset.class_distribution();
        let (small_pos, _) = small.class_distribution();
        assert!((full_pos - small_pos).abs() < 0.1);
        // Asking for more than available returns a copy.
        assert_eq!(dataset.stratified_subsample(500, &mut rng).unwrap().len(), 200);
    }

    #[test]
    fn sample_indices_are_distinct() {
        let dataset = toy(40);
        let mut rng = SmallRng::seed_from_u64(4);
        let indices = dataset.sample_indices(10, &mut rng);
        assert_eq!(indices.len(), 10);
        let mut unique = indices.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 10);
    }

    #[test]
    fn presort_cache_is_shared_with_label_flipped_copies() {
        let dataset = toy(20);
        let presort = dataset.presort();
        // Flipped copies reuse the same presort (pointer-equal Arc).
        let flipped = dataset.with_flipped_labels();
        assert!(std::sync::Arc::ptr_eq(&presort, &flipped.presort()));
        let partial = dataset.with_labels_flipped_at(&[0, 1]).unwrap();
        assert!(std::sync::Arc::ptr_eq(&presort, &partial.presort()));
        // Repeated calls return the same instance.
        assert!(std::sync::Arc::ptr_eq(&presort, &dataset.presort()));
        // Binnings are cached per bin count.
        let b8 = dataset.binning(8);
        assert!(std::sync::Arc::ptr_eq(&b8, &dataset.binning(8)));
        assert!(!std::sync::Arc::ptr_eq(&b8, &dataset.binning(16)));
    }

    #[test]
    fn normalize_invalidates_the_presort_cache() {
        let mut dataset = toy(10);
        let before = dataset.presort();
        dataset.normalize();
        let after = dataset.presort();
        assert!(!std::sync::Arc::ptr_eq(&before, &after));
        // The new presort reflects the normalized values.
        assert!(after.sorted_values(0).iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn stats_render_table1_style_distribution() {
        let dataset = toy(30);
        let stats = DatasetStats::of(&dataset);
        assert_eq!(stats.instances, 30);
        assert_eq!(stats.features, 2);
        assert!(stats.distribution_string().contains('%'));
    }
}
