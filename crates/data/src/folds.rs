//! K-fold cross-validation splits, used by the grid-search substrate.

use crate::dataset::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;

/// One cross-validation fold: the held-out validation indices and the
/// remaining training indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Indices of the instances used for training in this fold.
    pub train_indices: Vec<usize>,
    /// Indices of the instances held out for validation in this fold.
    pub validation_indices: Vec<usize>,
}

/// Produces `k` stratified cross-validation folds over `dataset`.
///
/// Every instance appears in exactly one validation fold; class proportions
/// are approximately preserved in each fold. `k` is clamped to the dataset
/// size and must be at least 2.
pub fn stratified_k_folds<R: Rng + ?Sized>(dataset: &Dataset, k: usize, rng: &mut R) -> Vec<Fold> {
    assert!(k >= 2, "cross validation requires at least 2 folds");
    let k = k.min(dataset.len().max(2));
    // Assign each instance to a fold, spreading each class round-robin so
    // the class proportions stay balanced even for small minority classes.
    let mut fold_of = vec![0usize; dataset.len()];
    for class in 0..dataset.num_classes() {
        let mut class_indices: Vec<usize> =
            (0..dataset.len()).filter(|&i| dataset.label(i).index() == class).collect();
        class_indices.shuffle(rng);
        for (position, index) in class_indices.into_iter().enumerate() {
            fold_of[index] = position % k;
        }
    }
    (0..k)
        .map(|fold| {
            let validation_indices: Vec<usize> =
                (0..dataset.len()).filter(|&i| fold_of[i] == fold).collect();
            let train_indices: Vec<usize> = (0..dataset.len()).filter(|&i| fold_of[i] != fold).collect();
            Fold {
                train_indices,
                validation_indices,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;
    use crate::matrix::DenseMatrix;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn toy(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let labels: Vec<Label> = (0..n)
            .map(|i| {
                if i % 5 == 0 {
                    Label::Positive
                } else {
                    Label::Negative
                }
            })
            .collect();
        Dataset::new("toy", DenseMatrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    #[test]
    fn folds_partition_all_instances() {
        let dataset = toy(47);
        let mut rng = SmallRng::seed_from_u64(11);
        let folds = stratified_k_folds(&dataset, 5, &mut rng);
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0usize; dataset.len()];
        for fold in &folds {
            assert_eq!(
                fold.train_indices.len() + fold.validation_indices.len(),
                dataset.len()
            );
            for &i in &fold.validation_indices {
                seen[i] += 1;
            }
            for &i in &fold.validation_indices {
                assert!(!fold.train_indices.contains(&i));
            }
        }
        assert!(seen.iter().all(|&count| count == 1));
    }

    #[test]
    fn folds_keep_minority_class_in_most_folds() {
        let dataset = toy(100); // 20 positives
        let mut rng = SmallRng::seed_from_u64(3);
        let folds = stratified_k_folds(&dataset, 4, &mut rng);
        for fold in &folds {
            let positives = fold
                .validation_indices
                .iter()
                .filter(|&&i| dataset.label(i) == Label::Positive)
                .count();
            assert_eq!(
                positives, 5,
                "each fold should hold an equal share of the minority class"
            );
        }
    }

    #[test]
    fn folds_stratify_every_class_of_a_k_class_dataset() {
        let n = 120;
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let labels: Vec<Label> = (0..n).map(|i| Label::from_index(i % 4).unwrap()).collect();
        let dataset =
            Dataset::with_classes("k4", DenseMatrix::from_rows(&rows).unwrap(), labels, 4).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let folds = stratified_k_folds(&dataset, 3, &mut rng);
        for fold in &folds {
            for class in 0..4 {
                let share = fold
                    .validation_indices
                    .iter()
                    .filter(|&&i| dataset.label(i).index() == class)
                    .count();
                assert_eq!(share, 10, "class {class} unevenly spread");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn at_least_two_folds_required() {
        let dataset = toy(10);
        let mut rng = SmallRng::seed_from_u64(0);
        stratified_k_folds(&dataset, 1, &mut rng);
    }
}
