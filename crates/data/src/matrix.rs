//! Dense row-major feature matrix.
//!
//! The substrate stores instances as rows of `f64` features, matching the
//! paper's model of a `d`-dimensional real vector space normalized to
//! `[0, 1]`.

use crate::error::{DataError, DataResult};
use serde::{DeError, Deserialize, Serialize, Value};

/// Dense, row-major matrix of `f64` features.
///
/// # NaN handling
///
/// Constructors accept any `f64`, including `NaN` and infinities, so that
/// raw CSV loads never fail on malformed values. All training-time
/// comparisons order feature values with [`f64::total_cmp`], under which
/// `NaN` sorts *after* `+inf`; the split search additionally refuses to
/// place a threshold adjacent to a non-finite value, so instances with
/// `NaN` in the tested feature deterministically fall into the right
/// child (`x <= t` is `false` for `NaN`). Callers that want to reject
/// `NaN` outright can check [`DenseMatrix::has_non_finite`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    values: Vec<f64>,
}

/// Deserialization re-validates the shape invariant through
/// [`DenseMatrix::from_vec`], so a corrupted serialized matrix (bit-flipped
/// dimensions, truncated value buffer) is rejected instead of panicking on
/// a later row access.
impl Deserialize for DenseMatrix {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = value.as_map().ok_or_else(|| DeError::expected("map", "DenseMatrix"))?;
        let rows = usize::from_value(serde::map_get(entries, "rows")?)?;
        let cols = usize::from_value(serde::map_get(entries, "cols")?)?;
        let values: Vec<f64> = Vec::from_value(serde::map_get(entries, "values")?)?;
        if rows.checked_mul(cols).is_none_or(|expected| expected != values.len()) {
            return Err(DeError::new(format!(
                "invalid DenseMatrix: {rows}x{cols} dimensions but {} values",
                values.len()
            )));
        }
        Ok(DenseMatrix { rows, cols, values })
    }
}

impl DenseMatrix {
    /// Creates a matrix from a flat row-major buffer.
    ///
    /// Returns an error if `values.len() != rows * cols`. `NaN` values are
    /// accepted; see the type-level documentation for how they behave
    /// during training.
    pub fn from_vec(rows: usize, cols: usize, values: Vec<f64>) -> DataResult<Self> {
        if values.len() != rows * cols {
            return Err(DataError::DimensionMismatch {
                expected: rows * cols,
                found: values.len(),
            });
        }
        Ok(Self { rows, cols, values })
    }

    /// Creates a matrix from a slice of rows; every row must have the same
    /// length.
    pub fn from_rows(rows: &[Vec<f64>]) -> DataResult<Self> {
        if rows.is_empty() {
            return Ok(Self {
                rows: 0,
                cols: 0,
                values: Vec::new(),
            });
        }
        let cols = rows[0].len();
        let mut values = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(DataError::DimensionMismatch {
                    expected: cols,
                    found: row.len(),
                });
            }
            values.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            values,
        })
    }

    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            values: vec![0.0; rows * cols],
        }
    }

    /// Number of rows (instances).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Borrow of a single row.
    ///
    /// # Panics
    /// Panics if `row >= rows()`.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row {row} out of bounds for {} rows", self.rows);
        &self.values[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable borrow of a single row.
    ///
    /// # Panics
    /// Panics if `row >= rows()`.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        assert!(row < self.rows, "row {row} out of bounds for {} rows", self.rows);
        &mut self.values[row * self.cols..(row + 1) * self.cols]
    }

    /// Checked access to a single element.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        if row < self.rows && col < self.cols {
            Some(self.values[row * self.cols + col])
        } else {
            None
        }
    }

    /// Unchecked-by-contract access to a single element.
    ///
    /// # Panics
    /// Panics when the indices are out of bounds.
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> f64 {
        self.values[row * self.cols + col]
    }

    /// Sets a single element.
    ///
    /// # Panics
    /// Panics when the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols);
        self.values[row * self.cols + col] = value;
    }

    /// Iterator over row slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.values.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// Copies the selected rows (in the given order, duplicates allowed)
    /// into a new matrix.
    pub fn select_rows(&self, indices: &[usize]) -> DataResult<DenseMatrix> {
        let mut values = Vec::with_capacity(indices.len() * self.cols);
        for &index in indices {
            if index >= self.rows {
                return Err(DataError::IndexOutOfBounds {
                    index,
                    len: self.rows,
                });
            }
            values.extend_from_slice(self.row(index));
        }
        Ok(DenseMatrix {
            rows: indices.len(),
            cols: self.cols,
            values,
        })
    }

    /// Appends a row to the matrix. The first appended row fixes the number
    /// of columns of an empty matrix.
    pub fn push_row(&mut self, row: &[f64]) -> DataResult<()> {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        if row.len() != self.cols {
            return Err(DataError::DimensionMismatch {
                expected: self.cols,
                found: row.len(),
            });
        }
        self.values.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// Per-column minimum and maximum over all rows. Returns `None` for an
    /// empty matrix.
    pub fn column_ranges(&self) -> Option<Vec<(f64, f64)>> {
        if self.rows == 0 {
            return None;
        }
        let mut ranges: Vec<(f64, f64)> = self.row(0).iter().map(|&v| (v, v)).collect();
        for row in self.iter_rows().skip(1) {
            for (range, &value) in ranges.iter_mut().zip(row) {
                if value < range.0 {
                    range.0 = value;
                }
                if value > range.1 {
                    range.1 = value;
                }
            }
        }
        Some(ranges)
    }

    /// Min-max normalizes every column into `[0, 1]`, in place, and returns
    /// the per-column `(min, max)` pairs used. Constant columns map to `0`.
    ///
    /// The paper normalizes all datasets into the `[0, 1]` interval before
    /// training and before running the forgery attack (the L∞ distortion
    /// bound `0 < ε < 1` is only meaningful on normalized data).
    pub fn normalize_min_max(&mut self) -> Vec<(f64, f64)> {
        let ranges = self.column_ranges().unwrap_or_default();
        for row_index in 0..self.rows {
            for (col, &(min, max)) in ranges.iter().enumerate() {
                let span = max - min;
                let value = self.value(row_index, col);
                let normalized = if span > 0.0 { (value - min) / span } else { 0.0 };
                self.set(row_index, col, normalized);
            }
        }
        ranges
    }

    /// Applies a previously computed min-max transformation (e.g. from the
    /// training split) to this matrix, clamping into `[0, 1]`.
    pub fn apply_min_max(&mut self, ranges: &[(f64, f64)]) -> DataResult<()> {
        if ranges.len() != self.cols {
            return Err(DataError::DimensionMismatch {
                expected: self.cols,
                found: ranges.len(),
            });
        }
        for row_index in 0..self.rows {
            for (col, &(min, max)) in ranges.iter().enumerate() {
                let span = max - min;
                let value = self.value(row_index, col);
                let normalized = if span > 0.0 {
                    ((value - min) / span).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                self.set(row_index, col, normalized);
            }
        }
        Ok(())
    }

    /// Flat access to the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// `true` if any stored value is `NaN` or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.values.iter().any(|v| !v.is_finite())
    }

    /// Builds a column-major copy of the matrix.
    ///
    /// The split search scans one feature at a time; in the row-major
    /// layout those reads stride by `cols()` elements, which is
    /// cache-hostile for wide data (784-feature images touch a new cache
    /// line per sample). The column-major view makes per-feature scans
    /// fully sequential. It is built once per dataset and shared by every
    /// tree (see `Dataset::presort`).
    pub fn to_column_major(&self) -> ColumnMajor {
        let mut values = vec![0.0; self.values.len()];
        for (row_index, row) in self.iter_rows().enumerate() {
            for (col, &value) in row.iter().enumerate() {
                values[col * self.rows + row_index] = value;
            }
        }
        ColumnMajor {
            rows: self.rows,
            cols: self.cols,
            values,
        }
    }
}

/// Column-major view of a feature matrix: all values of feature `f` are
/// contiguous, so per-feature scans are sequential reads.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMajor {
    rows: usize,
    cols: usize,
    values: Vec<f64>,
}

impl ColumnMajor {
    /// Number of rows (instances).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of one feature column (all instances, in row order).
    ///
    /// # Panics
    /// Panics if `col >= cols()`.
    #[inline]
    pub fn column(&self, col: usize) -> &[f64] {
        assert!(
            col < self.cols,
            "column {col} out of bounds for {} columns",
            self.cols
        );
        &self.values[col * self.rows..(col + 1) * self.rows]
    }

    /// Single element access.
    ///
    /// # Panics
    /// Panics when the indices are out of bounds.
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> f64 {
        self.values[col * self.rows + row]
    }
}

/// L∞ (Chebyshev) distance between two feature vectors.
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn linf_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "L-infinity distance requires equal dimensionality"
    );
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

/// Euclidean (L2) distance between two feature vectors.
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "L2 distance requires equal dimensionality");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        let m = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.value(1, 0), 3.0);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, DataError::DimensionMismatch { .. }));
    }

    #[test]
    fn row_access_and_mutation() {
        let mut m = sample();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        m.row_mut(0)[2] = 9.0;
        assert_eq!(m.value(0, 2), 9.0);
        assert_eq!(m.get(5, 0), None);
        assert_eq!(m.get(0, 1), Some(2.0));
    }

    #[test]
    fn select_rows_copies_in_order_with_duplicates() {
        let m = sample();
        let selected = m.select_rows(&[1, 0, 1]).unwrap();
        assert_eq!(selected.rows(), 3);
        assert_eq!(selected.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(selected.row(2), &[4.0, 5.0, 6.0]);
        assert!(m.select_rows(&[7]).is_err());
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut m = DenseMatrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0]).unwrap();
        m.push_row(&[3.0, 4.0]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert!(m.push_row(&[1.0]).is_err());
    }

    #[test]
    fn normalization_maps_into_unit_interval() {
        let mut m =
            DenseMatrix::from_rows(&[vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 30.0]]).unwrap();
        let ranges = m.normalize_min_max();
        assert_eq!(ranges, vec![(0.0, 10.0), (10.0, 30.0)]);
        assert_eq!(m.row(0), &[0.0, 0.0]);
        assert_eq!(m.row(2), &[1.0, 1.0]);
        assert!((m.value(1, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constant_column_normalizes_to_zero() {
        let mut m = DenseMatrix::from_rows(&[vec![3.0], vec![3.0]]).unwrap();
        m.normalize_min_max();
        assert_eq!(m.row(0), &[0.0]);
    }

    #[test]
    fn apply_min_max_clamps_out_of_range_values() {
        let mut m = DenseMatrix::from_rows(&[vec![20.0], vec![-5.0]]).unwrap();
        m.apply_min_max(&[(0.0, 10.0)]).unwrap();
        assert_eq!(m.row(0), &[1.0]);
        assert_eq!(m.row(1), &[0.0]);
        assert!(m.apply_min_max(&[(0.0, 1.0), (0.0, 1.0)]).is_err());
    }

    #[test]
    fn distances() {
        assert_eq!(linf_distance(&[0.0, 1.0, 3.0], &[1.0, 1.0, 0.5]), 2.5);
        assert!((l2_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn column_major_matches_row_major() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let cm = m.to_column_major();
        assert_eq!(cm.rows(), 3);
        assert_eq!(cm.cols(), 2);
        assert_eq!(cm.column(0), &[1.0, 3.0, 5.0]);
        assert_eq!(cm.column(1), &[2.0, 4.0, 6.0]);
        for row in 0..3 {
            for col in 0..2 {
                assert_eq!(cm.value(row, col), m.value(row, col));
            }
        }
    }

    #[test]
    fn non_finite_detection() {
        let finite = DenseMatrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(!finite.has_non_finite());
        let with_nan = DenseMatrix::from_rows(&[vec![1.0, f64::NAN]]).unwrap();
        assert!(with_nan.has_non_finite());
        let with_inf = DenseMatrix::from_rows(&[vec![f64::INFINITY]]).unwrap();
        assert!(with_inf.has_non_finite());
    }

    #[test]
    fn empty_matrix_behaviour() {
        let m = DenseMatrix::zeros(0, 0);
        assert!(m.is_empty());
        assert!(m.column_ranges().is_none());
        assert_eq!(m.iter_rows().count(), 0);
    }
}
