//! Minimal CSV loading/saving for labeled datasets.
//!
//! The synthetic generators make the experiments self-contained, but the
//! loader lets users drop in the real MNIST2-6 / breast-cancer / ijcnn1
//! dumps (features followed by a numeric label column) and rerun every
//! experiment unchanged.

use crate::dataset::Dataset;
use crate::error::{DataError, DataResult};
use crate::label::Label;
use crate::matrix::DenseMatrix;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Which column of the CSV holds the class label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelColumn {
    /// The first column is the label; the rest are features.
    First,
    /// The last column is the label; the rest are features.
    Last,
}

/// Parses a labeled dataset from CSV text.
///
/// * `has_header` skips the first line.
/// * Labels may use the `{-1, +1}` or `{0, 1}` convention.
pub fn parse_csv(
    reader: impl Read,
    label_column: LabelColumn,
    has_header: bool,
    name: &str,
) -> DataResult<Dataset> {
    let reader = BufReader::new(reader);
    let mut features = DenseMatrix::zeros(0, 0);
    let mut labels = Vec::new();
    let mut row_buffer: Vec<f64> = Vec::new();
    for (line_number, line) in reader.lines().enumerate() {
        let line = line?;
        let human_line = line_number + 1;
        if has_header && line_number == 0 {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        row_buffer.clear();
        for field in trimmed.split(',') {
            let value: f64 = field.trim().parse().map_err(|_| DataError::Parse {
                line: human_line,
                message: format!("cannot parse '{}' as a number", field.trim()),
            })?;
            row_buffer.push(value);
        }
        if row_buffer.len() < 2 {
            return Err(DataError::Parse {
                line: human_line,
                message: "each record needs at least one feature and a label".into(),
            });
        }
        let label_value = match label_column {
            LabelColumn::First => row_buffer.remove(0),
            LabelColumn::Last => row_buffer.pop().expect("length checked above"),
        };
        let label = Label::from_f64(label_value).map_err(|_| DataError::Parse {
            line: human_line,
            message: format!("label value {label_value} is not in {{-1, 0, +1}}"),
        })?;
        features.push_row(&row_buffer)?;
        labels.push(label);
    }
    if labels.is_empty() {
        return Err(DataError::EmptyDataset);
    }
    Dataset::new(name, features, labels)
}

/// Loads a labeled dataset from a CSV file on disk.
pub fn load_csv(
    path: impl AsRef<Path>,
    label_column: LabelColumn,
    has_header: bool,
) -> DataResult<Dataset> {
    let path = path.as_ref();
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("dataset").to_string();
    let file = std::fs::File::open(path)?;
    parse_csv(file, label_column, has_header, &name)
}

/// Writes a dataset as CSV with the label in the last column (using the
/// `{-1, +1}` convention).
pub fn write_csv(dataset: &Dataset, mut writer: impl Write) -> DataResult<()> {
    for (row, label) in dataset.iter() {
        let mut record = String::with_capacity(row.len() * 8);
        for value in row {
            record.push_str(&format!("{value},"));
        }
        record.push_str(&format!("{}", label.as_i8()));
        writeln!(writer, "{record}")?;
    }
    Ok(())
}

/// Saves a dataset to a CSV file on disk (label last, no header).
pub fn save_csv(dataset: &Dataset, path: impl AsRef<Path>) -> DataResult<()> {
    let file = std::fs::File::create(path)?;
    write_csv(dataset, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_label_last_with_header() {
        let text = "f1,f2,label\n0.1,0.2,1\n0.3,0.4,-1\n";
        let dataset = parse_csv(text.as_bytes(), LabelColumn::Last, true, "demo").unwrap();
        assert_eq!(dataset.len(), 2);
        assert_eq!(dataset.num_features(), 2);
        assert_eq!(dataset.label(0), Label::Positive);
        assert_eq!(dataset.label(1), Label::Negative);
        assert_eq!(dataset.instance(1), &[0.3, 0.4]);
    }

    #[test]
    fn parse_label_first_and_zero_one_labels() {
        let text = "1,0.5,0.25\n0,0.75,0.5\n";
        let dataset = parse_csv(text.as_bytes(), LabelColumn::First, false, "demo").unwrap();
        assert_eq!(dataset.label(0), Label::Positive);
        assert_eq!(dataset.label(1), Label::Negative);
        assert_eq!(dataset.instance(0), &[0.5, 0.25]);
    }

    #[test]
    fn parse_rejects_bad_numbers_and_bad_labels() {
        let bad_number = "0.1,zzz,1\n";
        let err = parse_csv(bad_number.as_bytes(), LabelColumn::Last, false, "x").unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 1, .. }));

        let bad_label = "0.1,0.2,7\n";
        let err = parse_csv(bad_label.as_bytes(), LabelColumn::Last, false, "x").unwrap_err();
        assert!(matches!(err, DataError::Parse { .. }));
    }

    #[test]
    fn parse_rejects_empty_input() {
        let err = parse_csv("".as_bytes(), LabelColumn::Last, false, "x").unwrap_err();
        assert_eq!(err, DataError::EmptyDataset);
    }

    #[test]
    fn skips_blank_lines() {
        let text = "0.1,0.2,1\n\n0.3,0.4,-1\n\n";
        let dataset = parse_csv(text.as_bytes(), LabelColumn::Last, false, "demo").unwrap();
        assert_eq!(dataset.len(), 2);
    }

    #[test]
    fn round_trip_through_csv() {
        let text = "0.1,0.2,1\n0.3,0.4,-1\n0.5,0.6,1\n";
        let dataset = parse_csv(text.as_bytes(), LabelColumn::Last, false, "demo").unwrap();
        let mut buffer = Vec::new();
        write_csv(&dataset, &mut buffer).unwrap();
        let reparsed = parse_csv(buffer.as_slice(), LabelColumn::Last, false, "demo").unwrap();
        assert_eq!(reparsed.len(), dataset.len());
        assert_eq!(reparsed.labels(), dataset.labels());
        for i in 0..dataset.len() {
            for (a, b) in reparsed.instance(i).iter().zip(dataset.instance(i)) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
