//! Minimal CSV loading/saving for labeled datasets.
//!
//! The synthetic generators make the experiments self-contained, but the
//! loader lets users drop in the real MNIST2-6 / breast-cancer / ijcnn1
//! dumps (features followed by a numeric label column) and rerun every
//! experiment unchanged. Label parsing is explicit about its numeric
//! convention — the paper's signed `{-1, +1}` or class indices
//! `{0..k-1}` — so a `0.0` in a signed-binary file is a typed error, not a
//! silent negative.

use crate::dataset::Dataset;
use crate::error::{DataError, DataResult};
use crate::label::{Label, LabelConvention};
use crate::matrix::DenseMatrix;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Which column of the CSV holds the class label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelColumn {
    /// The first column is the label; the rest are features.
    First,
    /// The last column is the label; the rest are features.
    Last,
}

/// Parses a labeled dataset from CSV text using the paper's signed binary
/// `{-1, +1}` label convention.
///
/// * `has_header` skips the first line.
///
/// Use [`parse_csv_with`] for `{0..k-1}` class-index labels.
pub fn parse_csv(
    reader: impl Read,
    label_column: LabelColumn,
    has_header: bool,
    name: &str,
) -> DataResult<Dataset> {
    parse_csv_with(
        reader,
        label_column,
        has_header,
        name,
        LabelConvention::SignedBinary,
    )
}

/// Parses a labeled dataset from CSV text under an explicit label
/// convention.
///
/// A label value outside the convention's set surfaces as
/// [`DataError::LabelOutsideConvention`], naming the expected set. Under
/// [`LabelConvention::Indexed`] the resulting dataset carries the
/// convention's class count even when some classes are absent from the
/// file.
pub fn parse_csv_with(
    reader: impl Read,
    label_column: LabelColumn,
    has_header: bool,
    name: &str,
    convention: LabelConvention,
) -> DataResult<Dataset> {
    let reader = BufReader::new(reader);
    let mut features = DenseMatrix::zeros(0, 0);
    let mut labels = Vec::new();
    let mut row_buffer: Vec<f64> = Vec::new();
    for (line_number, line) in reader.lines().enumerate() {
        let line = line?;
        let human_line = line_number + 1;
        if has_header && line_number == 0 {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        row_buffer.clear();
        for field in trimmed.split(',') {
            let value: f64 = field.trim().parse().map_err(|_| DataError::Parse {
                line: human_line,
                message: format!("cannot parse '{}' as a number", field.trim()),
            })?;
            row_buffer.push(value);
        }
        if row_buffer.len() < 2 {
            return Err(DataError::Parse {
                line: human_line,
                message: "each record needs at least one feature and a label".into(),
            });
        }
        let label_value = match label_column {
            LabelColumn::First => row_buffer.remove(0),
            LabelColumn::Last => row_buffer.pop().expect("length checked above"),
        };
        let label = Label::parse_numeric(label_value, convention)?;
        features.push_row(&row_buffer)?;
        labels.push(label);
    }
    if labels.is_empty() {
        return Err(DataError::EmptyDataset);
    }
    match convention {
        LabelConvention::SignedBinary => Dataset::new(name, features, labels),
        LabelConvention::Indexed { num_classes } => {
            Dataset::with_classes(name, features, labels, num_classes)
        }
    }
}

/// Loads a labeled dataset from a CSV file on disk (signed binary labels).
pub fn load_csv(
    path: impl AsRef<Path>,
    label_column: LabelColumn,
    has_header: bool,
) -> DataResult<Dataset> {
    load_csv_with(path, label_column, has_header, LabelConvention::SignedBinary)
}

/// Loads a labeled dataset from a CSV file on disk under an explicit label
/// convention.
pub fn load_csv_with(
    path: impl AsRef<Path>,
    label_column: LabelColumn,
    has_header: bool,
    convention: LabelConvention,
) -> DataResult<Dataset> {
    let path = path.as_ref();
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("dataset").to_string();
    let file = std::fs::File::open(path)?;
    parse_csv_with(file, label_column, has_header, &name, convention)
}

/// Writes a dataset as CSV with the label in the last column. Two-class
/// datasets use the paper's `{-1, +1}` convention; k-class datasets write
/// the class index, matching what [`parse_csv_with`] expects back.
pub fn write_csv(dataset: &Dataset, mut writer: impl Write) -> DataResult<()> {
    let signed = dataset.num_classes() == 2;
    for (row, label) in dataset.iter() {
        let mut record = String::with_capacity(row.len() * 8);
        for value in row {
            record.push_str(&format!("{value},"));
        }
        if signed {
            record.push_str(&format!("{}", label.as_i8()));
        } else {
            record.push_str(&format!("{}", label.index()));
        }
        writeln!(writer, "{record}")?;
    }
    Ok(())
}

/// Saves a dataset to a CSV file on disk (label last, no header).
pub fn save_csv(dataset: &Dataset, path: impl AsRef<Path>) -> DataResult<()> {
    let file = std::fs::File::create(path)?;
    write_csv(dataset, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_label_last_with_header() {
        let text = "f1,f2,label\n0.1,0.2,1\n0.3,0.4,-1\n";
        let dataset = parse_csv(text.as_bytes(), LabelColumn::Last, true, "demo").unwrap();
        assert_eq!(dataset.len(), 2);
        assert_eq!(dataset.num_features(), 2);
        assert_eq!(dataset.label(0), Label::Positive);
        assert_eq!(dataset.label(1), Label::Negative);
        assert_eq!(dataset.instance(1), &[0.3, 0.4]);
    }

    #[test]
    fn parse_label_first_with_indexed_convention() {
        let text = "1,0.5,0.25\n0,0.75,0.5\n";
        let dataset = parse_csv_with(
            text.as_bytes(),
            LabelColumn::First,
            false,
            "demo",
            LabelConvention::Indexed { num_classes: 2 },
        )
        .unwrap();
        assert_eq!(dataset.label(0), Label::Positive);
        assert_eq!(dataset.label(1), Label::Negative);
        assert_eq!(dataset.instance(0), &[0.5, 0.25]);
    }

    #[test]
    fn signed_binary_rejects_zero_with_a_typed_error() {
        let text = "0.1,0.2,0\n";
        let err = parse_csv(text.as_bytes(), LabelColumn::Last, false, "x").unwrap_err();
        match err {
            DataError::LabelOutsideConvention { value, convention } => {
                assert_eq!(value, 0.0);
                assert!(convention.contains("-1"), "convention was {convention}");
            }
            other => panic!("expected LabelOutsideConvention, got {other:?}"),
        }
    }

    #[test]
    fn indexed_convention_parses_k_class_labels() {
        let text = "0.1,0.2,0\n0.3,0.4,2\n0.5,0.6,1\n";
        let dataset = parse_csv_with(
            text.as_bytes(),
            LabelColumn::Last,
            false,
            "demo",
            LabelConvention::Indexed { num_classes: 4 },
        )
        .unwrap();
        assert_eq!(dataset.num_classes(), 4);
        assert_eq!(dataset.label(1).index(), 2);
        let err = parse_csv_with(
            "0.1,0.2,4\n".as_bytes(),
            LabelColumn::Last,
            false,
            "demo",
            LabelConvention::Indexed { num_classes: 4 },
        )
        .unwrap_err();
        assert!(matches!(err, DataError::LabelOutsideConvention { .. }));
    }

    #[test]
    fn parse_rejects_bad_numbers_and_bad_labels() {
        let bad_number = "0.1,zzz,1\n";
        let err = parse_csv(bad_number.as_bytes(), LabelColumn::Last, false, "x").unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 1, .. }));

        let bad_label = "0.1,0.2,7\n";
        let err = parse_csv(bad_label.as_bytes(), LabelColumn::Last, false, "x").unwrap_err();
        assert!(matches!(err, DataError::LabelOutsideConvention { .. }));
    }

    #[test]
    fn parse_rejects_empty_input() {
        let err = parse_csv("".as_bytes(), LabelColumn::Last, false, "x").unwrap_err();
        assert_eq!(err, DataError::EmptyDataset);
    }

    #[test]
    fn skips_blank_lines() {
        let text = "0.1,0.2,1\n\n0.3,0.4,-1\n\n";
        let dataset = parse_csv(text.as_bytes(), LabelColumn::Last, false, "demo").unwrap();
        assert_eq!(dataset.len(), 2);
    }

    #[test]
    fn round_trip_through_csv() {
        let text = "0.1,0.2,1\n0.3,0.4,-1\n0.5,0.6,1\n";
        let dataset = parse_csv(text.as_bytes(), LabelColumn::Last, false, "demo").unwrap();
        let mut buffer = Vec::new();
        write_csv(&dataset, &mut buffer).unwrap();
        let reparsed = parse_csv(buffer.as_slice(), LabelColumn::Last, false, "demo").unwrap();
        assert_eq!(reparsed.len(), dataset.len());
        assert_eq!(reparsed.labels(), dataset.labels());
        for i in 0..dataset.len() {
            for (a, b) in reparsed.instance(i).iter().zip(dataset.instance(i)) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn k_class_round_trip_writes_class_indices() {
        let c = |i: usize| Label::from_index(i).unwrap();
        let rows = vec![vec![0.1, 0.2], vec![0.3, 0.4], vec![0.5, 0.6]];
        let dataset = Dataset::with_classes(
            "k3",
            DenseMatrix::from_rows(&rows).unwrap(),
            vec![c(0), c(2), c(1)],
            3,
        )
        .unwrap();
        let mut buffer = Vec::new();
        write_csv(&dataset, &mut buffer).unwrap();
        let text = String::from_utf8(buffer.clone()).unwrap();
        assert!(text.lines().next().unwrap().ends_with(",0"));
        let reparsed = parse_csv_with(
            buffer.as_slice(),
            LabelColumn::Last,
            false,
            "k3",
            LabelConvention::Indexed { num_classes: 3 },
        )
        .unwrap();
        assert_eq!(reparsed.labels(), dataset.labels());
        assert_eq!(reparsed.num_classes(), 3);
    }
}
