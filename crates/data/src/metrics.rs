//! Evaluation metrics for k-class classifiers.

use crate::label::Label;
use serde::{DeError, Deserialize, Serialize, Value};

/// A k×k confusion matrix.
///
/// Cell `(t, p)` counts instances of true class `t` predicted as class
/// `p`. The binary accessors ([`ConfusionMatrix::true_positive`] and
/// friends) are views onto the two-class corner of the matrix, with class
/// 1 as "positive" and class 0 as "negative", matching the pre-k-class
/// binary implementation exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Row-major `classes × classes` cells; row = truth, column = predicted.
    cells: Vec<usize>,
    classes: usize,
}

impl Default for ConfusionMatrix {
    fn default() -> Self {
        Self::with_classes(2)
    }
}

impl ConfusionMatrix {
    /// An empty matrix over `num_classes` classes (at least 2).
    pub fn with_classes(num_classes: usize) -> Self {
        let classes = num_classes.max(2);
        ConfusionMatrix {
            cells: vec![0; classes * classes],
            classes,
        }
    }

    /// Builds a confusion matrix from parallel slices of true and predicted
    /// labels; the class count is inferred from the largest label index
    /// seen (at least 2).
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn from_predictions(truth: &[Label], predicted: &[Label]) -> Self {
        let classes = truth.iter().chain(predicted).map(|label| label.index() + 1).max().unwrap_or(2);
        Self::from_predictions_with_classes(truth, predicted, classes)
    }

    /// [`ConfusionMatrix::from_predictions`] over an explicit class count,
    /// for evaluations where the sample may not exercise every class.
    ///
    /// # Panics
    /// Panics if the slices have different lengths or a label index is at
    /// or beyond `num_classes`.
    pub fn from_predictions_with_classes(
        truth: &[Label],
        predicted: &[Label],
        num_classes: usize,
    ) -> Self {
        assert_eq!(
            truth.len(),
            predicted.len(),
            "label slices must have equal length"
        );
        let mut matrix = Self::with_classes(num_classes);
        let classes = matrix.classes;
        for (&t, &p) in truth.iter().zip(predicted) {
            assert!(
                t.index() < classes && p.index() < classes,
                "label index out of range for {classes} classes"
            );
            matrix.cells[t.index() * classes + p.index()] += 1;
        }
        matrix
    }

    /// Number of classes `k` the matrix tracks.
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// Count of instances of true class `truth` predicted as `predicted`.
    ///
    /// # Panics
    /// Panics if either index is at or beyond `num_classes()`.
    pub fn count(&self, truth: usize, predicted: usize) -> usize {
        assert!(truth < self.classes && predicted < self.classes);
        self.cells[truth * self.classes + predicted]
    }

    /// Total number of instances.
    pub fn total(&self) -> usize {
        self.cells.iter().sum()
    }

    fn diagonal(&self) -> usize {
        (0..self.classes).map(|c| self.cells[c * self.classes + c]).sum()
    }

    fn predicted_as(&self, class: usize) -> usize {
        (0..self.classes).map(|t| self.cells[t * self.classes + class]).sum()
    }

    fn truly(&self, class: usize) -> usize {
        self.cells[class * self.classes..(class + 1) * self.classes].iter().sum()
    }

    /// Positive instances predicted positive (cell `(1, 1)`).
    pub fn true_positive(&self) -> usize {
        self.count(1, 1)
    }

    /// Negative instances predicted negative (cell `(0, 0)`).
    pub fn true_negative(&self) -> usize {
        self.count(0, 0)
    }

    /// Negative instances predicted positive (cell `(0, 1)`).
    pub fn false_positive(&self) -> usize {
        self.count(0, 1)
    }

    /// Positive instances predicted negative (cell `(1, 0)`).
    pub fn false_negative(&self) -> usize {
        self.count(1, 0)
    }

    /// Fraction of correct predictions (the diagonal over the total).
    /// Returns `0.0` for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.diagonal() as f64 / total as f64
        }
    }

    /// Precision of one class: its diagonal cell over everything predicted
    /// as it. Returns `0.0` when the class is never predicted.
    pub fn precision_for(&self, class: usize) -> f64 {
        let denom = self.predicted_as(class);
        if denom == 0 {
            0.0
        } else {
            self.count(class, class) as f64 / denom as f64
        }
    }

    /// Recall of one class: its diagonal cell over its true instances.
    /// Returns `0.0` when the class has no instances.
    pub fn recall_for(&self, class: usize) -> f64 {
        let denom = self.truly(class);
        if denom == 0 {
            0.0
        } else {
            self.count(class, class) as f64 / denom as f64
        }
    }

    /// F1 of one class: the harmonic mean of its precision and recall.
    /// Returns `0.0` when both are zero.
    pub fn f1_for(&self, class: usize) -> f64 {
        let p = self.precision_for(class);
        let r = self.recall_for(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Precision of the positive class (`TP / (TP + FP)`). Returns `0.0`
    /// when no positive predictions were made.
    pub fn precision(&self) -> f64 {
        self.precision_for(1)
    }

    /// Recall of the positive class (`TP / (TP + FN)`). Returns `0.0` when
    /// there are no positive instances.
    pub fn recall(&self) -> f64 {
        self.recall_for(1)
    }

    /// Harmonic mean of positive-class precision and recall. Returns `0.0`
    /// when both are zero.
    pub fn f1(&self) -> f64 {
        self.f1_for(1)
    }

    /// Macro-averaged precision: the unweighted mean of per-class
    /// precisions.
    pub fn macro_precision(&self) -> f64 {
        (0..self.classes).map(|c| self.precision_for(c)).sum::<f64>() / self.classes as f64
    }

    /// Macro-averaged recall: the unweighted mean of per-class recalls
    /// (identical to [`ConfusionMatrix::balanced_accuracy`]).
    pub fn macro_recall(&self) -> f64 {
        (0..self.classes).map(|c| self.recall_for(c)).sum::<f64>() / self.classes as f64
    }

    /// Macro-averaged F1: the unweighted mean of per-class F1 scores.
    pub fn macro_f1(&self) -> f64 {
        (0..self.classes).map(|c| self.f1_for(c)).sum::<f64>() / self.classes as f64
    }

    /// Balanced accuracy: mean of per-class recalls. Useful for the heavily
    /// imbalanced ijcnn1-like dataset (10%/90%).
    pub fn balanced_accuracy(&self) -> f64 {
        self.macro_recall()
    }
}

/// Serializes as `{classes, cells}`; deserialization also accepts the
/// pre-k-class four-field binary struct.
impl Serialize for ConfusionMatrix {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("classes".to_string(), self.classes.to_value()),
            ("cells".to_string(), self.cells.to_value()),
        ])
    }
}

impl Deserialize for ConfusionMatrix {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = value.as_map().ok_or_else(|| DeError::expected("map", "ConfusionMatrix"))?;
        if entries.iter().any(|(key, _)| key == "cells") {
            let classes = usize::from_value(serde::map_get(entries, "classes")?)?;
            let cells: Vec<usize> = Vec::from_value(serde::map_get(entries, "cells")?)?;
            if classes < 2 || cells.len() != classes * classes {
                return Err(DeError::new(format!(
                    "invalid ConfusionMatrix: {} cells for {classes} classes",
                    cells.len()
                )));
            }
            return Ok(ConfusionMatrix { cells, classes });
        }
        let mut matrix = ConfusionMatrix::with_classes(2);
        matrix.cells[3] = usize::from_value(serde::map_get(entries, "true_positive")?)?;
        matrix.cells[0] = usize::from_value(serde::map_get(entries, "true_negative")?)?;
        matrix.cells[1] = usize::from_value(serde::map_get(entries, "false_positive")?)?;
        matrix.cells[2] = usize::from_value(serde::map_get(entries, "false_negative")?)?;
        Ok(matrix)
    }
}

/// Fraction of positions where the two label slices agree.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn accuracy(truth: &[Label], predicted: &[Label]) -> f64 {
    ConfusionMatrix::from_predictions(truth, predicted).accuracy()
}

/// Area under the ROC curve for scores where larger means "more positive".
///
/// Computed via the Mann-Whitney U statistic; ties contribute 1/2. Returns
/// `0.5` when either class is absent (no ranking information). In a
/// k-class setting this is the one-vs-rest AUC of class 1.
pub fn roc_auc(truth: &[Label], scores: &[f64]) -> f64 {
    assert_eq!(truth.len(), scores.len(), "scores must align with labels");
    let positives: Vec<f64> = truth
        .iter()
        .zip(scores)
        .filter(|(l, _)| l.is_positive())
        .map(|(_, &s)| s)
        .collect();
    let negatives: Vec<f64> = truth
        .iter()
        .zip(scores)
        .filter(|(l, _)| !l.is_positive())
        .map(|(_, &s)| s)
        .collect();
    if positives.is_empty() || negatives.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0;
    for &p in &positives {
        for &n in &negatives {
            if p > n {
                wins += 1.0;
            } else if p == n {
                wins += 0.5;
            }
        }
    }
    wins / (positives.len() as f64 * negatives.len() as f64)
}

/// Mean and (population) standard deviation of a sample.
///
/// This is the statistic pair the watermark-detection attacker computes over
/// per-tree depths and leaf counts (Table 2), and the statistic the
/// hyper-parameter adjustment heuristic of Algorithm 1 uses.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let variance = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, variance.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: Label = Label::Positive;
    const N: Label = Label::Negative;

    #[test]
    fn confusion_matrix_counts_all_cells() {
        let truth = [P, P, N, N, P];
        let predicted = [P, N, N, P, P];
        let m = ConfusionMatrix::from_predictions(&truth, &predicted);
        assert_eq!(m.true_positive(), 2);
        assert_eq!(m.false_negative(), 1);
        assert_eq!(m.true_negative(), 1);
        assert_eq!(m.false_positive(), 1);
        assert_eq!(m.total(), 5);
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn perfect_predictions_have_unit_metrics() {
        let truth = [P, N, P, N];
        let m = ConfusionMatrix::from_predictions(&truth, &truth);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
        assert_eq!(m.balanced_accuracy(), 1.0);
        assert_eq!(m.macro_f1(), 1.0);
    }

    #[test]
    fn degenerate_metrics_default_to_zero() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn balanced_accuracy_penalizes_majority_voting_on_imbalanced_data() {
        // 9 negatives, 1 positive, classifier always says negative.
        let truth = [N, N, N, N, N, N, N, N, N, P];
        let predicted = [N; 10];
        let m = ConfusionMatrix::from_predictions(&truth, &predicted);
        assert!((m.accuracy() - 0.9).abs() < 1e-12);
        assert!((m.balanced_accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn k_class_cells_and_macro_metrics() {
        let c = |i: usize| Label::from_index(i).unwrap();
        // 3 classes: class 0 perfectly predicted, class 1 half right,
        // class 2 never predicted correctly.
        let truth = [c(0), c(0), c(1), c(1), c(2), c(2)];
        let predicted = [c(0), c(0), c(1), c(2), c(0), c(1)];
        let m = ConfusionMatrix::from_predictions(&truth, &predicted);
        assert_eq!(m.num_classes(), 3);
        assert_eq!(m.count(0, 0), 2);
        assert_eq!(m.count(1, 2), 1);
        assert_eq!(m.count(2, 0), 1);
        assert_eq!(m.total(), 6);
        assert!((m.accuracy() - 0.5).abs() < 1e-12);
        // Recalls: 1.0, 0.5, 0.0 → macro recall 0.5.
        assert!((m.macro_recall() - 0.5).abs() < 1e-12);
        // Precisions: 2/3, 1/2, 0 → macro precision 7/18.
        assert!((m.macro_precision() - 7.0 / 18.0).abs() < 1e-12);
        assert!(m.macro_f1() > 0.0 && m.macro_f1() < 1.0);
        assert_eq!(m.f1_for(2), 0.0);
    }

    #[test]
    fn explicit_class_count_covers_unseen_classes() {
        let truth = [N, P];
        let m = ConfusionMatrix::from_predictions_with_classes(&truth, &truth, 5);
        assert_eq!(m.num_classes(), 5);
        assert_eq!(m.recall_for(4), 0.0);
        assert_eq!(m.accuracy(), 1.0);
    }

    #[test]
    fn binary_views_agree_with_macro_metrics_for_two_classes() {
        let truth = [P, P, N, N, P, N];
        let predicted = [P, N, N, P, P, N];
        let m = ConfusionMatrix::from_predictions(&truth, &predicted);
        let macro_recall = (m.recall_for(0) + m.recall_for(1)) / 2.0;
        assert_eq!(m.balanced_accuracy(), macro_recall);
        assert_eq!(m.precision(), m.precision_for(1));
    }

    #[test]
    fn serde_round_trip_and_legacy_binary_shape() {
        let truth = [P, N, P];
        let m = ConfusionMatrix::from_predictions(&truth, &truth);
        let json = serde_json::to_string(&m).unwrap();
        let back: ConfusionMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        let legacy: ConfusionMatrix = serde_json::from_str(
            "{\"true_positive\":2,\"true_negative\":1,\"false_positive\":3,\"false_negative\":4}",
        )
        .unwrap();
        assert_eq!(legacy.true_positive(), 2);
        assert_eq!(legacy.true_negative(), 1);
        assert_eq!(legacy.false_positive(), 3);
        assert_eq!(legacy.false_negative(), 4);
    }

    #[test]
    fn auc_of_perfect_ranking_is_one() {
        let truth = [N, N, P, P];
        let scores = [0.1, 0.2, 0.8, 0.9];
        assert!((roc_auc(&truth, &scores) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_of_reverse_ranking_is_zero() {
        let truth = [P, P, N, N];
        let scores = [0.1, 0.2, 0.8, 0.9];
        assert!(roc_auc(&truth, &scores).abs() < 1e-12);
    }

    #[test]
    fn auc_handles_ties_and_missing_classes() {
        let truth = [P, N];
        let scores = [0.5, 0.5];
        assert!((roc_auc(&truth, &scores) - 0.5).abs() < 1e-12);
        assert_eq!(roc_auc(&[P, P], &[0.1, 0.9]), 0.5);
    }

    #[test]
    fn mean_std_of_constant_sample_has_zero_std() {
        let (mean, std) = mean_std(&[3.0, 3.0, 3.0]);
        assert_eq!(mean, 3.0);
        assert_eq!(std, 0.0);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn mean_std_matches_hand_computation() {
        let (mean, std) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((mean - 5.0).abs() < 1e-12);
        assert!((std - 2.0).abs() < 1e-12);
    }
}
