//! Evaluation metrics for binary classifiers.

use crate::label::Label;
use serde::{Deserialize, Serialize};

/// A 2x2 confusion matrix for binary classification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Positive instances predicted positive.
    pub true_positive: usize,
    /// Negative instances predicted negative.
    pub true_negative: usize,
    /// Negative instances predicted positive.
    pub false_positive: usize,
    /// Positive instances predicted negative.
    pub false_negative: usize,
}

impl ConfusionMatrix {
    /// Builds a confusion matrix from parallel slices of true and predicted
    /// labels.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn from_predictions(truth: &[Label], predicted: &[Label]) -> Self {
        assert_eq!(
            truth.len(),
            predicted.len(),
            "label slices must have equal length"
        );
        let mut matrix = ConfusionMatrix::default();
        for (&t, &p) in truth.iter().zip(predicted) {
            match (t, p) {
                (Label::Positive, Label::Positive) => matrix.true_positive += 1,
                (Label::Negative, Label::Negative) => matrix.true_negative += 1,
                (Label::Negative, Label::Positive) => matrix.false_positive += 1,
                (Label::Positive, Label::Negative) => matrix.false_negative += 1,
            }
        }
        matrix
    }

    /// Total number of instances.
    pub fn total(&self) -> usize {
        self.true_positive + self.true_negative + self.false_positive + self.false_negative
    }

    /// Fraction of correct predictions. Returns `0.0` for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.true_positive + self.true_negative) as f64 / total as f64
        }
    }

    /// Precision of the positive class (`TP / (TP + FP)`). Returns `0.0`
    /// when no positive predictions were made.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positive + self.false_positive;
        if denom == 0 {
            0.0
        } else {
            self.true_positive as f64 / denom as f64
        }
    }

    /// Recall of the positive class (`TP / (TP + FN)`). Returns `0.0` when
    /// there are no positive instances.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positive + self.false_negative;
        if denom == 0 {
            0.0
        } else {
            self.true_positive as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall. Returns `0.0` when both are
    /// zero.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Balanced accuracy: mean of per-class recalls. Useful for the heavily
    /// imbalanced ijcnn1-like dataset (10%/90%).
    pub fn balanced_accuracy(&self) -> f64 {
        let pos_denom = self.true_positive + self.false_negative;
        let neg_denom = self.true_negative + self.false_positive;
        let pos_recall = if pos_denom == 0 {
            0.0
        } else {
            self.true_positive as f64 / pos_denom as f64
        };
        let neg_recall = if neg_denom == 0 {
            0.0
        } else {
            self.true_negative as f64 / neg_denom as f64
        };
        (pos_recall + neg_recall) / 2.0
    }
}

/// Fraction of positions where the two label slices agree.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn accuracy(truth: &[Label], predicted: &[Label]) -> f64 {
    ConfusionMatrix::from_predictions(truth, predicted).accuracy()
}

/// Area under the ROC curve for scores where larger means "more positive".
///
/// Computed via the Mann-Whitney U statistic; ties contribute 1/2. Returns
/// `0.5` when either class is absent (no ranking information).
pub fn roc_auc(truth: &[Label], scores: &[f64]) -> f64 {
    assert_eq!(truth.len(), scores.len(), "scores must align with labels");
    let positives: Vec<f64> = truth
        .iter()
        .zip(scores)
        .filter(|(l, _)| l.is_positive())
        .map(|(_, &s)| s)
        .collect();
    let negatives: Vec<f64> = truth
        .iter()
        .zip(scores)
        .filter(|(l, _)| !l.is_positive())
        .map(|(_, &s)| s)
        .collect();
    if positives.is_empty() || negatives.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0;
    for &p in &positives {
        for &n in &negatives {
            if p > n {
                wins += 1.0;
            } else if p == n {
                wins += 0.5;
            }
        }
    }
    wins / (positives.len() as f64 * negatives.len() as f64)
}

/// Mean and (population) standard deviation of a sample.
///
/// This is the statistic pair the watermark-detection attacker computes over
/// per-tree depths and leaf counts (Table 2), and the statistic the
/// hyper-parameter adjustment heuristic of Algorithm 1 uses.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let variance = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, variance.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: Label = Label::Positive;
    const N: Label = Label::Negative;

    #[test]
    fn confusion_matrix_counts_all_cells() {
        let truth = [P, P, N, N, P];
        let predicted = [P, N, N, P, P];
        let m = ConfusionMatrix::from_predictions(&truth, &predicted);
        assert_eq!(m.true_positive, 2);
        assert_eq!(m.false_negative, 1);
        assert_eq!(m.true_negative, 1);
        assert_eq!(m.false_positive, 1);
        assert_eq!(m.total(), 5);
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn perfect_predictions_have_unit_metrics() {
        let truth = [P, N, P, N];
        let m = ConfusionMatrix::from_predictions(&truth, &truth);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
        assert_eq!(m.balanced_accuracy(), 1.0);
    }

    #[test]
    fn degenerate_metrics_default_to_zero() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn balanced_accuracy_penalizes_majority_voting_on_imbalanced_data() {
        // 9 negatives, 1 positive, classifier always says negative.
        let truth = [N, N, N, N, N, N, N, N, N, P];
        let predicted = [N; 10];
        let m = ConfusionMatrix::from_predictions(&truth, &predicted);
        assert!((m.accuracy() - 0.9).abs() < 1e-12);
        assert!((m.balanced_accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_of_perfect_ranking_is_one() {
        let truth = [N, N, P, P];
        let scores = [0.1, 0.2, 0.8, 0.9];
        assert!((roc_auc(&truth, &scores) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_of_reverse_ranking_is_zero() {
        let truth = [P, P, N, N];
        let scores = [0.1, 0.2, 0.8, 0.9];
        assert!(roc_auc(&truth, &scores).abs() < 1e-12);
    }

    #[test]
    fn auc_handles_ties_and_missing_classes() {
        let truth = [P, N];
        let scores = [0.5, 0.5];
        assert!((roc_auc(&truth, &scores) - 0.5).abs() < 1e-12);
        assert_eq!(roc_auc(&[P, P], &[0.1, 0.9]), 0.5);
    }

    #[test]
    fn mean_std_of_constant_sample_has_zero_std() {
        let (mean, std) = mean_std(&[3.0, 3.0, 3.0]);
        assert_eq!(mean, 3.0);
        assert_eq!(std, 0.0);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn mean_std_matches_hand_computation() {
        let (mean, std) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((mean - 5.0).abs() < 1e-12);
        assert!((std - 2.0).abs() < 1e-12);
    }
}
