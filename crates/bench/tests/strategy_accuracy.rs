//! Accuracy acceptance tests for the split strategies on the benchmark
//! fixtures: the histogram approximation must stay within 2% test accuracy
//! of the exact search, and both must be no worse than the naive
//! reference (which the exact search reproduces bit-for-bit).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte_bench::{small_image, small_tabular};
use wdte_trees::{ForestParams, RandomForest, SplitStrategy, TreeParams};

fn accuracy_with(strategy: SplitStrategy, dataset: &wdte_data::Dataset, trees: usize) -> f64 {
    let mut rng = SmallRng::seed_from_u64(0xACC);
    let (train, test) = dataset.split_stratified(0.7, &mut rng);
    let params = ForestParams {
        num_trees: trees,
        tree: TreeParams {
            strategy,
            ..TreeParams::default()
        },
        ..ForestParams::default()
    };
    let forest = RandomForest::fit(&train, &params, &mut rng);
    forest.accuracy(&test)
}

#[test]
fn histogram_stays_within_two_percent_of_exact_on_small_tabular() {
    let dataset = small_tabular();
    let exact = accuracy_with(SplitStrategy::Exact, &dataset, 20);
    let histogram = accuracy_with(SplitStrategy::Histogram { bins: 64 }, &dataset, 20);
    assert!(exact > 0.9, "exact accuracy degenerated: {exact}");
    assert!(
        exact - histogram <= 0.02,
        "histogram trails exact by more than 2%: exact {exact}, histogram {histogram}"
    );
}

#[test]
fn exact_matches_naive_accuracy_exactly_on_small_tabular() {
    let dataset = small_tabular();
    let exact = accuracy_with(SplitStrategy::Exact, &dataset, 12);
    let naive = accuracy_with(SplitStrategy::ExactNaive, &dataset, 12);
    assert_eq!(exact, naive, "exact and naive must agree bit-for-bit");
}

#[test]
fn histogram_stays_within_two_percent_of_exact_on_small_image() {
    let dataset = small_image();
    let exact = accuracy_with(SplitStrategy::Exact, &dataset, 10);
    let histogram = accuracy_with(SplitStrategy::Histogram { bins: 255 }, &dataset, 10);
    assert!(
        exact - histogram <= 0.02,
        "histogram trails exact by more than 2%: exact {exact}, histogram {histogram}"
    );
}
