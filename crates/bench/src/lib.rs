//! # wdte-bench
//!
//! Shared fixtures for the Criterion benchmark suite: small, deterministic
//! datasets and pre-trained models reused across benchmarks so each bench
//! measures the operation of interest rather than setup cost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte_data::{Dataset, SyntheticSpec};

/// Deterministic RNG used by every benchmark fixture.
pub fn bench_rng() -> SmallRng {
    SmallRng::seed_from_u64(0xBE5C)
}

/// A small breast-cancer-like dataset (fast to train on).
pub fn small_tabular() -> Dataset {
    SyntheticSpec::breast_cancer_like().generate(&mut bench_rng())
}

/// A reduced image-like dataset exercising the high-dimensional code path.
pub fn small_image() -> Dataset {
    SyntheticSpec::mnist2_6_like().scaled(0.03).generate(&mut bench_rng())
}

/// A deployment-scale image-784 fixture: ~1.4k instances with enough label
/// noise that trees grow to realistic MNIST2-6 depths (≈16–24, hundreds of
/// leaves). The default `mnist2_6_like` spec is almost noise-free, so its
/// trees are depth-3 stumps — far from what a served model looks like.
pub fn serving_image() -> Dataset {
    let mut spec = SyntheticSpec::mnist2_6_like();
    spec.label_noise = 0.05;
    spec.scaled(0.1).generate(&mut bench_rng())
}

/// A reduced clustered, imbalanced dataset.
pub fn small_clustered() -> Dataset {
    SyntheticSpec::ijcnn1_like().scaled(0.05).generate(&mut bench_rng())
}
