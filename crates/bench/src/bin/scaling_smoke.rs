//! `scaling_smoke` — multi-core scaling check for the nested dispute
//! pipeline, built for the CI `bench-multicore` lane.
//!
//! Embeds a deterministic watermarked model, assembles a docket of genuine
//! and forged claims, and resolves it through
//! `DisputeService::resolve_many` — the two-level (dispute × batch-shard)
//! fan-out — at each requested worker-pool size. **Each width runs in its
//! own child process whose global pool is sized to exactly that width**
//! (a process can size its pool only once, and an `install`-style scoped
//! limit on a wider pool would bound split counts, not the threads doing
//! the work — the child-per-width design makes every row a true pool
//! size, the same thing `serve_judge --workers` configures). For every
//! width the child reports best-of-`--samples` wall time plus a
//! fingerprint of the full verdict vector; the parent asserts all
//! fingerprints are **bit-identical**, computes speedups against the
//! always-included 1-worker (strictly serial) run, and writes a JSON
//! artifact.
//!
//! ```text
//! scaling_smoke [--workers 1,2,4] [--claims N] [--samples N]
//!               [--shard-rows N] [--kernel NAME] [--out PATH]
//!               [--enforce-speedup X.Y]
//! scaling_smoke --wire [--auth] [--fleet N] [--connections C] [--dockets D]
//!               [--claims N] [--out PATH] [--enforce-claims-per-sec X]
//! ```
//!
//! `--kernel NAME` picks the batch-inference kernel the service runs
//! (`scalar`, `blocked`, `quantized` or the default `auto`). Every child
//! reports the *resolved* kernel — for `auto`, whatever the microprobe
//! picked — and its block width, and both land in the JSON artifact, so
//! the CI lane records which kernel actually produced each timing row.
//!
//! `--wire` switches the binary into an **open-loop load generator** for
//! the WDTP v2 wire path: it spawns an in-process [`JudgeServer`] on an
//! ephemeral loopback port, then `--connections` generator threads each
//! stream `--dockets` pipelined dockets of `--claims` claims through a
//! [`DisputeClient`] *without waiting for verdicts between sends* — the
//! offered load is independent of completions, which is what exposes
//! queueing behaviour a closed request/response loop hides. Each docket's
//! latency is measured from `send_docket` to its `recv_docket` verdicts;
//! the run reports served claims/s plus p50/p99/max docket latency and
//! hard-fails (exit `2`) unless **every** served verdict vector is
//! bit-identical to the in-process `resolve_many` reference.
//!
//! `--auth` (wire mode only) keys the loopback judge with one synthetic
//! tenant and authenticates every generator connection, so the identical
//! workload measures the per-frame HMAC cost: same dockets, same
//! bit-identity gate, every frame tagged and sequence-checked. Comparing
//! an `--auth` run against an anonymous one isolates the authentication
//! overhead of the wire path.
//!
//! `--fleet N` (wire mode only) fronts `N` in-process backend judges with
//! a consistent-hash [`JudgeRouter`] and drives the identical open-loop
//! load through it. The docket cycles four replicated model ids, so every
//! docket is split into per-backend shards and stitched back — the
//! reported claims/s prices the router's split/stitch and re-signing
//! overhead against the single-judge `--wire` rows, under the same
//! bit-identity gate.
//!
//! Exit codes: `2` = bit-identity violation (always fatal, both modes),
//! `3` = a measured floor was missed — the widest run fell below
//! `--enforce-speedup` in scaling mode (CI passes a generous `0.85` so
//! noisy runners don't flake), or throughput fell below
//! `--enforce-claims-per-sec` in wire mode. Without enforcement flags,
//! timings are informational — useful on single-core hosts where the
//! expected speedup is exactly 1.0.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wdte_core::{
    Dispute, DisputeService, Kernel, KeyRing, OwnershipClaim, Signature, TenantId, VerificationReport,
    WatermarkConfig, WatermarkOutcome, WatermarkResult, Watermarker,
};
use wdte_data::SyntheticSpec;
use wdte_server::{ClientAuth, DisputeClient, JudgeRouter, JudgeServer, RouterConfig, ServerConfig};

struct Args {
    workers: Vec<usize>,
    claims: usize,
    samples: usize,
    shard_rows: usize,
    kernel: Kernel,
    out: String,
    out_was_set: bool,
    enforce_speedup: Option<f64>,
    /// Hidden child mode: measure exactly one pool width and print a
    /// machine-readable result line.
    bench_one: Option<usize>,
    /// Open-loop wire-path load-generator mode.
    wire: bool,
    /// Wire mode only: key the loopback judge and authenticate every
    /// generator connection, measuring the per-frame HMAC cost.
    auth: bool,
    connections: usize,
    dockets: usize,
    enforce_claims_per_sec: Option<f64>,
    /// Wire mode only: put a consistent-hash router in front of this many
    /// in-process backend judges and drive the identical open-loop load
    /// through the fleet (`0` = no router, one judge).
    fleet: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workers: vec![1, 2, 4],
        claims: 48,
        samples: 5,
        shard_rows: 256,
        kernel: Kernel::default(),
        out: "target/bench-results/scaling_smoke.json".to_string(),
        out_was_set: false,
        enforce_speedup: None,
        bench_one: None,
        wire: false,
        auth: false,
        connections: 4,
        dockets: 16,
        enforce_claims_per_sec: None,
        fleet: 0,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--workers" => {
                args.workers = value("--workers")?
                    .split(',')
                    .map(|w| w.trim().parse::<usize>().map_err(|e| format!("--workers: {e}")))
                    .collect::<Result<Vec<_>, _>>()?;
                if args.workers.is_empty() || args.workers.contains(&0) {
                    return Err("--workers needs a comma-separated list of positive counts".into());
                }
            }
            "--claims" => {
                args.claims = value("--claims")?.parse().map_err(|e| format!("--claims: {e}"))?;
                if args.claims < 2 {
                    return Err("--claims must be at least 2".into());
                }
            }
            "--samples" => {
                args.samples = value("--samples")?.parse().map_err(|e| format!("--samples: {e}"))?;
                if args.samples == 0 {
                    return Err("--samples must be at least 1".into());
                }
            }
            "--shard-rows" => {
                args.shard_rows =
                    value("--shard-rows")?.parse().map_err(|e| format!("--shard-rows: {e}"))?;
                if args.shard_rows == 0 {
                    return Err("--shard-rows must be at least 1".into());
                }
            }
            "--kernel" => {
                args.kernel = value("--kernel")?.parse().map_err(|e| format!("--kernel: {e}"))?
            }
            "--out" => {
                args.out = value("--out")?;
                args.out_was_set = true;
            }
            "--wire" => args.wire = true,
            "--auth" => args.auth = true,
            "--connections" => {
                args.connections =
                    value("--connections")?.parse().map_err(|e| format!("--connections: {e}"))?;
                if args.connections == 0 {
                    return Err("--connections must be at least 1".into());
                }
            }
            "--dockets" => {
                args.dockets = value("--dockets")?.parse().map_err(|e| format!("--dockets: {e}"))?;
                if args.dockets == 0 {
                    return Err("--dockets must be at least 1".into());
                }
            }
            "--fleet" => {
                args.fleet = value("--fleet")?.parse().map_err(|e| format!("--fleet: {e}"))?;
                if args.fleet < 2 {
                    return Err("--fleet needs at least 2 backends".into());
                }
            }
            "--enforce-claims-per-sec" => {
                args.enforce_claims_per_sec = Some(
                    value("--enforce-claims-per-sec")?
                        .parse()
                        .map_err(|e| format!("--enforce-claims-per-sec: {e}"))?,
                )
            }
            "--enforce-speedup" => {
                args.enforce_speedup = Some(
                    value("--enforce-speedup")?
                        .parse()
                        .map_err(|e| format!("--enforce-speedup: {e}"))?,
                )
            }
            "--bench-one" => {
                args.bench_one =
                    Some(value("--bench-one")?.parse().map_err(|e| format!("--bench-one: {e}"))?)
            }
            "--help" | "-h" => {
                println!(
                    "usage: scaling_smoke [--workers 1,2,4] [--claims N] [--samples N] \
                     [--shard-rows N] [--kernel scalar|blocked|quantized|auto] [--out PATH] \
                     [--enforce-speedup X.Y]\n\
                     \x20      scaling_smoke --wire [--auth] [--fleet N] [--connections C] \
                     [--dockets D] [--claims N] [--out PATH] [--enforce-claims-per-sec X]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// One measured width: true pool size, best wall time, throughput and the
/// verdict-vector fingerprint its child process reported.
struct Measurement {
    workers: usize,
    best: Duration,
    claims_per_sec: f64,
    fingerprint: u64,
    /// What the requested kernel resolved to in that child (for `auto`,
    /// the microprobe's pick), e.g. `blocked16`, plus its block width.
    resolved_kernel: String,
    block_width: usize,
}

fn build_docket(
    claims: usize,
    shard_rows: usize,
    kernel: Kernel,
    heavy_decoys: bool,
) -> (DisputeService, Vec<Dispute>, WatermarkOutcome) {
    // Deterministic fixture, same spirit as `judge_smoke`: every run of
    // this binary measures the identical workload.
    let mut rng = SmallRng::seed_from_u64(0x5CA1E);
    let dataset = SyntheticSpec::breast_cancer_like().scaled(0.8).generate(&mut rng);
    let (train, test) = dataset.split_stratified(0.8, &mut rng);
    let signature = Signature::from_identity("alice@modelcorp.example", 16);
    let config = WatermarkConfig {
        num_trees: 16,
        ..WatermarkConfig::fast()
    };
    let outcome = Watermarker::new(config)
        .embed(&train, &signature, &mut rng)
        .expect("the fixture embedding always succeeds");
    // The claim's test rows are protocol decoys — only trigger rows decide
    // the verdict — so a large decoy draw makes each claim's verification
    // batch deployment-sized (thousands of disguised queries) without
    // inflating the embedding cost of the fixture. The scaling mode wants
    // that heavy inner batch (it measures the nested fan-out); the wire
    // mode wants claims shaped like the committed
    // `served_loopback_64_claim_docket` baseline, so its claims/s compare
    // against that number.
    let decoys = if heavy_decoys {
        SyntheticSpec::breast_cancer_like().scaled(8.0).generate(&mut rng)
    } else {
        test.clone()
    };
    let genuine = OwnershipClaim::new(
        outcome.signature.clone(),
        outcome.trigger_set.clone(),
        decoys.clone(),
    );
    let forged = OwnershipClaim::new(
        Signature::from_identity("mallory@pirate.example", 16),
        test.select(&(0..outcome.trigger_set.len()).collect::<Vec<_>>())
            .expect("forged trigger selection from the test split"),
        decoys,
    );
    let docket: Vec<Dispute> = (0..claims)
        .map(|i| {
            Dispute::new(
                "scaling-deployment",
                if i % 2 == 0 {
                    genuine.clone()
                } else {
                    forged.clone()
                },
            )
        })
        .collect();
    // Small shards force a real inner fan-out: each dispute splits into
    // several batch-shard jobs, which is the nesting this binary exists
    // to measure.
    let service = DisputeService::builder()
        .batch_shard_rows(shard_rows)
        .kernel(kernel)
        .build()
        .expect("an empty builder always builds");
    service.register("scaling-deployment", &outcome.model);
    (service, docket, outcome)
}

/// FNV-1a over the debug rendering of the verdict vector: a cheap,
/// process-independent fingerprint (float debug formatting is the
/// shortest round-trip form, so equal bits render equally) the parent
/// compares across widths to enforce bit-identity.
fn fingerprint(verdicts: &[WatermarkResult<VerificationReport>]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{verdicts:?}").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The `p`-th percentile of an already-sorted latency vector (nearest-rank).
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    debug_assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Open-loop wire-path load generator: an in-process judge on loopback,
/// hammered by pipelining clients whose send schedule is independent of
/// verdict arrival. Hard-fails on any verdict that differs from the
/// in-process reference.
fn wire_mode(args: &Args) -> ExitCode {
    let (service, mut docket, outcome) = build_docket(args.claims, args.shard_rows, args.kernel, false);
    // With --fleet the docket cycles several replicated model ids, so the
    // router genuinely splits every docket into per-backend shards.
    let model_ids: Vec<String> = if args.fleet > 0 {
        (0..4).map(|i| format!("scaling-deployment-{i}")).collect()
    } else {
        vec!["scaling-deployment".to_string()]
    };
    if args.fleet > 0 {
        for (i, dispute) in docket.iter_mut().enumerate() {
            dispute.model_id = model_ids[i % model_ids.len()].clone();
        }
        for id in &model_ids {
            service.register(id.clone(), &outcome.model);
        }
    }
    // One in-process reference resolution; every served docket must match
    // its fingerprint bit for bit.
    let reference_fp = fingerprint(&service.resolve_many(&docket));
    let service = Arc::new(service);
    // With --auth the judge is keyed with one synthetic tenant and every
    // generator authenticates as it: same workload, every frame tagged.
    let tenant = TenantId::new("bench").expect("the bench tenant id is valid");
    let secret = b"scaling-smoke shared secret".to_vec();
    let key_ring = args.auth.then(|| {
        let mut ring = KeyRing::default();
        ring.insert(tenant.clone(), secret.clone());
        Arc::new(ring)
    });
    // The judge processes under load: the one shared fixture service, or
    // `--fleet` fresh services each replicating every model id (so any
    // backend can serve any shard).
    let serving: Vec<Arc<DisputeService>> = if args.fleet > 0 {
        (0..args.fleet)
            .map(|_| {
                let backend = DisputeService::builder()
                    .batch_shard_rows(args.shard_rows)
                    .kernel(args.kernel)
                    .build()
                    .expect("an empty builder always builds");
                for id in &model_ids {
                    backend.register(id.clone(), &outcome.model);
                    if args.auth {
                        // Models are tenant-namespaced: the bench tenant
                        // needs its own entry (shared compiled forest, no
                        // second compile).
                        backend
                            .register_digested_as(&tenant, id.clone(), &outcome.model)
                            .expect("the bench tenant registration is within quota");
                    }
                }
                Arc::new(backend)
            })
            .collect()
    } else {
        if args.auth {
            service
                .register_digested_as(&tenant, "scaling-deployment".to_string(), &outcome.model)
                .expect("the bench tenant registration is within quota");
        }
        vec![Arc::clone(&service)]
    };
    let mut servers = Vec::with_capacity(serving.len());
    for backend in serving {
        let config = ServerConfig {
            key_ring: key_ring.clone(),
            ..ServerConfig::default()
        };
        match JudgeServer::bind("127.0.0.1:0", backend, config) {
            Ok(server) => servers.push(server.spawn()),
            Err(err) => {
                eprintln!("scaling_smoke: could not bind a loopback judge: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    let router = if args.fleet > 0 {
        let config = RouterConfig {
            backends: servers.iter().map(|s| s.addr().to_string()).collect(),
            key_ring: key_ring.clone(),
            ..RouterConfig::default()
        };
        match JudgeRouter::bind("127.0.0.1:0", config) {
            Ok(router) => Some(router.spawn()),
            Err(err) => {
                eprintln!("scaling_smoke: could not bind the loopback router: {err}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let addr = router.as_ref().map_or_else(|| servers[0].addr(), |r| r.addr());
    let (connections, dockets) = (args.connections, args.dockets);
    let topology = match args.fleet {
        0 => "loopback judge".to_string(),
        n => format!("router over {n} loopback judges"),
    };
    println!(
        "scaling_smoke --wire: {connections} connections x {dockets} pipelined dockets x {} \
         claims against the {} {topology} at {addr}",
        args.claims,
        if args.auth { "authenticated" } else { "open" }
    );

    let started = Instant::now();
    let generators: Vec<_> = (0..connections)
        .map(|_| {
            let docket = docket.clone();
            let auth = args.auth.then(|| ClientAuth::new(tenant.clone(), secret.clone()));
            std::thread::spawn(move || -> Result<Vec<Duration>, String> {
                let mut client = match auth {
                    Some(auth) => DisputeClient::connect_authenticated(addr, auth),
                    None => DisputeClient::connect(addr),
                }
                .map_err(|e| format!("connect: {e}"))?;
                // Open loop: every docket is sent up front; nothing waits
                // for a verdict before offering more load.
                let mut sent = Vec::with_capacity(dockets);
                let mut tickets = Vec::with_capacity(dockets);
                for _ in 0..dockets {
                    sent.push(Instant::now());
                    tickets.push(client.send_docket(&docket).map_err(|e| format!("send: {e}"))?);
                }
                let mut latencies = Vec::with_capacity(dockets);
                for (ticket, sent_at) in tickets.into_iter().zip(sent) {
                    let verdicts = client.recv_docket(ticket).map_err(|e| format!("recv: {e}"))?;
                    latencies.push(sent_at.elapsed());
                    if fingerprint(&verdicts) != reference_fp {
                        return Err(format!(
                            "BIT-IDENTITY VIOLATION: served fingerprint {:016x} differs from \
                             the in-process reference {reference_fp:016x}",
                            fingerprint(&verdicts)
                        ));
                    }
                }
                Ok(latencies)
            })
        })
        .collect();

    let mut latencies: Vec<Duration> = Vec::with_capacity(connections * dockets);
    let mut bit_identity_violated = false;
    for generator in generators {
        match generator.join().expect("a generator thread never panics") {
            Ok(per_docket) => latencies.extend(per_docket),
            Err(message) => {
                eprintln!("scaling_smoke: {message}");
                bit_identity_violated |= message.contains("BIT-IDENTITY");
                if let Some(router) = &router {
                    router.handle().shutdown();
                }
                for server in &servers {
                    server.handle().shutdown();
                }
                return if bit_identity_violated {
                    ExitCode::from(2)
                } else {
                    ExitCode::FAILURE
                };
            }
        }
    }
    let wall = started.elapsed();
    if let Some(router) = router {
        router.shutdown().expect("the loopback router shuts down cleanly");
    }
    for server in servers {
        server.shutdown().expect("the loopback judge shuts down cleanly");
    }

    let total_claims = connections * dockets * args.claims;
    let claims_per_sec = total_claims as f64 / wall.as_secs_f64();
    latencies.sort_unstable();
    let (p50, p99, max) = (
        percentile(&latencies, 50.0),
        percentile(&latencies, 99.0),
        *latencies.last().unwrap(),
    );
    println!(
        "scaling_smoke --wire: {total_claims} claims served in {wall:?} = {claims_per_sec:.0} \
         claims/s; docket latency p50 {p50:?} / p99 {p99:?} / max {max:?}; all verdicts \
         bit-identical to in-process resolution"
    );

    let out = if args.out_was_set {
        args.out.clone()
    } else if args.fleet > 0 {
        "target/bench-results/wire_fleet_load.json".to_string()
    } else {
        "target/bench-results/wire_load.json".to_string()
    };
    let artifact = format!(
        "{{\n  \"mode\": \"{}\",\n  \"auth\": {},\n  \"backends\": {},\n  \
         \"connections\": {connections},\n  \
         \"dockets_per_connection\": {dockets},\n  \"claims_per_docket\": {},\n  \
         \"total_claims\": {total_claims},\n  \"wall_ms\": {:.3},\n  \
         \"claims_per_sec\": {claims_per_sec:.0},\n  \"docket_latency_ms\": {{ \
         \"p50\": {:.3}, \"p99\": {:.3}, \"max\": {:.3} }},\n  \"bit_identical\": true\n}}\n",
        if args.fleet > 0 {
            "open_loop_wire_fleet"
        } else {
            "open_loop_wire"
        },
        args.auth,
        args.fleet.max(1),
        args.claims,
        wall.as_secs_f64() * 1e3,
        p50.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3,
        max.as_secs_f64() * 1e3,
    );
    let path = std::path::Path::new(&out);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(err) = std::fs::write(path, &artifact) {
        eprintln!("scaling_smoke: could not write {}: {err}", path.display());
        return ExitCode::FAILURE;
    }
    println!("scaling_smoke: wrote {}", path.display());

    if let Some(floor) = args.enforce_claims_per_sec {
        if claims_per_sec < floor {
            eprintln!(
                "scaling_smoke: FAIL: {claims_per_sec:.0} served claims/s is below the \
                 {floor:.0} floor"
            );
            return ExitCode::from(3);
        }
    }
    println!("scaling_smoke: PASS (wire verdicts bit-identical to the in-process reference)");
    ExitCode::SUCCESS
}

/// Child mode: size the global pool to exactly `width`, run the fixture,
/// and print one machine-readable result line for the parent.
fn bench_one(width: usize, args: &Args) -> ExitCode {
    if let Err(err) = rayon::ThreadPoolBuilder::new().num_threads(width).build_global() {
        eprintln!("scaling_smoke: could not size the global pool to {width}: {err}");
        return ExitCode::FAILURE;
    }
    let (service, docket, _outcome) = build_docket(args.claims, args.shard_rows, args.kernel, true);
    // Warm-up run doubles as the fingerprint source — and, for `auto`,
    // triggers the one-time kernel microprobe so the resolved kernel is
    // known before any timed sample.
    let verdicts = service.resolve_many(&docket);
    let upheld = verdicts.iter().filter(|v| v.as_ref().is_ok_and(|r| r.verified)).count();
    if upheld == 0 || upheld >= args.claims {
        eprintln!(
            "scaling_smoke: implausible verdict split ({upheld}/{})",
            args.claims
        );
        return ExitCode::FAILURE;
    }
    let mut best = Duration::MAX;
    for _ in 0..args.samples {
        let start = Instant::now();
        let timed = service.resolve_many(&docket);
        let elapsed = start.elapsed();
        std::hint::black_box(&timed);
        best = best.min(elapsed);
    }
    let resolved = service
        .model("scaling-deployment")
        .and_then(|model| model.resolved_kernel(args.kernel));
    let (resolved_name, block_width) = match resolved {
        Some(r) => (r.to_string(), r.block_width()),
        None => ("unresolved".to_string(), 0),
    };
    println!(
        "bench-one width={width} best_ns={} fingerprint={:016x} kernel={resolved_name} \
         block_width={block_width}",
        best.as_nanos(),
        fingerprint(&verdicts)
    );
    ExitCode::SUCCESS
}

/// Spawns this binary back on itself in `--bench-one` mode and parses the
/// child's result line.
fn measure_width(width: usize, args: &Args) -> Result<Measurement, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let output = std::process::Command::new(&exe)
        .arg("--bench-one")
        .arg(width.to_string())
        .arg("--claims")
        .arg(args.claims.to_string())
        .arg("--samples")
        .arg(args.samples.to_string())
        .arg("--shard-rows")
        .arg(args.shard_rows.to_string())
        .arg("--kernel")
        .arg(args.kernel.to_string())
        .output()
        .map_err(|e| format!("spawning the width-{width} child: {e}"))?;
    let stderr = String::from_utf8_lossy(&output.stderr);
    if !stderr.is_empty() {
        eprint!("{stderr}");
    }
    if !output.status.success() {
        return Err(format!("width-{width} child failed with {}", output.status));
    }
    let stdout = String::from_utf8_lossy(&output.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("bench-one "))
        .ok_or_else(|| format!("width-{width} child printed no result line:\n{stdout}"))?;
    let mut best_ns: Option<u128> = None;
    let mut fp: Option<u64> = None;
    let mut resolved_kernel = String::from("unresolved");
    let mut block_width = 0usize;
    for token in line.split_whitespace() {
        if let Some(v) = token.strip_prefix("best_ns=") {
            best_ns = v.parse().ok();
        } else if let Some(v) = token.strip_prefix("fingerprint=") {
            fp = u64::from_str_radix(v, 16).ok();
        } else if let Some(v) = token.strip_prefix("kernel=") {
            resolved_kernel = v.to_string();
        } else if let Some(v) = token.strip_prefix("block_width=") {
            block_width = v.parse().unwrap_or(0);
        }
    }
    let (Some(best_ns), Some(fp)) = (best_ns, fp) else {
        return Err(format!("width-{width} child result line is malformed: {line}"));
    };
    let best = Duration::from_nanos(best_ns as u64);
    Ok(Measurement {
        workers: width,
        best,
        claims_per_sec: args.claims as f64 / best.as_secs_f64(),
        fingerprint: fp,
        resolved_kernel,
        block_width,
    })
}

fn json_artifact(args: &Args, host_cores: usize, rows: &[Measurement]) -> String {
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"claims\": {},\n", args.claims));
    json.push_str(&format!("  \"shard_rows\": {},\n", args.shard_rows));
    json.push_str(&format!("  \"samples_per_width\": {},\n", args.samples));
    json.push_str(&format!("  \"kernel\": \"{}\",\n", args.kernel));
    json.push_str("  \"pipeline\": \"resolve_many: disputes x batch shards (nested pool jobs)\",\n");
    json.push_str(
        "  \"measurement\": \"one child process per width; global pool sized to exactly that width\",\n",
    );
    json.push_str("  \"widths\": [\n");
    // Rows are sorted and always include width 1 (the strictly serial
    // baseline), so rows[0] is the true serial reference.
    let baseline = rows[0].best.as_secs_f64();
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"workers\": {}, \"best_ns\": {}, \"claims_per_sec\": {:.0}, \
             \"speedup_vs_1\": {:.3}, \"resolved_kernel\": \"{}\", \"block_width\": {} }}{}\n",
            row.workers,
            row.best.as_nanos(),
            row.claims_per_sec,
            baseline / row.best.as_secs_f64(),
            row.resolved_kernel,
            row.block_width,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("scaling_smoke: {message}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(width) = args.bench_one {
        return bench_one(width, &args);
    }
    if args.wire {
        return wire_mode(&args);
    }

    // Width 1 is always measured: it is both the bit-identity reference
    // and the denominator of every speedup (including the enforced one).
    let mut widths = args.workers.clone();
    widths.push(1);
    widths.sort_unstable();
    widths.dedup();

    let host_cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    println!(
        "scaling_smoke: {} claims x {} widths on a {host_cores}-core host \
         (one child process per width)",
        args.claims,
        widths.len()
    );

    let mut rows: Vec<Measurement> = Vec::with_capacity(widths.len());
    for &width in &widths {
        match measure_width(width, &args) {
            Ok(row) => {
                println!(
                    "  {} workers: best {:?} over {} samples = {:.0} claims/s ({} kernel)",
                    row.workers, row.best, args.samples, row.claims_per_sec, row.resolved_kernel
                );
                rows.push(row);
            }
            Err(message) => {
                eprintln!("scaling_smoke: {message}");
                return ExitCode::FAILURE;
            }
        }
    }
    for row in &rows[1..] {
        if row.fingerprint != rows[0].fingerprint {
            eprintln!(
                "scaling_smoke: BIT-IDENTITY VIOLATION at {} workers: verdict fingerprint \
                 {:016x} differs from the serial reference {:016x}",
                row.workers, row.fingerprint, rows[0].fingerprint
            );
            return ExitCode::from(2);
        }
    }

    let widest = rows.last().expect("at least width 1 was measured");
    let speedup = rows[0].best.as_secs_f64() / widest.best.as_secs_f64();
    println!(
        "scaling_smoke: speedup at {} workers vs 1 = {speedup:.2}x",
        widest.workers
    );

    let artifact = json_artifact(&args, host_cores, &rows);
    let path = std::path::Path::new(&args.out);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(path, &artifact) {
        Ok(()) => println!("scaling_smoke: wrote {}", path.display()),
        Err(err) => {
            eprintln!("scaling_smoke: could not write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    }

    if let Some(min) = args.enforce_speedup {
        if speedup < min {
            eprintln!(
                "scaling_smoke: FAIL: speedup {speedup:.2}x at {} workers is below the \
                 {min:.2}x floor — the nested pipeline is running slower with more workers",
                widest.workers
            );
            return ExitCode::from(3);
        }
    }
    println!("scaling_smoke: PASS (all widths bit-identical to the serial reference)");
    ExitCode::SUCCESS
}
