//! Benchmarks of watermark creation (Algorithm 1), the paper's primary
//! contribution, across trigger-set sizes.
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte_bench::small_tabular;
use wdte_core::{Signature, WatermarkConfig, Watermarker};

fn bench_embedding(c: &mut Criterion) {
    let dataset = small_tabular();
    let mut group = c.benchmark_group("watermark_embedding");
    group.sample_size(10);
    for &trigger_fraction in &[0.01f64, 0.02, 0.04] {
        group.bench_function(format!("trigger_{}pct", (trigger_fraction * 100.0) as u32), |b| {
            b.iter_batched(
                || SmallRng::seed_from_u64(3),
                |mut rng| {
                    let signature = Signature::random(12, 0.5, &mut rng);
                    let config = WatermarkConfig {
                        num_trees: 12,
                        trigger_fraction,
                        ..WatermarkConfig::fast()
                    };
                    Watermarker::new(config).embed(&dataset, &signature, &mut rng).unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_embedding);
criterion_main!(benches);
