//! Benchmarks of the forgery constraint solver (the Z3 stand-in) across
//! distortion budgets and ensemble sizes.
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte_bench::small_tabular;
use wdte_core::{Signature, WatermarkConfig, Watermarker};
use wdte_solver::{ForgeryQuery, ForgerySolver, LeafIndex, SolverConfig};

fn bench_forgery(c: &mut Criterion) {
    let dataset = small_tabular();
    let mut rng = SmallRng::seed_from_u64(5);
    let (train, test) = dataset.split_stratified(0.8, &mut rng);

    let mut group = c.benchmark_group("forgery_solver");
    group.sample_size(10);
    for &num_trees in &[8usize, 16] {
        let signature = Signature::random(num_trees, 0.5, &mut rng);
        let config = WatermarkConfig {
            num_trees,
            ..WatermarkConfig::fast()
        };
        let outcome = Watermarker::new(config).embed(&train, &signature, &mut rng).unwrap();
        let index = LeafIndex::new(&outcome.model);
        let fake = Signature::random(num_trees, 0.5, &mut rng);
        for &epsilon in &[0.3f64, 0.7] {
            group.bench_function(format!("{num_trees}_trees_eps_{epsilon}"), |b| {
                b.iter(|| {
                    let solver = ForgerySolver::new(SolverConfig::fast());
                    let mut forged = 0usize;
                    for i in 0..10.min(test.len()) {
                        let reference = test.instance(i);
                        let query = ForgeryQuery::from_signature_bits(
                            fake.bits(),
                            test.label(i),
                            Some((reference, epsilon)),
                        );
                        if solver.solve(&index, &query).is_forged() {
                            forged += 1;
                        }
                    }
                    forged
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_forgery);
criterion_main!(benches);
