//! Benchmarks of black-box watermark verification.
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte_bench::small_tabular;
use wdte_core::{verify_ownership, OwnershipClaim, Signature, WatermarkConfig, Watermarker};

fn bench_verification(c: &mut Criterion) {
    let dataset = small_tabular();
    let mut rng = SmallRng::seed_from_u64(4);
    let (train, test) = dataset.split_stratified(0.8, &mut rng);
    let signature = Signature::random(12, 0.5, &mut rng);
    let config = WatermarkConfig {
        num_trees: 12,
        ..WatermarkConfig::fast()
    };
    let outcome = Watermarker::new(config).embed(&train, &signature, &mut rng).unwrap();
    let claim = OwnershipClaim::new(signature, outcome.trigger_set.clone(), test);

    let mut group = c.benchmark_group("verification");
    group.sample_size(20);
    group.bench_function("verify_ownership", |b| {
        b.iter(|| verify_ownership(&outcome.model, &claim))
    });
    group.finish();
}

criterion_group!(benches, bench_verification);
criterion_main!(benches);
