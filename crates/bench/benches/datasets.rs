//! Benchmarks of the synthetic dataset generators (Table 1 substrate).
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte_data::SyntheticSpec;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_generation");
    group.sample_size(10);
    for (name, spec) in [
        ("breast_cancer_like", SyntheticSpec::breast_cancer_like()),
        ("mnist2_6_like_3pct", SyntheticSpec::mnist2_6_like().scaled(0.03)),
        ("ijcnn1_like_5pct", SyntheticSpec::ijcnn1_like().scaled(0.05)),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || SmallRng::seed_from_u64(7),
                |mut rng| spec.generate(&mut rng),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
