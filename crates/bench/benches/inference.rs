//! Benchmarks of batch inference: the recursive pointer-tree walk versus
//! the compiled structure-of-arrays path, plus end-to-end verification
//! throughput over both. The committed baseline lives in
//! `BENCH_inference.json` at the repository root.
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte_bench::{serving_image, small_tabular};
use wdte_core::{
    verify_ownership, Dispute, DisputeService, ModelOracle, OwnershipClaim, Signature, WatermarkConfig,
    Watermarker,
};
use wdte_data::Label;
use wdte_trees::{CompiledForest, ForestParams, RandomForest};

/// Oracle that walks the pointer trees one instance at a time — the
/// pre-compilation behaviour, kept as the verification baseline.
struct RecursiveOracle<'a>(&'a RandomForest);

impl ModelOracle for RecursiveOracle<'_> {
    fn num_trees(&self) -> usize {
        self.0.num_trees()
    }

    fn query(&self, instance: &[f64]) -> Vec<Label> {
        self.0.predict_all(instance)
    }
}

fn bench_batch_prediction(c: &mut Criterion) {
    let image = serving_image();
    let tabular = small_tabular();
    let mut rng = SmallRng::seed_from_u64(17);
    let image_forest = RandomForest::fit(&image, &ForestParams::with_trees(16), &mut rng);
    let tabular_forest = RandomForest::fit(&tabular, &ForestParams::with_trees(16), &mut rng);
    let image_compiled = CompiledForest::compile(&image_forest);
    let tabular_compiled = CompiledForest::compile(&tabular_forest);

    let mut group = c.benchmark_group("inference");
    group.sample_size(20);
    group.bench_function("image_784_recursive_batch", |b| {
        b.iter(|| image_forest.predict_dataset(&image))
    });
    group.bench_function("image_784_compiled_batch", |b| {
        b.iter(|| image_compiled.predict_batch(image.features()))
    });
    group.bench_function("image_784_compile", |b| {
        b.iter(|| CompiledForest::compile(&image_forest))
    });
    group.bench_function("tabular_recursive_batch", |b| {
        b.iter(|| tabular_forest.predict_dataset(&tabular))
    });
    group.bench_function("tabular_compiled_batch", |b| {
        b.iter(|| tabular_compiled.predict_batch(tabular.features()))
    });
    group.bench_function("tabular_compiled_predict_all_batch", |b| {
        b.iter(|| tabular_compiled.predict_all_batch(tabular.features()))
    });
    group.finish();
}

fn bench_verification_throughput(c: &mut Criterion) {
    let dataset = small_tabular();
    let mut rng = SmallRng::seed_from_u64(18);
    let (train, test) = dataset.split_stratified(0.8, &mut rng);
    let signature = Signature::random(12, 0.5, &mut rng);
    let config = WatermarkConfig {
        num_trees: 12,
        ..WatermarkConfig::fast()
    };
    let outcome = Watermarker::new(config).embed(&train, &signature, &mut rng).unwrap();
    let claim = OwnershipClaim::new(signature, outcome.trigger_set.clone(), test);
    let compiled = CompiledForest::compile(&outcome.model);

    let mut group = c.benchmark_group("verification_throughput");
    group.sample_size(20);
    group.bench_function("verify_recursive_per_instance", |b| {
        b.iter(|| verify_ownership(&RecursiveOracle(&outcome.model), &claim))
    });
    group.bench_function("verify_compiled_batch", |b| {
        b.iter(|| verify_ownership(&compiled, &claim))
    });
    group.bench_function("verify_forest_autocompiled", |b| {
        b.iter(|| verify_ownership(&outcome.model, &claim))
    });

    // Multi-claim throughput: the service's amortized-compile, concurrent
    // docket against resolving the same docket one `verify_ownership` call
    // at a time (recompiling the forest per claim).
    const DOCKET: usize = 32;
    let disputes: Vec<Dispute> = (0..DOCKET).map(|_| Dispute::new("m", claim.clone())).collect();
    let service = DisputeService::new();
    service.register("m", &outcome.model);
    group.bench_function("verify_32_claims_recompile_each", |b| {
        b.iter(|| {
            disputes
                .iter()
                .map(|dispute| verify_ownership(&outcome.model, &dispute.claim))
                .filter(|report| report.verified)
                .count()
        })
    });
    group.bench_function("service_resolve_32_claims", |b| {
        b.iter(|| {
            service
                .resolve_many(&disputes)
                .into_iter()
                .filter(|verdict| verdict.as_ref().is_ok_and(|r| r.verified))
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_batch_prediction, bench_verification_throughput);
criterion_main!(benches);
