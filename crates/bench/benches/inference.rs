//! Benchmarks of batch inference: the recursive pointer-tree walk versus
//! the compiled structure-of-arrays path, plus end-to-end verification
//! throughput over both. The committed baseline lives in
//! `BENCH_inference.json` at the repository root.
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use wdte_bench::{serving_image, small_tabular};
use wdte_core::{
    verify_ownership, Dispute, DisputeService, ModelOracle, OwnershipClaim, Signature, WatermarkConfig,
    Watermarker,
};
use wdte_data::Label;
use wdte_server::{DisputeClient, JudgeServer, ServerConfig};
use wdte_trees::{CompiledForest, ForestParams, Kernel, RandomForest};

/// Oracle that walks the pointer trees one instance at a time — the
/// pre-compilation behaviour, kept as the verification baseline.
struct RecursiveOracle<'a>(&'a RandomForest);

impl ModelOracle for RecursiveOracle<'_> {
    fn num_trees(&self) -> usize {
        self.0.num_trees()
    }

    fn query(&self, instance: &[f64]) -> Vec<Label> {
        self.0.predict_all(instance)
    }
}

fn bench_batch_prediction(c: &mut Criterion) {
    let image = serving_image();
    let tabular = small_tabular();
    let mut rng = SmallRng::seed_from_u64(17);
    let image_forest = RandomForest::fit(&image, &ForestParams::with_trees(16), &mut rng);
    let tabular_forest = RandomForest::fit(&tabular, &ForestParams::with_trees(16), &mut rng);
    let image_compiled = CompiledForest::compile(&image_forest);
    let tabular_compiled = CompiledForest::compile(&tabular_forest);

    let mut group = c.benchmark_group("inference");
    group.sample_size(20);
    group.bench_function("image_784_recursive_batch", |b| {
        b.iter(|| image_forest.predict_dataset(&image))
    });
    group.bench_function("image_784_compiled_batch", |b| {
        b.iter(|| image_compiled.predict_batch(image.features()))
    });
    group.bench_function("image_784_compile", |b| {
        b.iter(|| CompiledForest::compile(&image_forest))
    });
    group.bench_function("tabular_recursive_batch", |b| {
        b.iter(|| tabular_forest.predict_dataset(&tabular))
    });
    group.bench_function("tabular_compiled_batch", |b| {
        b.iter(|| tabular_compiled.predict_batch(tabular.features()))
    });
    group.bench_function("tabular_compiled_predict_all_batch", |b| {
        b.iter(|| tabular_compiled.predict_all_batch(tabular.features()))
    });
    // One row per pluggable kernel on each fixture. `auto` pays its
    // microprobe once (outside the timed iterations, on the first call
    // below) and then reruns whatever it picked, so its row should track
    // the best fixed-kernel row.
    for kernel in Kernel::ALL {
        group.bench_function(format!("image_784_kernel_{kernel}"), |b| {
            b.iter(|| image_compiled.predict_all_batch_with(image.features(), kernel))
        });
        group.bench_function(format!("tabular_kernel_{kernel}"), |b| {
            b.iter(|| tabular_compiled.predict_all_batch_with(tabular.features(), kernel))
        });
    }
    // The sharded entry point on a batch no larger than one shard: must
    // cost the same as the serial call above, not a pool round-trip.
    group.bench_function("tabular_par_small_batch_serial_fallback", |b| {
        b.iter(|| tabular_compiled.par_predict_all_batch(tabular.features(), usize::MAX))
    });
    group.finish();
}

fn bench_verification_throughput(c: &mut Criterion) {
    let dataset = small_tabular();
    let mut rng = SmallRng::seed_from_u64(18);
    let (train, test) = dataset.split_stratified(0.8, &mut rng);
    let signature = Signature::random(12, 0.5, &mut rng);
    let config = WatermarkConfig {
        num_trees: 12,
        ..WatermarkConfig::fast()
    };
    let outcome = Watermarker::new(config).embed(&train, &signature, &mut rng).unwrap();
    let claim = OwnershipClaim::new(signature, outcome.trigger_set.clone(), test);
    let compiled = CompiledForest::compile(&outcome.model);

    let mut group = c.benchmark_group("verification_throughput");
    group.sample_size(20);
    group.bench_function("verify_recursive_per_instance", |b| {
        b.iter(|| verify_ownership(&RecursiveOracle(&outcome.model), &claim))
    });
    group.bench_function("verify_compiled_batch", |b| {
        b.iter(|| verify_ownership(&compiled, &claim))
    });
    group.bench_function("verify_forest_autocompiled", |b| {
        b.iter(|| verify_ownership(&outcome.model, &claim))
    });

    // Multi-claim throughput: the service's amortized-compile, concurrent
    // docket against resolving the same docket one `verify_ownership` call
    // at a time (recompiling the forest per claim).
    const DOCKET: usize = 32;
    let disputes: Vec<Dispute> = (0..DOCKET).map(|_| Dispute::new("m", claim.clone())).collect();
    let service = DisputeService::builder().build().unwrap();
    service.register("m", &outcome.model);
    group.bench_function("verify_32_claims_recompile_each", |b| {
        b.iter(|| {
            disputes
                .iter()
                .map(|dispute| verify_ownership(&outcome.model, &dispute.claim))
                .filter(|report| report.verified)
                .count()
        })
    });
    group.bench_function("service_resolve_32_claims", |b| {
        b.iter(|| {
            service
                .resolve_many(&disputes)
                .into_iter()
                .filter(|verdict| verdict.as_ref().is_ok_and(|r| r.verified))
                .count()
        })
    });

    // The same service behind the TCP front-end: a judge on loopback, a
    // 64-claim docket per request. The delta against the in-process numbers
    // above is the whole wire cost (framing, serde, socket hops).
    let served = Arc::new(DisputeService::builder().build().unwrap());
    served.register("m", &outcome.model);
    let server = JudgeServer::bind("127.0.0.1:0", Arc::clone(&served), ServerConfig::default())
        .expect("loopback bind succeeds")
        .spawn();
    let wire_docket: Vec<Dispute> = (0..64).map(|_| Dispute::new("m", claim.clone())).collect();
    let mut client = DisputeClient::connect(server.addr()).expect("bench client connects");
    group.bench_function("served_loopback_64_claim_docket", |b| {
        b.iter(|| {
            client
                .resolve_docket(&wire_docket)
                .expect("docket resolves")
                .into_iter()
                .filter(|verdict| verdict.as_ref().is_ok_and(|r| r.verified))
                .count()
        })
    });

    // Open-loop load: four independent connections fire 16-claim dockets
    // concurrently, each submitting its next docket the moment the
    // previous answer lands — the judge's accept loop, connection threads
    // and the shared registry all under simultaneous fire.
    let open_docket: Vec<Dispute> = (0..16).map(|_| Dispute::new("m", claim.clone())).collect();
    group.bench_function("served_4_connections_16_claims_each", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let addr = server.addr();
                        let docket = &open_docket;
                        scope.spawn(move || {
                            let mut client =
                                DisputeClient::connect(addr).expect("bench client connects");
                            client
                                .resolve_docket(docket)
                                .expect("docket resolves")
                                .into_iter()
                                .filter(|verdict| verdict.as_ref().is_ok_and(|r| r.verified))
                                .count()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("no panics")).sum::<usize>()
            })
        })
    });
    drop(client);
    server.shutdown().expect("clean shutdown");
    group.finish();
}

criterion_group!(benches, bench_batch_prediction, bench_verification_throughput);
criterion_main!(benches);
