//! Benchmarks of random-forest training (the substrate retrained repeatedly
//! by Algorithm 1's weighting loop).
//!
//! Three split strategies are compared on the same fixtures:
//! `exact` (presorted, the default), `naive` (per-node sort — the
//! pre-refactor algorithm, kept as the baseline) and `histogram`
//! (quantile bins). The `algorithm1_*` benches model the watermark
//! embedding loop: repeated `fit_weighted` calls on one dataset with only
//! the weights changing, all rounds sharing one presort cache.
//!
//! A snapshot of this group's output is committed as
//! `BENCH_forest_training.json` at the repository root.
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte_bench::{small_image, small_tabular};
use wdte_trees::{ForestParams, RandomForest, SplitStrategy, TreeParams};

fn image_params(strategy: SplitStrategy) -> ForestParams {
    ForestParams {
        num_trees: 10,
        tree: TreeParams {
            max_depth: Some(10),
            strategy,
            ..TreeParams::default()
        },
        ..ForestParams::default()
    }
}

fn bench_training(c: &mut Criterion) {
    let tabular = small_tabular();
    let image = small_image();
    let mut group = c.benchmark_group("forest_training");
    group.sample_size(10);
    for &trees in &[10usize, 30] {
        group.bench_function(format!("tabular_{trees}_trees"), |b| {
            b.iter_batched(
                || SmallRng::seed_from_u64(1),
                |mut rng| RandomForest::fit(&tabular, &ForestParams::with_trees(trees), &mut rng),
                BatchSize::SmallInput,
            )
        });
    }
    group.bench_function("tabular_10_trees_naive", |b| {
        b.iter_batched(
            || SmallRng::seed_from_u64(1),
            |mut rng| {
                let params = ForestParams {
                    num_trees: 10,
                    tree: TreeParams {
                        strategy: SplitStrategy::ExactNaive,
                        ..TreeParams::default()
                    },
                    ..ForestParams::default()
                };
                RandomForest::fit(&tabular, &params, &mut rng)
            },
            BatchSize::SmallInput,
        )
    });
    // The headline comparison: presorted exact vs the naive per-node-sort
    // baseline vs histogram bins on the wide (784-feature) image workload.
    // The presort/binning caches are warmed up front so every strategy is
    // measured in its steady state — exactly how Algorithm 1 sees them.
    let _ = image.presort();
    let _ = image.binning(255);
    group.bench_function("image_784_features_10_trees", |b| {
        b.iter_batched(
            || SmallRng::seed_from_u64(2),
            |mut rng| RandomForest::fit(&image, &image_params(SplitStrategy::Exact), &mut rng),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("image_784_features_10_trees_naive", |b| {
        b.iter_batched(
            || SmallRng::seed_from_u64(2),
            |mut rng| RandomForest::fit(&image, &image_params(SplitStrategy::ExactNaive), &mut rng),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("image_784_features_10_trees_histogram", |b| {
        b.iter_batched(
            || SmallRng::seed_from_u64(2),
            |mut rng| {
                RandomForest::fit(
                    &image,
                    &image_params(SplitStrategy::Histogram { bins: 255 }),
                    &mut rng,
                )
            },
            BatchSize::SmallInput,
        )
    });
    // Algorithm-1-shaped: five retraining rounds with bumped trigger
    // weights on one shared dataset. With the presort cached at the
    // dataset level the per-round cost is pure tree growth; there is no
    // per-round sort.
    group.bench_function("algorithm1_5_rounds_image", |b| {
        b.iter_batched(
            || SmallRng::seed_from_u64(3),
            |mut rng| {
                let mut weights = vec![1.0; image.len()];
                let params = image_params(SplitStrategy::Exact);
                let mut forests = Vec::with_capacity(5);
                for round in 0..5 {
                    for weight in weights.iter_mut().take(8) {
                        *weight *= 3.0; // the trigger-forcing weight bump
                    }
                    let _ = round;
                    forests.push(RandomForest::fit_weighted(&image, &weights, &params, &mut rng));
                }
                forests
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
