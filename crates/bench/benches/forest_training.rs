//! Benchmarks of random-forest training (the substrate retrained repeatedly
//! by Algorithm 1's weighting loop).
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte_bench::{small_image, small_tabular};
use wdte_trees::{ForestParams, RandomForest, TreeParams};

fn bench_training(c: &mut Criterion) {
    let tabular = small_tabular();
    let image = small_image();
    let mut group = c.benchmark_group("forest_training");
    group.sample_size(10);
    for &trees in &[10usize, 30] {
        group.bench_function(format!("tabular_{trees}_trees"), |b| {
            b.iter_batched(
                || SmallRng::seed_from_u64(1),
                |mut rng| RandomForest::fit(&tabular, &ForestParams::with_trees(trees), &mut rng),
                BatchSize::SmallInput,
            )
        });
    }
    group.bench_function("image_784_features_10_trees", |b| {
        b.iter_batched(
            || SmallRng::seed_from_u64(2),
            |mut rng| {
                let params = ForestParams {
                    num_trees: 10,
                    tree: TreeParams { max_depth: Some(10), ..TreeParams::default() },
                    ..ForestParams::default()
                };
                RandomForest::fit(&image, &params, &mut rng)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
