//! Offline API-compatible subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! vendored under `crates/compat/` because the build environment has no
//! registry access.
//!
//! Implements the surface the `wdte-bench` suite uses: `benchmark_group`,
//! `sample_size`, `bench_function`, `Bencher::iter` / `iter_batched`, and
//! the `criterion_group!` / `criterion_main!` macros. Each benchmark is
//! warmed up, then timed for the configured number of samples; the
//! min/median/mean of the per-sample time are printed to stdout and
//! appended to `target/bench-results/<group>.json` so runs can be recorded
//! and compared (the repository keeps committed baselines produced from
//! this output).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque black box preventing the optimizer from deleting a computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortizes setup cost; all variants behave the same in
/// this shim (setup is always excluded from timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine input: many iterations per batch in real criterion.
    SmallInput,
    /// Large routine input: one iteration per batch in real criterion.
    LargeInput,
    /// Exactly one iteration per batch.
    PerIteration,
}

/// Timing statistics of one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Sampled {
    /// Fastest observed sample.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// Mean sample.
    pub mean: Duration,
    /// Number of samples taken.
    pub samples: usize,
}

/// Per-iteration timing callback target.
pub struct Bencher {
    sample_size: usize,
    result: Option<Sampled>,
}

impl Bencher {
    /// Times `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run_samples(|| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed()
        });
    }

    /// Times `routine` on fresh input from `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run_samples(|| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        });
    }

    fn run_samples<F: FnMut() -> Duration>(&mut self, mut one_sample: F) {
        // Warm-up: one untimed run (fills caches, triggers lazy init).
        let _ = one_sample();
        let mut times: Vec<Duration> = (0..self.sample_size.max(1)).map(|_| one_sample()).collect();
        times.sort_unstable();
        let total: Duration = times.iter().sum();
        self.result = Some(Sampled {
            min: times[0],
            median: times[times.len() / 2],
            mean: total / times.len() as u32,
            samples: times.len(),
        });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    results: Vec<(String, Sampled)>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Runs one benchmark and records its timing.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        let sampled = bencher.result.expect("benchmark closure must call iter/iter_batched");
        println!(
            "{}/{}: min {:?}  median {:?}  mean {:?}  ({} samples)",
            self.name, id, sampled.min, sampled.median, sampled.mean, sampled.samples
        );
        self.results.push((id, sampled));
        self
    }

    /// Finishes the group, writing its JSON report.
    pub fn finish(self) {
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"group\": \"{}\",\n", self.name));
        json.push_str("  \"benchmarks\": {\n");
        for (i, (id, s)) in self.results.iter().enumerate() {
            json.push_str(&format!(
                "    \"{}\": {{ \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}, \"samples\": {} }}{}\n",
                id,
                s.min.as_nanos(),
                s.median.as_nanos(),
                s.mean.as_nanos(),
                s.samples,
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        json.push_str("  }\n}\n");
        let dir = std::path::Path::new("target").join("bench-results");
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(format!("{}.json", self.name));
            if std::fs::write(&path, &json).is_ok() {
                println!("[bench report written to {}]", path.display());
            }
        }
        self.criterion.finished_groups += 1;
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    finished_groups: usize,
}

impl Criterion {
    /// Mirrors `Criterion::configure_from_args`; CLI filtering is not
    /// supported by the shim, so this is the identity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            results: Vec::new(),
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group("standalone");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_records() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim_self_test");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 100],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(group.results.len(), 2);
        assert!(group.results.iter().all(|(_, s)| s.samples == 3));
        group.finish();
        assert_eq!(criterion.finished_groups, 1);
    }
}
