//! Offline replacement for serde's `#[derive(Serialize, Deserialize)]`,
//! companion to the vendored `serde` shim in `crates/compat/serde`.
//!
//! The macros parse the annotated item directly from the proc-macro token
//! stream (no `syn`/`quote`, which are unavailable offline) and emit
//! implementations of the shim's `Serialize`/`Deserialize` traits, which
//! route through the self-describing `serde::Value` data model.
//!
//! Supported shapes — exactly what this workspace derives:
//! named-field structs and enums with unit, tuple and struct variants,
//! all without generic parameters. Field and variant attributes
//! (`#[serde(...)]`) are not supported and doc comments are ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct FieldDef {
    name: String,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<FieldDef>),
}

#[derive(Debug)]
struct VariantDef {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum ItemDef {
    Struct { name: String, fields: Vec<FieldDef> },
    Enum { name: String, variants: Vec<VariantDef> },
}

/// Derives the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        ItemDef::Struct { name, fields } => serialize_struct(name, fields),
        ItemDef::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        ItemDef::Struct { name, fields } => deserialize_struct(name, fields),
        ItemDef::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> ItemDef {
    let mut tokens = input.into_iter().peekable();
    skip_attributes_and_visibility(&mut tokens);

    let keyword = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                break group.stream();
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("generic type `{name}` is not supported by the offline serde derive")
            }
            Some(_) => continue,
            None => panic!("missing body for `{name}`"),
        }
    };

    match keyword.as_str() {
        "struct" => ItemDef::Struct {
            name,
            fields: parse_fields(body),
        },
        "enum" => ItemDef::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("cannot derive serde impls for `{other}` items"),
    }
}

fn skip_attributes_and_visibility(tokens: &mut core::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // The bracketed attribute body.
                tokens.next();
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(group)) = tokens.peek() {
                    if group.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` named-field lists, returning field names in
/// declaration order. Commas inside `<...>` or any bracketed group do not
/// terminate a field.
fn parse_fields(body: TokenStream) -> Vec<FieldDef> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attributes_and_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&mut tokens);
        fields.push(FieldDef { name });
    }
    fields
}

/// Skips one type expression, stopping after the separating comma (or at
/// the end of the stream).
fn skip_type(tokens: &mut core::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0i32;
    for token in tokens.by_ref() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
    }
}

fn parse_variants(body: TokenStream) -> Vec<VariantDef> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attributes_and_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            other => panic!("expected variant name, found {other:?}"),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                let inner = group.stream();
                tokens.next();
                VariantShape::Struct(parse_fields(inner))
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(group.stream());
                tokens.next();
                VariantShape::Tuple(count)
            }
            _ => VariantShape::Unit,
        };
        // Consume the separating comma, if any.
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == ',' {
                tokens.next();
            }
        }
        variants.push(VariantDef { name, shape });
    }
    variants
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut commas = 0usize;
    let mut any_token = false;
    let mut trailing_comma = false;
    for token in body {
        any_token = true;
        trailing_comma = false;
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if !any_token {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn serialize_struct(name: &str, fields: &[FieldDef]) -> String {
    let mut pushes = String::new();
    for field in fields {
        pushes.push_str(&format!(
            "__entries.push((::std::string::String::from(\"{0}\"), \
             ::serde::Serialize::to_value(&self.{0})));\n",
            field.name
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         let mut __entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n\
         {pushes}\
         ::serde::Value::Map(__entries)\n\
         }}\n}}\n"
    )
}

fn deserialize_struct(name: &str, fields: &[FieldDef]) -> String {
    let mut inits = String::new();
    for field in fields {
        inits.push_str(&format!(
            "{0}: ::serde::Deserialize::from_value(::serde::map_get(__entries, \"{0}\")?)?,\n",
            field.name
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) \
         -> ::core::result::Result<Self, ::serde::DeError> {{\n\
         let __entries = __value.as_map().ok_or_else(|| \
         ::serde::DeError::expected(\"map\", \"{name}\"))?;\n\
         ::core::result::Result::Ok({name} {{\n{inits}}})\n\
         }}\n}}\n"
    )
}

fn serialize_enum(name: &str, variants: &[VariantDef]) -> String {
    let mut arms = String::new();
    for variant in variants {
        let v = &variant.name;
        match &variant.shape {
            VariantShape::Unit => {
                arms.push_str(&format!(
                    "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),\n"
                ));
            }
            VariantShape::Tuple(1) => {
                arms.push_str(&format!(
                    "{name}::{v}(__f0) => {{\n\
                     let mut __outer: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n\
                     __outer.push((::std::string::String::from(\"{v}\"), \
                     ::serde::Serialize::to_value(__f0)));\n\
                     ::serde::Value::Map(__outer)\n}}\n"
                ));
            }
            VariantShape::Tuple(count) => {
                let binders: Vec<String> = (0..*count).map(|i| format!("__f{i}")).collect();
                let mut pushes = String::new();
                for binder in &binders {
                    pushes.push_str(&format!(
                        "__items.push(::serde::Serialize::to_value({binder}));\n"
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{v}({binder_list}) => {{\n\
                     let mut __items: ::std::vec::Vec<::serde::Value> = ::std::vec::Vec::new();\n\
                     {pushes}\
                     let mut __outer: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n\
                     __outer.push((::std::string::String::from(\"{v}\"), \
                     ::serde::Value::Seq(__items)));\n\
                     ::serde::Value::Map(__outer)\n}}\n",
                    binder_list = binders.join(", "),
                ));
            }
            VariantShape::Struct(fields) => {
                let binder_list: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let mut pushes = String::new();
                for field in fields {
                    pushes.push_str(&format!(
                        "__fields.push((::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_value({0})));\n",
                        field.name
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{v} {{ {binders} }} => {{\n\
                     let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n\
                     {pushes}\
                     let mut __outer: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n\
                     __outer.push((::std::string::String::from(\"{v}\"), \
                     ::serde::Value::Map(__fields)));\n\
                     ::serde::Value::Map(__outer)\n}}\n",
                    binders = binder_list.join(", "),
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         match self {{\n{arms}}}\n\
         }}\n}}\n"
    )
}

fn deserialize_enum(name: &str, variants: &[VariantDef]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for variant in variants {
        let v = &variant.name;
        match &variant.shape {
            VariantShape::Unit => {
                unit_arms.push_str(&format!(
                    "\"{v}\" => return ::core::result::Result::Ok({name}::{v}),\n"
                ));
            }
            VariantShape::Tuple(1) => {
                tagged_arms.push_str(&format!(
                    "\"{v}\" => ::core::result::Result::Ok({name}::{v}(\
                     ::serde::Deserialize::from_value(__inner)?)),\n"
                ));
            }
            VariantShape::Tuple(count) => {
                let mut items = String::new();
                for i in 0..*count {
                    items.push_str(&format!("::serde::Deserialize::from_value(&__items[{i}])?,\n"));
                }
                tagged_arms.push_str(&format!(
                    "\"{v}\" => {{\n\
                     let __items = __inner.as_seq().ok_or_else(|| \
                     ::serde::DeError::expected(\"array\", \"{name}::{v}\"))?;\n\
                     if __items.len() != {count} {{\n\
                     return ::core::result::Result::Err(::serde::DeError::new(\
                     \"wrong tuple arity for {name}::{v}\"));\n}}\n\
                     ::core::result::Result::Ok({name}::{v}({items}))\n}}\n"
                ));
            }
            VariantShape::Struct(fields) => {
                let mut inits = String::new();
                for field in fields {
                    inits.push_str(&format!(
                        "{0}: ::serde::Deserialize::from_value(\
                         ::serde::map_get(__fields, \"{0}\")?)?,\n",
                        field.name
                    ));
                }
                tagged_arms.push_str(&format!(
                    "\"{v}\" => {{\n\
                     let __fields = __inner.as_map().ok_or_else(|| \
                     ::serde::DeError::expected(\"map\", \"{name}::{v}\"))?;\n\
                     ::core::result::Result::Ok({name}::{v} {{\n{inits}}})\n}}\n"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) \
         -> ::core::result::Result<Self, ::serde::DeError> {{\n\
         if let ::core::option::Option::Some(__name) = __value.as_str() {{\n\
         match __name {{\n\
         {unit_arms}\
         __other => return ::core::result::Result::Err(::serde::DeError::new(\
         ::std::format!(\"unknown unit variant `{{__other}}` for {name}\"))),\n\
         }}\n}}\n\
         let __entries = __value.as_map().ok_or_else(|| \
         ::serde::DeError::expected(\"string or single-key map\", \"{name}\"))?;\n\
         if __entries.len() != 1 {{\n\
         return ::core::result::Result::Err(::serde::DeError::expected(\
         \"single-key map\", \"{name}\"));\n}}\n\
         let (__key, __inner) = &__entries[0];\n\
         match __key.as_str() {{\n\
         {tagged_arms}\
         __other => ::core::result::Result::Err(::serde::DeError::new(\
         ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
         }}\n\
         }}\n}}\n"
    )
}
