//! Offline API-compatible subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate, vendored under
//! `crates/compat/` because the build environment has no registry access.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! range strategies over integers and floats, [`collection::vec`],
//! `any::<bool>()`, [`Just`], [`prop_oneof!`], and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics
//! immediately with the rendered inputs, and cases are generated from a
//! deterministic per-test seed so failures always reproduce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// RNG driving value generation for one test run.
pub type TestRng = SmallRng;

/// Runner configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases executed per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value: core::fmt::Debug;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<T: core::fmt::Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Strategy producing always the same value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + core::fmt::Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.gen::<u32>() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.gen()
    }
}

/// Strategy for [`Arbitrary`] types; created by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// Strategy choosing uniformly between boxed alternatives; built by
/// [`prop_oneof!`].
pub struct OneOf<T> {
    /// The alternatives to choose between.
    pub options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: core::fmt::Debug> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "prop_oneof! needs at least one option");
        let index = rng.gen_range(0..self.options.len());
        self.options[index].generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Number-of-elements specification: either an exact length or a
    /// half-open range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            Self {
                lo: range.start,
                hi: range.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: core::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = range.into_inner();
            Self { lo, hi: hi + 1 }
        }
    }

    /// Strategy generating vectors of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Derives a deterministic per-test seed from the test path.
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the name, mixed with the case number.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Creates the RNG for one test case.
pub fn rng_for(test_name: &str, case: u32) -> TestRng {
    TestRng::seed_from_u64(seed_for(test_name, case))
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assertion macro; panics (failing the case) when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assertion macro for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::OneOf { options }
    }};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let __test_path = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..config.cases {
                    let mut __rng = $crate::rng_for(__test_path, __case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_strategies_generate_in_bounds() {
        let mut rng = crate::rng_for("unit", 0);
        for _ in 0..100 {
            let x = Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&x));
            let v = Strategy::generate(&crate::collection::vec(0.0f64..1.0, 2..5), &mut rng);
            assert!(v.len() >= 2 && v.len() < 5);
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn one_of_covers_all_options() {
        let strategy = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = crate::rng_for("oneof", 0);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = Strategy::generate(&strategy, &mut rng);
            seen[(v - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn seeds_are_deterministic_per_test_and_case() {
        assert_eq!(crate::seed_for("a::b", 3), crate::seed_for("a::b", 3));
        assert_ne!(crate::seed_for("a::b", 3), crate::seed_for("a::b", 4));
        assert_ne!(crate::seed_for("a::b", 3), crate::seed_for("a::c", 3));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0u64..100, flips in crate::collection::vec(any::<bool>(), 4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(flips.len(), 4);
        }
    }
}
