//! Offline API-compatible subset of the
//! [`rand_distr`](https://crates.io/crates/rand_distr) crate, vendored under
//! `crates/compat/` because the build environment has no registry access.
//!
//! Provides the [`Distribution`] trait and a Box–Muller [`Normal`]
//! distribution — the only pieces the workspace uses (Gaussian noise in the
//! synthetic dataset generators).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{Rng, StandardSample};

/// Types that can generate samples of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one sample from `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned when constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or NaN.
    BadVariance,
    /// The mean was NaN.
    MeanTooSmall,
}

impl core::fmt::Display for NormalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
            NormalError::MeanTooSmall => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// Normal (Gaussian) distribution `N(mean, std_dev^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution; fails for a negative or NaN standard
    /// deviation.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN-aware on purpose
        if !(std_dev >= 0.0) || !std_dev.is_finite() {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller transform. One of the two generated variates is
        // discarded to keep the distribution stateless (`&self`).
        let mut u1 = f64::standard_sample(rng);
        while u1 <= f64::MIN_POSITIVE {
            u1 = f64::standard_sample(rng);
        }
        let u2 = f64::standard_sample(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn sample_moments_are_roughly_correct() {
        let normal = Normal::new(3.0, 2.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn zero_std_collapses_to_the_mean() {
        let normal = Normal::new(1.5, 0.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(normal.sample(&mut rng), 1.5);
        }
    }
}
