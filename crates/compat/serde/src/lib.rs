//! Offline API-compatible subset of the
//! [`serde`](https://crates.io/crates/serde) crate, vendored under
//! `crates/compat/` because the build environment has no registry access.
//!
//! Instead of serde's generic serializer/deserializer architecture, this
//! shim routes everything through one self-describing [`Value`] tree (the
//! JSON data model). [`Serialize`] renders a type into a [`Value`],
//! [`Deserialize`] rebuilds it, and `serde_json` (also vendored) converts
//! between [`Value`] and JSON text. The `#[derive(Serialize, Deserialize)]`
//! macros are provided by the companion `serde_derive` shim and re-exported
//! here exactly like the real crate does with its `derive` feature.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized representation (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (serialized without a decimal point).
    U64(u64),
    /// Signed integer (serialized without a decimal point).
    I64(i64),
    /// Floating-point number. Non-finite values serialize as `null`.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as a map, if this value is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow as a sequence, if this value is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow as a string, if this value is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view accepting any of the number variants.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Integer view accepting the integral number variants (and integral
    /// floats, which JSON cannot distinguish).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Signed integer view accepting the integral number variants.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::I64(v) => Some(v),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Creates a "expected X while deserializing Y" error.
    pub fn expected(what: &str, context: &str) -> Self {
        Self::new(format!("expected {what} while deserializing {context}"))
    }
}

impl core::fmt::Display for DeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Looks up a required field in a map value; used by generated code.
pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> Result<&'a Value, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{key}`")))
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` into the serde data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the serde data model.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value.as_u64().ok_or_else(|| DeError::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(raw).map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value.as_i64().ok_or_else(|| DeError::expected("integer", stringify!($t)))?;
                <$t>::try_from(raw).map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);
impl_serde_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_f64().ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| DeError::expected("number", "f32"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_seq()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $index:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$index.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value.as_seq().ok_or_else(|| DeError::expected("array", "tuple"))?;
                let expected = [$($index,)+].len();
                if items.len() != expected {
                    return Err(DeError::new(format!(
                        "tuple length mismatch: expected {expected}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$index])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        assert_eq!(Vec::<(f64, f64)>::from_value(&v.to_value()).unwrap(), v);
        let opt: Option<usize> = None;
        assert_eq!(Option::<usize>::from_value(&opt.to_value()).unwrap(), None);
        assert_eq!(
            Option::<usize>::from_value(&Some(3usize).to_value()).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn map_get_reports_missing_fields() {
        let entries = vec![("a".to_string(), Value::U64(1))];
        assert!(map_get(&entries, "a").is_ok());
        assert!(map_get(&entries, "b").is_err());
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(usize::from_value(&Value::I64(-1)).is_err());
    }
}
