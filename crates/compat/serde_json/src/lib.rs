//! Offline API-compatible subset of the
//! [`serde_json`](https://crates.io/crates/serde_json) crate, vendored under
//! `crates/compat/` because the build environment has no registry access.
//!
//! Converts between JSON text and the vendored serde shim's `Value` data
//! model. Floating-point numbers are written with Rust's shortest
//! round-tripping representation, so `serialize → deserialize` is lossless
//! for every finite `f64`. Infinities are written as `±1e999` — valid JSON
//! that overflows back to `±inf` on parse — so values like unbounded
//! leaf-region bounds survive round-trips; `NaN` is written as `null` and
//! read back as `NaN` (unlike real serde_json, which loses all non-finite
//! values to `null`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(err: DeError) -> Self {
        Error::new(err.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to a human-readable, indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_str(text)?;
    Ok(T::from_value(&value)?)
}

/// Parses a JSON string into the generic [`Value`] model.
pub fn parse_value_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_whitespace(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

/// Maximum container nesting accepted by the parser. Inputs nesting deeper
/// are rejected with an error instead of recursing until the stack
/// overflows (real serde_json enforces the same guard as
/// `recursion_limit`, default 128).
const MAX_DEPTH: usize = 128;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if v.is_finite() {
                // `{:?}` is Rust's shortest round-tripping float formatting.
                out.push_str(&format!("{v:?}"));
            } else if *v == f64::INFINITY {
                // Syntactically valid JSON that overflows back to +inf on
                // parse, so infinite values (e.g. unbounded leaf-region
                // bounds) survive a round-trip.
                out.push_str("1e999");
            } else if *v == f64::NEG_INFINITY {
                out.push_str("-1e999");
            } else {
                // NaN: `null`, which deserializes back to NaN (see the
                // serde shim's `as_f64`).
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_break(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn skip_whitespace(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, Error> {
    if depth > MAX_DEPTH {
        return Err(Error::new(format!("nesting deeper than {MAX_DEPTH} levels")));
    }
    skip_whitespace(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_whitespace(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_whitespace(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_whitespace(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_whitespace(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_whitespace(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::new(format!("expected `:` at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                entries.push((key, value));
                skip_whitespace(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let high = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&high) {
                            // Surrogate pair: expect `\uXXXX` low surrogate.
                            if bytes.get(*pos + 1) == Some(&b'\\') && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                let low = parse_hex4(bytes, *pos + 3)?;
                                *pos += 6;
                                0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                return Err(Error::new("unpaired surrogate"));
                            }
                        } else {
                            high
                        };
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(Error::new(format!("invalid escape at byte {pos}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so this is
                // always valid).
                let rest =
                    core::str::from_utf8(&bytes[*pos..]).map_err(|_| Error::new("invalid utf-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], start: usize) -> Result<u32, Error> {
    if start + 4 > bytes.len() {
        return Err(Error::new("truncated unicode escape"));
    }
    let text = core::str::from_utf8(&bytes[start..start + 4])
        .map_err(|_| Error::new("invalid unicode escape"))?;
    u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid unicode escape"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' | b'-' | b'+' => *pos += 1,
            b'.' | b'e' | b'E' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = core::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::new("invalid number"))?;
    if text.is_empty() {
        return Err(Error::new(format!("expected value at byte {start}")));
    }
    if !is_float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Value::I64(v));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| Error::new(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-9, 0.0] {
            let text = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&text).unwrap(), v, "text {text}");
        }
    }

    #[test]
    fn non_finite_floats_round_trip() {
        for v in [f64::INFINITY, f64::NEG_INFINITY] {
            let text = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&text).unwrap(), v, "text {text}");
        }
        let nan_text = to_string(&f64::NAN).unwrap();
        assert_eq!(nan_text, "null");
        assert!(from_str::<f64>(&nan_text).unwrap().is_nan());
    }

    #[test]
    fn integral_floats_survive_the_untyped_number_grammar() {
        // `1.0` serializes as "1.0" (float syntax) and must come back as f64.
        let v = vec![1.0f64, 2.0, 0.5];
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&text).unwrap(), v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\nbreak \"quoted\" back\\slash tab\t unicode \u{1F980}".to_string();
        let text = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), original);
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<usize>> = vec![Some(1), None, Some(3)];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<usize>>>(&text).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let v = vec![vec![1u32, 2], vec![3]];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&text).unwrap(), v);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<u32>("12 garbage").is_err());
    }

    #[test]
    fn deep_nesting_is_rejected_instead_of_overflowing_the_stack() {
        let hostile = "[".repeat(100_000);
        assert!(parse_value_str(&hostile).is_err());
        let mut balanced = "[".repeat(MAX_DEPTH + 10);
        balanced.push_str(&"]".repeat(MAX_DEPTH + 10));
        assert!(parse_value_str(&balanced).is_err());
        // Nesting inside the limit still parses.
        let mut fine = "[".repeat(MAX_DEPTH / 2);
        fine.push_str(&"]".repeat(MAX_DEPTH / 2));
        assert!(parse_value_str(&fine).is_ok());
    }
}
