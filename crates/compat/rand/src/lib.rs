//! Offline API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate, vendored under `crates/compat/` because the build environment has
//! no access to the crates.io registry.
//!
//! Only the surface the workspace actually uses is provided:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits with `gen`, `gen_range`
//!   and `gen_bool`;
//! * [`rngs::SmallRng`], implemented as xoshiro256++ (the same family the
//!   real `SmallRng` uses on 64-bit targets) seeded through SplitMix64;
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Streams are deterministic for a fixed seed, which is all the workspace
//! relies on; they are *not* bit-identical to the real `rand` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: a source of uniform `u64` words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the full value range by
/// [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that [`Rng::gen_range`] can sample from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws a value uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;

    /// Draws a value uniformly from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as i128 - low as i128) as u128;
                // Rejection-free modulo draw; the bias is at most span/2^64,
                // far below anything observable in this workspace.
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "gen_range called with empty inclusive range");
                // The +1 is computed in i128, so `high == T::MAX` stays
                // representable and can actually be drawn.
                let span = (high as i128 - low as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "gen_range called with empty range");
        let unit = f64::standard_sample(rng);
        let value = low + unit * (high - low);
        // Guard against rounding up to the excluded endpoint.
        if value >= high {
            low
        } else {
            value
        }
    }

    fn sample_range_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low <= high, "gen_range called with empty inclusive range");
        let unit = f64::standard_sample(rng);
        (low + unit * (high - low)).min(high)
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_range_inclusive(start, end, rng)
    }
}

/// User-facing random number generator interface.
pub trait Rng: RngCore {
    /// Draws a value of a type with a canonical uniform distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it into the full
    /// internal state with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for word in s.iter_mut() {
                *word = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait adding random operations to slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn fixed_seed_reproduces_the_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&y));
        }
    }

    #[test]
    fn inclusive_ranges_reach_both_endpoints_even_at_type_max() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut saw_max = false;
        let mut saw_min = false;
        for _ in 0..10_000 {
            let x = rng.gen_range(250u8..=255);
            assert!((250..=255).contains(&x));
            saw_max |= x == 255;
            saw_min |= x == 250;
        }
        assert!(saw_max, "inclusive upper bound at u8::MAX must be drawable");
        assert!(saw_min);
        // Degenerate single-value inclusive range.
        assert_eq!(rng.gen_range(7usize..=7), 7);
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_permutes_in_place() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut data: Vec<u32> = (0..100).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(data, sorted, "a 100-element shuffle should not be the identity");
    }

    #[test]
    fn unsized_rng_references_work() {
        fn takes_dyn<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            let _ = rng.gen_bool(0.5);
            let _ = rng.gen_range(0..10);
            rng.gen()
        }
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = takes_dyn(&mut rng);
    }
}
