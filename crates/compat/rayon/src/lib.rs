//! Offline API-compatible subset of the
//! [`rayon`](https://crates.io/crates/rayon) crate, vendored under
//! `crates/compat/` because the build environment has no registry access.
//!
//! Unlike the first-generation shim (which spawned scoped threads per
//! `collect` and *serialized* every nested parallel iterator inside its
//! workers), this is a real fixed-size **work-stealing thread pool**:
//!
//! * **Resident workers.** A process-global pool of worker threads is
//!   spawned lazily on first use, sized by
//!   [`ThreadPoolBuilder::build_global`] (the `serve_judge --workers` path)
//!   or `available_parallelism()` by default. Workers live for the process
//!   lifetime; building a [`ThreadPool`] handle spawns nothing.
//! * **Injector + per-worker deques.** Jobs submitted from outside the
//!   pool land on a shared injector queue; jobs submitted *by a worker*
//!   (a nested `par_iter` inside an outer parallel job) are pushed onto
//!   that worker's own deque. A worker pops its own deque LIFO (newest
//!   sub-job first, best cache locality), then takes from the injector,
//!   then steals the *oldest* job from a sibling's deque — so deep
//!   pipelines (connection → docket → batch shards → trees) spread across
//!   every core instead of serializing below the first fan-out level.
//! * **Caller participation.** A thread waiting for its jobs to finish
//!   executes queued jobs itself instead of blocking, which both recovers
//!   the waiting CPU and makes the pool deadlock-free by construction:
//!   any thread blocked on a nested fan-out is itself draining the
//!   queues, so forward progress never depends on a free worker (the
//!   pool even completes with zero workers).
//! * **Lazy binary splitting.** A fan-out starts as *one* job owning the
//!   whole item range. Between items the running job checks for demand —
//!   some thread parked idle on the pool's condvar — and only then splits
//!   off the far half of its remaining range as a new job for the idle
//!   thread to take. An uncontended fan-out therefore runs as a single
//!   straight loop with zero queue traffic, while a contended one keeps
//!   halving until either every thread is busy or the per-fan-out width
//!   limit is reached; task granularity adapts to the observed load
//!   instead of a fixed `width × 2` over-split.
//!
//! **Determinism contract** (unchanged from the first-generation shim,
//! and load-bearing for the verification semantics of the paper): results
//! are stitched back in input order whatever the steal schedule; callers
//! derive per-task RNG seeds *before* fanning out, so fixed-seed outputs
//! are bit-identical for any worker count; and `num_threads(1)` — via
//! [`ThreadPool::install`] or a global pool of one — runs every parallel
//! pipeline strictly serially on the calling thread. An `install`ed width
//! limit travels *with* the jobs it spawns: nested fan-outs obey the
//! innermost enclosing limit even when their job executes on a different
//! worker thread.
//!
//! A width limit > 1 bounds how many tasks each individual fan-out may
//! have outstanding at once (real rayon bounds concurrency by pool size
//! instead); `1` is the only strict limit, and the one the determinism
//! suite relies on: a width-1 fan-out never creates a job at all and runs
//! serially, in input order, on the calling thread.
//!
//! Synchronization is deliberately coarse — every queue lives under one
//! registry mutex — because the workspace's jobs are milliseconds of tree
//! training or batch inference, not nanosecond tasklets; the stealing
//! *policy* (own-LIFO / steal-FIFO) is what matters at this granularity,
//! not lock-free queue mechanics.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

// ---------------------------------------------------------------------------
// Type-erased jobs
// ---------------------------------------------------------------------------

/// A pointer to a [`StackJob`] living on some caller's stack, plus the
/// monomorphized function that executes it.
///
/// Safety contract: the caller that created the underlying `StackJob`
/// blocks (in [`TaskGroup::wait_until_done`]) until every job it pushed
/// has executed, so the pointee outlives every use of the pointer; the
/// queues hand each `JobRef` to exactly one executor, so the job runs
/// exactly once.
struct JobRef {
    data: *const (),
    execute: unsafe fn(*const ()),
}

// Safety: see the contract on `JobRef` — the pointee is kept alive by its
// blocked creator and consumed by exactly one thread.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Runs the job. Must be called exactly once, off the registry lock.
    ///
    /// # Safety
    /// The `StackJob` this points to must still be alive and not yet
    /// executed — guaranteed by the queue's exactly-once pop and the
    /// creator blocking until completion.
    unsafe fn run(self) {
        unsafe { (self.execute)(self.data) }
    }
}

/// A job allocated on the submitting thread's stack. The closure is taken
/// out exactly once by the executing thread.
struct StackJob<F> {
    func: UnsafeCell<Option<F>>,
}

impl<F: FnOnce() + Send> StackJob<F> {
    fn new(func: F) -> Self {
        Self {
            func: UnsafeCell::new(Some(func)),
        }
    }

    /// Type-erases this job for the queues.
    ///
    /// # Safety
    /// The returned `JobRef` must be executed (exactly once) before `self`
    /// is dropped; callers ensure this by waiting on the job's
    /// [`TaskGroup`] before returning.
    unsafe fn as_job_ref(&self) -> JobRef {
        unsafe fn execute_erased<F: FnOnce() + Send>(data: *const ()) {
            // Safety: `data` came from `as_job_ref` on a live, not-yet-run
            // StackJob<F>; the queue guarantees we are its only executor,
            // so the UnsafeCell access is unaliased.
            let func = unsafe { (*(*data.cast::<StackJob<F>>()).func.get()).take() };
            (func.expect("a queued job is executed exactly once"))();
        }
        JobRef {
            data: std::ptr::from_ref(self).cast(),
            execute: execute_erased::<F>,
        }
    }
}

// ---------------------------------------------------------------------------
// The registry: queues + resident workers
// ---------------------------------------------------------------------------

/// All job queues, guarded by one mutex (see the module docs for why the
/// coarse lock is the right trade at this job granularity).
struct Queues {
    /// Jobs submitted from threads outside the pool.
    injector: VecDeque<JobRef>,
    /// One deque per resident worker for its own nested sub-jobs.
    deques: Vec<VecDeque<JobRef>>,
}

impl Queues {
    /// Next job for the given executor: own deque LIFO, then the injector
    /// FIFO, then stealing the oldest job of a sibling (scan starting past
    /// our own slot so steal pressure spreads instead of piling onto
    /// worker 0).
    fn find_job(&mut self, me: Option<usize>) -> Option<JobRef> {
        if let Some(index) = me {
            if let Some(job) = self.deques[index].pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.pop_front() {
            return Some(job);
        }
        let workers = self.deques.len();
        let first = me.map_or(0, |index| index + 1);
        (0..workers).find_map(|offset| self.deques[(first + offset) % workers].pop_front())
    }
}

/// The process-global pool: queues, the wakeup condvar and the resident
/// worker count.
struct Registry {
    sync: Mutex<Queues>,
    work: Condvar,
    workers: usize,
    /// Threads currently parked on `work` with nothing to do — the demand
    /// signal lazy binary splitting reads: a running fan-out only splits
    /// off half its range when somebody is idle to take it.
    idle: AtomicUsize,
}

impl Registry {
    fn new(workers: usize) -> Self {
        Self {
            sync: Mutex::new(Queues {
                injector: VecDeque::new(),
                deques: (0..workers).map(|_| VecDeque::new()).collect(),
            }),
            work: Condvar::new(),
            workers,
            idle: AtomicUsize::new(0),
        }
    }

    /// Locks the queues, recovering from poisoning: a panic inside the
    /// lock's critical sections is impossible by inspection (queue ops
    /// only), but an abort-free best effort beats wedging the whole pool.
    fn lock(&self) -> MutexGuard<'_, Queues> {
        self.sync.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Pushes a batch of jobs: onto the submitting worker's own deque when
    /// called from inside the pool, onto the shared injector otherwise.
    fn inject(&self, jobs: impl Iterator<Item = JobRef>) {
        let me = WORKER_INDEX.get();
        let mut queues = self.lock();
        match me {
            Some(index) => queues.deques[index].extend(jobs),
            None => queues.injector.extend(jobs),
        }
        drop(queues);
        self.work.notify_all();
    }
}

thread_local! {
    /// Which resident worker this thread is, if any; routes nested job
    /// submission to the worker's own deque.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

thread_local! {
    /// Width limit installed by [`ThreadPool::install`] — or re-installed
    /// around a job whose *submitter* had a limit; `None` falls back to
    /// the global pool size.
    static THREAD_LIMIT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Global-pool configuration handshake between
/// [`ThreadPoolBuilder::build_global`] and the lazy first spawn.
struct GlobalConfig {
    requested: Option<usize>,
    started: bool,
}

static CONFIG: Mutex<GlobalConfig> = Mutex::new(GlobalConfig {
    requested: None,
    started: false,
});
static REGISTRY: OnceLock<Registry> = OnceLock::new();
static WORKERS_SPAWNED: OnceLock<()> = OnceLock::new();

fn default_parallelism() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// The registry, creating it (and spawning its resident workers) on first
/// use. Worker spawn failures are tolerated: callers participate in
/// draining the queues while they wait, so the pool completes its jobs
/// even with fewer (or zero) live workers.
fn global_registry() -> &'static Registry {
    let registry = REGISTRY.get_or_init(|| {
        let mut config = CONFIG.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        config.started = true;
        Registry::new(config.requested.unwrap_or_else(default_parallelism))
    });
    WORKERS_SPAWNED.get_or_init(|| {
        for index in 0..registry.workers {
            let _ = std::thread::Builder::new()
                .name(format!("wdte-pool-{index}"))
                .spawn(move || worker_loop(registry, index));
        }
    });
    registry
}

/// A resident worker: execute anything findable, sleep otherwise.
fn worker_loop(registry: &'static Registry, index: usize) {
    WORKER_INDEX.set(Some(index));
    let mut queues = registry.lock();
    loop {
        if let Some(job) = queues.find_job(Some(index)) {
            drop(queues);
            // Safety: popped from a queue, so we are the unique executor.
            unsafe { job.run() };
            queues = registry.lock();
        } else {
            registry.idle.fetch_add(1, Ordering::Relaxed);
            queues = registry.work.wait(queues).unwrap_or_else(std::sync::PoisonError::into_inner);
            registry.idle.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Worker count governing parallel pipelines on the *current* thread,
/// mirroring `rayon::current_num_threads`: the limit installed by the
/// innermost enclosing [`ThreadPool::install`] (which also travels with
/// jobs into the pool), else the global pool's size.
pub fn current_num_threads() -> usize {
    THREAD_LIMIT.get().unwrap_or_else(|| {
        if let Some(registry) = REGISTRY.get() {
            registry.workers
        } else {
            let config = CONFIG.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            config.requested.unwrap_or_else(default_parallelism)
        }
    })
}

/// Restores the previous thread-local width limit on drop; used both by
/// `install` and around job execution (jobs carry their submitter's
/// limit).
struct ScopedLimit(Option<usize>);

impl ScopedLimit {
    fn apply(limit: Option<usize>) -> Self {
        let previous = THREAD_LIMIT.get();
        THREAD_LIMIT.set(limit);
        ScopedLimit(previous)
    }
}

impl Drop for ScopedLimit {
    fn drop(&mut self) {
        THREAD_LIMIT.set(self.0);
    }
}

// ---------------------------------------------------------------------------
// Task groups: join-until-done with caller participation
// ---------------------------------------------------------------------------

/// Completion tracking for one fan-out: a countdown latch plus the first
/// captured panic. Lives on the submitting thread's stack; jobs hold
/// `&TaskGroup`.
struct TaskGroup<'r> {
    registry: &'r Registry,
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl<'r> TaskGroup<'r> {
    fn new(tasks: usize, registry: &'r Registry) -> Self {
        Self {
            registry,
            remaining: AtomicUsize::new(tasks),
            panic: Mutex::new(None),
        }
    }

    /// Registers one more task in the group, for jobs that split while
    /// running. Only sound while the caller itself holds an uncompleted
    /// task of this group — its own count keeps `remaining` above zero,
    /// so the waiter can never observe a spurious zero mid-increment.
    fn add_one(&self) {
        self.remaining.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a panic payload; the first one wins and is re-thrown on the
    /// submitting thread once every sibling task has finished.
    fn store_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        slot.get_or_insert(payload);
    }

    /// Marks one task complete. Taking the registry lock before notifying
    /// serializes against a waiter's check-then-wait, so the final wakeup
    /// can never be lost.
    fn complete_one(&self) {
        let _queues = self.registry.lock();
        self.remaining.fetch_sub(1, Ordering::Release);
        self.registry.work.notify_all();
    }

    fn done(&self) -> bool {
        // Acquire pairs with `complete_one`'s Release: once we observe 0,
        // every task's writes (result slots) are visible.
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// Blocks until every task in the group has run — by executing queued
    /// jobs (its own sub-jobs first if on a worker, anyone's otherwise)
    /// rather than sleeping, which is what makes nested fan-outs
    /// deadlock-free.
    fn wait_until_done(&self) {
        let me = WORKER_INDEX.get();
        let mut queues = self.registry.lock();
        loop {
            if self.done() {
                break;
            }
            if let Some(job) = queues.find_job(me) {
                drop(queues);
                // Safety: popped from a queue, so we are the unique
                // executor. The stolen job may belong to a *different*
                // group; its panics are caught and routed to that group.
                unsafe { job.run() };
                queues = self.registry.lock();
            } else {
                // A parked waiter will execute jobs once woken, so it
                // counts as splittable demand like an idle worker.
                self.registry.idle.fetch_add(1, Ordering::Relaxed);
                queues = self
                    .registry
                    .work
                    .wait(queues)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                self.registry.idle.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Re-throws the first captured panic, if any. Called after
    /// `wait_until_done`, so no sibling task still references the group.
    fn propagate_panic(&self) {
        let payload = {
            let mut slot = self.panic.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            slot.take()
        };
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

// ---------------------------------------------------------------------------
// The data-parallel surface: parallel_map and join
// ---------------------------------------------------------------------------

/// State one `parallel_map` fan-out shares between its (dynamically
/// split) range jobs, reached through raw pointers because the jobs are
/// type-erased. The creator blocks on the fan-out's [`TaskGroup`] until
/// every job has completed, so the pointees strictly outlive every job.
struct MapShared<F> {
    f: *const F,
    /// The submitter's width limit, re-installed around every job so
    /// nested fan-outs obey it wherever the job executes.
    limit: Option<usize>,
    /// Maximum outstanding tasks of this fan-out (`min(width, items)`).
    width: usize,
    /// Tasks of this fan-out currently queued or running.
    outstanding: AtomicUsize,
    registry: &'static Registry,
    group: *const TaskGroup<'static>,
}

impl<F> MapShared<F> {
    /// A job should split off half its remaining range only when someone
    /// is parked idle to take it and the fan-out's width cap leaves room.
    /// Plain relaxed loads: the signal is a heuristic — a missed beat
    /// delays a split by one item, it never affects correctness.
    fn should_split(&self) -> bool {
        self.outstanding.load(Ordering::Relaxed) < self.width
            && self.registry.idle.load(Ordering::Relaxed) > 0
    }
}

/// A contiguous sub-range of one `parallel_map` fan-out: the items still
/// to process and the result slot of the first of them. Heap-allocated
/// (unlike [`StackJob`]) because a splitting job hands its tail half to
/// the queues and moves on — there is no stack frame that could own it.
struct RangeJob<T, U, F> {
    items: VecDeque<T>,
    /// Result slot of `items[0]`; successive items fill successive slots.
    /// Sibling jobs hold disjoint slot ranges of one live `Vec`.
    slots: *mut Option<U>,
    shared: *const MapShared<F>,
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync> RangeJob<T, U, F> {
    /// Type-erases this job for the queues; the executor reclaims (and
    /// frees) the box.
    ///
    /// # Safety
    /// The returned `JobRef` must be executed exactly once, and the
    /// `MapShared` (with its `f`, group and result slots) must stay alive
    /// until the fan-out's group completes — guaranteed by the creator
    /// blocking in `wait_until_done` before any of them drop.
    unsafe fn into_job_ref(self: Box<Self>) -> JobRef {
        unsafe fn execute_erased<T: Send, U: Send, F: Fn(T) -> U + Sync>(data: *const ()) {
            // Safety: `data` came from `Box::into_raw` in `into_job_ref`
            // and the queues hand each ref to exactly one executor, so
            // reclaiming the box here is unique.
            let job = unsafe { Box::from_raw(data.cast_mut().cast::<RangeJob<T, U, F>>()) };
            job.run();
        }
        JobRef {
            data: Box::into_raw(self).cast_const().cast(),
            execute: execute_erased::<T, U, F>,
        }
    }

    /// Processes the range front to back, lazily splitting off the far
    /// half whenever idle demand is observed between items.
    fn run(mut self) {
        // Safety: the creator blocks on the task group until this job
        // completes, so the shared state, the group and the result slots
        // are all alive for the duration of `run`.
        let shared = unsafe { &*self.shared };
        let group = unsafe { &*shared.group };
        let f = unsafe { &*shared.f };
        let shared_ptr = self.shared;
        let mut items = std::mem::take(&mut self.items);
        let mut slot = self.slots;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _scope = ScopedLimit::apply(shared.limit);
            while let Some(item) = {
                if items.len() > 1 && shared.should_split() {
                    let keep = items.len().div_ceil(2);
                    let tail = items.split_off(keep);
                    // Register the new task before queueing it; sound
                    // because this job still holds its own count, so the
                    // group cannot drain concurrently.
                    group.add_one();
                    shared.outstanding.fetch_add(1, Ordering::Relaxed);
                    let tail_job = Box::new(RangeJob {
                        items: tail,
                        // Safety: the first `keep` slots stay with this
                        // job; the tail's range starts right after them,
                        // still inside the fan-out's live results vector.
                        slots: unsafe { slot.add(keep) },
                        shared: shared_ptr,
                    });
                    // Safety: queued jobs are always drained (by workers
                    // or the waiting creator) before the fan-out returns.
                    shared.registry.inject(std::iter::once(unsafe { tail_job.into_job_ref() }));
                }
                items.pop_front()
            } {
                // Safety: `slot` walks this job's disjoint slot range in
                // lockstep with the items popped off its front.
                unsafe {
                    *slot = Some(f(item));
                    slot = slot.add(1);
                }
            }
        }));
        shared.outstanding.fetch_sub(1, Ordering::Relaxed);
        if let Err(payload) = outcome {
            group.store_panic(payload);
        }
        group.complete_one();
    }
}

fn parallel_map<T: Send, U: Send, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let width = current_num_threads().min(n);
    if width <= 1 || n <= 1 {
        // Strictly serial, in input order, on the calling thread — the
        // width-1 determinism contract.
        return items.into_iter().map(f).collect();
    }

    let registry = global_registry();
    let mut results: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let group = TaskGroup::new(1, registry);
    let shared = MapShared {
        f: std::ptr::from_ref(f),
        limit: THREAD_LIMIT.get(),
        width,
        outstanding: AtomicUsize::new(1),
        registry,
        group: std::ptr::from_ref(&group),
    };
    let root = Box::new(RangeJob {
        items: VecDeque::from(items),
        slots: results.as_mut_ptr(),
        shared: std::ptr::from_ref(&shared),
    });
    // Safety: executed exactly once (queues pop each ref once); we block
    // on `group` below until the root and every job split off from it
    // complete, so `shared`, `group` and `results` outlive every job.
    registry.inject(std::iter::once(unsafe { root.into_job_ref() }));
    group.wait_until_done();
    group.propagate_panic();

    results
        .into_iter()
        .map(|slot| slot.expect("every slot is written by exactly one task"))
        .collect()
}

/// A detached, heap-allocated job for [`spawn`]: owns its closure and is
/// freed by whichever thread executes it. Unlike [`StackJob`] there is no
/// submitting stack frame to outlive — the box is the job's lifetime.
struct HeapJob<F> {
    func: F,
}

impl<F: FnOnce() + Send + 'static> HeapJob<F> {
    /// Type-erases this job for the queues; the executor reclaims (and
    /// frees) the box.
    ///
    /// # Safety
    /// The returned `JobRef` must be executed exactly once — guaranteed by
    /// the queues handing each ref to exactly one executor. (Jobs still
    /// queued at process exit are leaked, never double-run.)
    unsafe fn into_job_ref(self: Box<Self>) -> JobRef {
        unsafe fn execute_erased<F: FnOnce() + Send + 'static>(data: *const ()) {
            // Safety: `data` came from `Box::into_raw` in `into_job_ref`
            // and the queues hand each ref to exactly one executor, so
            // reclaiming the box here is unique.
            let job = unsafe { Box::from_raw(data.cast_mut().cast::<HeapJob<F>>()) };
            // A detached job has no waiting creator to re-throw into: the
            // panic is swallowed here so it cannot unwind through (and
            // permanently kill) a resident worker. Detached closures that
            // care route their own panics, as `rayon::spawn` documents.
            let _ = catch_unwind(AssertUnwindSafe(job.func));
        }
        JobRef {
            data: Box::into_raw(self).cast_const().cast(),
            execute: execute_erased::<F>,
        }
    }
}

/// Queues a detached fire-and-forget job onto the global pool — the shim's
/// `rayon::spawn`, and the bridge the readiness-driven judge server uses
/// to hand decoded requests to the pool. The closure runs on some resident
/// worker (or any thread draining the queues while waiting on its own
/// fan-out); nothing joins it, and a panic inside it is caught rather than
/// propagated. The submitting thread's width limit travels with the job,
/// like every other submission path.
pub fn spawn<F: FnOnce() + Send + 'static>(f: F) {
    let registry = global_registry();
    let limit = THREAD_LIMIT.get();
    let job = Box::new(HeapJob {
        func: move || {
            let _scope = ScopedLimit::apply(limit);
            f();
        },
    });
    // Safety: executed exactly once by whichever thread pops it; the job
    // owns all of its state, so there is no lifetime to uphold.
    registry.inject(std::iter::once(unsafe { job.into_job_ref() }));
}

/// Runs the two closures, potentially in parallel, and returns both
/// results — the shim's `rayon::join`. `oper_a` runs on the calling
/// thread; `oper_b` is pushed onto the pool (and reclaimed by the caller
/// itself if no worker takes it first). Under a width limit of 1 both run
/// serially, in order, on the calling thread.
///
/// If either closure panics the panic is re-thrown on the caller, but
/// only after *both* closures have finished, so neither side ever
/// observes the other's borrows dangling.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let result_a = oper_a();
        let result_b = oper_b();
        return (result_a, result_b);
    }
    let registry = global_registry();
    let group = TaskGroup::new(1, registry);
    let limit = THREAD_LIMIT.get();
    let group_ref = &group;
    let slot_b: Mutex<Option<RB>> = Mutex::new(None);
    let slot_ref = &slot_b;
    let job = StackJob::new(move || {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _scope = ScopedLimit::apply(limit);
            oper_b()
        }));
        match outcome {
            Ok(result) => {
                *slot_ref.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result)
            }
            Err(payload) => group_ref.store_panic(payload),
        }
        group_ref.complete_one();
    });
    // Safety: we wait on `group` before `job` drops.
    registry.inject(std::iter::once(unsafe { job.as_job_ref() }));
    let result_a = catch_unwind(AssertUnwindSafe(oper_a));
    group.wait_until_done();
    drop(job);
    match result_a {
        Err(payload) => resume_unwind(payload),
        Ok(result_a) => {
            group.propagate_panic();
            let result_b = slot_b
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take()
                .expect("oper_b completed without panicking");
            (result_a, result_b)
        }
    }
}

// ---------------------------------------------------------------------------
// Parallel iterators
// ---------------------------------------------------------------------------

/// An eager parallel iterator over an already-materialized list of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A parallel iterator with a pending `map` stage.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Pairs this iterator with another, element by element.
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Applies `f` to every element in parallel (on `collect`).
    pub fn map<U: Send, F>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> U + Sync,
    {
        ParMap { items: self.items, f }
    }

    /// Collects the items back into a vector (no-op pass-through).
    pub fn collect(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send, U: Send, F> ParMap<T, F>
where
    F: Fn(T) -> U + Sync,
{
    /// Runs the mapped pipeline across the pool and collects results in
    /// input order.
    pub fn collect(self) -> Vec<U> {
        parallel_map(self.items, &self.f)
    }
}

// ---------------------------------------------------------------------------
// ThreadPoolBuilder / ThreadPool
// ---------------------------------------------------------------------------

/// Configures a [`ThreadPool`] handle or the global pool, mirroring
/// rayon's builder API.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error of [`ThreadPoolBuilder::build`] / [`ThreadPoolBuilder::build_global`].
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    message: &'static str,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (automatic) worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the worker count; `0` keeps the automatic default.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds a pool handle. Never fails (the `Result` mirrors rayon's
    /// signature) and spawns no threads: the handle scopes a width limit
    /// over the shared global pool, so building and dropping pools is
    /// free, however often a caller churns them.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }

    /// Sizes the process-global pool, like rayon's `build_global`: the
    /// place a binary decides its parallelism once (`serve_judge
    /// --workers N`). Fails on every call after the first — whether the
    /// pool's resident threads already started or an earlier sizing is
    /// merely pending — matching rayon's first-call-wins contract.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let mut config = CONFIG.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if config.started || config.requested.is_some() {
            return Err(ThreadPoolBuildError {
                message: "the global thread pool has already been initialized",
            });
        }
        config.requested = Some(if self.num_threads == 0 {
            default_parallelism()
        } else {
            self.num_threads
        });
        Ok(())
    }
}

/// A handle scoping a worker-count override over the shared global pool,
/// mirroring rayon's pool API. The handle owns no threads: jobs spawned
/// under [`install`](ThreadPool::install) run on the global pool's
/// resident workers, constrained to this handle's width.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's width limit in effect, restoring the
    /// previous limit afterwards (also on panic). The limit travels with
    /// every job `f` spawns, so nested fan-outs obey it on whichever
    /// worker thread they land; `num_threads(1)` runs every pipeline
    /// reached from `f` strictly serially on the calling thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let _scope = ScopedLimit::apply((self.num_threads > 0).then_some(self.num_threads));
        f()
    }

    /// The pinned width (`0` = automatic, i.e. the global pool's size).
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

// ---------------------------------------------------------------------------
// Conversion traits
// ---------------------------------------------------------------------------

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for core::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Borrowing conversion into a parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send + 'a;

    /// Returns a parallel iterator over borrowed elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The traits users import wholesale, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A pool wide enough that the single-core CI container still
    /// exercises the queue machinery (width 1 would short-circuit to the
    /// serial path).
    fn wide_pool() -> crate::ThreadPool {
        crate::ThreadPoolBuilder::new().num_threads(4).build().unwrap()
    }

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = wide_pool().install(|| input.par_iter().map(|&x| x * 2).collect());
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_over_ranges() {
        let squares: Vec<usize> =
            wide_pool().install(|| (0..100usize).into_par_iter().map(|x| x * x).collect());
        assert_eq!(squares[9], 81);
        assert_eq!(squares.len(), 100);
    }

    #[test]
    fn zip_pairs_elements() {
        let a = vec![1, 2, 3];
        let b = vec!["x", "y", "z"];
        let pairs: Vec<(i32, &str)> = a.par_iter().zip(b.par_iter()).map(|(&n, &s)| (n, s)).collect();
        assert_eq!(pairs, vec![(1, "x"), (2, "y"), (3, "z")]);
    }

    #[test]
    fn nested_parallel_iterators_fan_out_and_stay_ordered() {
        // Three levels deep: the defining upgrade over the chunk-and-join
        // shim, which serialized everything below the first level.
        let out: Vec<Vec<Vec<usize>>> = wide_pool().install(|| {
            (0..4usize)
                .into_par_iter()
                .map(|i| -> Vec<Vec<usize>> {
                    (0..4usize)
                        .into_par_iter()
                        .map(|j| -> Vec<usize> {
                            (0..4usize).into_par_iter().map(|k| i * 100 + j * 10 + k).collect()
                        })
                        .collect()
                })
                .collect()
        });
        for (i, middle) in out.iter().enumerate() {
            for (j, inner) in middle.iter().enumerate() {
                for (k, &value) in inner.iter().enumerate() {
                    assert_eq!(value, i * 100 + j * 10 + k);
                }
            }
        }
    }

    #[test]
    fn nested_jobs_can_execute_on_pool_workers() {
        // With a wide pool, inner jobs are *allowed* to land on other
        // threads (the old shim pinned them to the outer worker). On a
        // single-core host everything may still run on one thread, so only
        // assert the distribution is sane, not that it spread.
        let ids: Vec<std::thread::ThreadId> = wide_pool().install(|| {
            let nested: Vec<Vec<std::thread::ThreadId>> = (0..8usize)
                .into_par_iter()
                .map(|_| -> Vec<std::thread::ThreadId> {
                    (0..8usize).into_par_iter().map(|_| std::thread::current().id()).collect()
                })
                .collect();
            nested.into_iter().flatten().collect()
        });
        assert_eq!(ids.len(), 64);
        let distinct: HashSet<_> = ids.into_iter().collect();
        assert!(!distinct.is_empty());
    }

    #[test]
    fn single_thread_pool_runs_everything_on_the_calling_thread() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let caller = std::thread::current().id();
        let ids: Vec<std::thread::ThreadId> = pool.install(|| {
            (0..8usize)
                .into_par_iter()
                .map(|_| {
                    // The limit must reach nested fan-outs too.
                    let inner: Vec<std::thread::ThreadId> =
                        (0..4usize).into_par_iter().map(|_| std::thread::current().id()).collect();
                    assert!(inner.iter().all(|&id| id == caller));
                    std::thread::current().id()
                })
                .collect()
        });
        assert!(ids.iter().all(|&id| id == caller));
        // The override is scoped: after install the limit is gone.
        assert_eq!(crate::THREAD_LIMIT.get(), None);
    }

    #[test]
    fn pool_results_match_the_serial_schedule() {
        let serial: Vec<usize> = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| (0..100usize).into_par_iter().map(|x| x * 3).collect());
        let parallel: Vec<usize> =
            wide_pool().install(|| (0..100usize).into_par_iter().map(|x| x * 3).collect());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn width_one_is_strictly_serial_in_input_order() {
        // The determinism contract: a width-1 fan-out never creates a
        // job — items run in input order on the calling thread, so even
        // side-effect order is the serial schedule's.
        let order = std::sync::Mutex::new(Vec::new());
        let pool = crate::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<usize> = pool.install(|| {
            (0..64usize)
                .into_par_iter()
                .map(|i| {
                    order.lock().unwrap().push(i);
                    i * 2
                })
                .collect()
        });
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(*order.lock().unwrap(), (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn lazy_splitting_outputs_match_for_every_width() {
        // The split schedule adapts to observed idleness and so differs
        // run to run — the collected results must not. A small nested
        // fan-out plus a spin keeps jobs long enough for real splits.
        let reference: Vec<usize> =
            (0..200usize).map(|x| x.wrapping_mul(2654435761).rotate_left(7) % 977).collect();
        for width in 1..=8usize {
            let pool = crate::ThreadPoolBuilder::new().num_threads(width).build().unwrap();
            let out: Vec<usize> = pool.install(|| {
                (0..200usize)
                    .into_par_iter()
                    .map(|x| {
                        std::hint::black_box((0..50).fold(0u64, |a, b| a ^ b));
                        x.wrapping_mul(2654435761).rotate_left(7) % 977
                    })
                    .collect()
            });
            assert_eq!(out, reference, "width {width}");
        }
    }

    #[test]
    fn lazy_splits_fill_every_slot_under_contention() {
        // Force genuine splitting: long-ish items, parked workers, and a
        // count that should leave split demand observable throughout.
        let hits = AtomicUsize::new(0);
        let out: Vec<usize> = wide_pool().install(|| {
            (0..512usize)
                .into_par_iter()
                .map(|i| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    std::hint::black_box((0..200).fold(i as u64, |a, b| a.wrapping_add(b)));
                    i
                })
                .collect()
        });
        assert_eq!(hits.load(Ordering::Relaxed), 512);
        assert_eq!(out, (0..512).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both_results_and_propagates_limits() {
        let (a, b): (Vec<usize>, Vec<usize>) = wide_pool().install(|| {
            crate::join(
                || (0..32usize).into_par_iter().map(|x| x + 1).collect(),
                || (0..32usize).into_par_iter().map(|x| x * 2).collect(),
            )
        });
        assert_eq!(a, (1..=32).collect::<Vec<_>>());
        assert_eq!(b, (0..32).map(|x| x * 2).collect::<Vec<_>>());

        let caller = std::thread::current().id();
        let pool = crate::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let (ta, tb) =
            pool.install(|| crate::join(|| std::thread::current().id(), || std::thread::current().id()));
        assert_eq!((ta, tb), (caller, caller));
    }

    #[test]
    fn panics_propagate_and_the_pool_survives() {
        let attempt = std::panic::catch_unwind(|| -> Vec<usize> {
            wide_pool().install(|| {
                (0..64usize)
                    .into_par_iter()
                    .map(|i| if i == 17 { panic!("boom at {i}") } else { i })
                    .collect()
            })
        });
        assert!(attempt.is_err(), "the job panic must reach the caller");
        // The pool keeps serving after a panicked fan-out.
        let recovered: Vec<usize> =
            wide_pool().install(|| (0..64usize).into_par_iter().map(|x| x + 1).collect());
        assert_eq!(recovered.len(), 64);
    }

    #[test]
    fn join_propagates_panics_from_either_side() {
        let a_panics =
            std::panic::catch_unwind(|| wide_pool().install(|| crate::join(|| panic!("left"), || 2)));
        assert!(a_panics.is_err());
        let b_panics = std::panic::catch_unwind(|| {
            wide_pool().install(|| crate::join(|| 1, || -> usize { panic!("right") }))
        });
        assert!(b_panics.is_err());
        let (a, b) = wide_pool().install(|| crate::join(|| 1, || 2));
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn every_panicking_sibling_still_counts_down() {
        // All tasks panic; the caller must still be released (a lost
        // countdown would hang this test forever) and see a panic.
        let attempt = std::panic::catch_unwind(|| -> Vec<usize> {
            wide_pool().install(|| {
                (0..16usize).into_par_iter().map(|i| -> usize { panic!("task {i}") }).collect()
            })
        });
        assert!(attempt.is_err());
    }

    #[test]
    fn pool_churn_and_reuse_is_cheap_and_correct() {
        // Handles own no threads, so building hundreds of pools (the old
        // per-connection server pattern) costs nothing and every width
        // yields the same stitched output.
        let expected: Vec<usize> = (0..50).map(|x| x * 7).collect();
        for round in 0..200 {
            let pool = crate::ThreadPoolBuilder::new().num_threads(1 + round % 8).build().unwrap();
            let out: Vec<usize> = pool.install(|| (0..50usize).into_par_iter().map(|x| x * 7).collect());
            assert_eq!(out, expected, "round {round}");
        }
    }

    #[test]
    fn deep_nesting_under_contention_terminates() {
        // Many concurrent OS threads each drive a nested pipeline through
        // the one shared pool; every item must come back exactly once.
        let counter = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let total: usize = wide_pool().install(|| {
                        let nested: Vec<Vec<usize>> = (0..8usize)
                            .into_par_iter()
                            .map(|i| -> Vec<usize> {
                                (0..8usize).into_par_iter().map(|j| i + j).collect()
                            })
                            .collect();
                        nested.into_iter().flatten().sum()
                    });
                    counter.fetch_add(total, Ordering::Relaxed);
                });
            }
        });
        // 4 threads × sum_{i,j in 0..8} (i+j) = 4 × 448.
        assert_eq!(counter.load(Ordering::Relaxed), 4 * 448);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn spawn_runs_detached_jobs_and_survives_their_panics() {
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel::<usize>();
        for i in 0..16usize {
            let tx = tx.clone();
            crate::spawn(move || {
                // Detached jobs may themselves fan out on the pool.
                let doubled: Vec<usize> = vec![i, i].into_par_iter().map(|x| x * 2).collect();
                let _ = tx.send(doubled[0]);
            });
        }
        let mut seen: Vec<usize> = (0..16)
            .map(|_| rx.recv_timeout(std::time::Duration::from_secs(30)).expect("spawned job ran"))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..16).map(|i| i * 2).collect::<Vec<_>>());
        // A panicking detached job must not take a resident worker down:
        // jobs spawned afterwards still run.
        crate::spawn(|| panic!("detached boom"));
        let (tx2, rx2) = mpsc::channel::<u8>();
        crate::spawn(move || {
            let _ = tx2.send(7);
        });
        assert_eq!(rx2.recv_timeout(std::time::Duration::from_secs(30)), Ok(7));
    }
}
