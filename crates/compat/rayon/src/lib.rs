//! Offline API-compatible subset of the
//! [`rayon`](https://crates.io/crates/rayon) crate, vendored under
//! `crates/compat/` because the build environment has no registry access.
//!
//! Implements the narrow data-parallel surface the workspace uses —
//! `par_iter()` / `into_par_iter()` followed by `zip`, `map` and
//! `collect()` into a `Vec` — on top of `std::thread::scope`. Items are
//! chunked across `available_parallelism()` worker threads and results are
//! returned in input order, so the observable behaviour (including
//! determinism of seed-per-item pipelines) matches real rayon.
//!
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`] are also provided so
//! callers (notably the concurrency determinism test suite) can pin the
//! worker count — `num_threads(1)` forces every parallel pipeline inside
//! `install` to run serially on the calling thread.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// An eager parallel iterator over an already-materialized list of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A parallel iterator with a pending `map` stage.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Pairs this iterator with another, element by element.
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Applies `f` to every element in parallel (on `collect`).
    pub fn map<U: Send, F>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> U + Sync,
    {
        ParMap { items: self.items, f }
    }

    /// Collects the items back into a vector (no-op pass-through).
    pub fn collect(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send, U: Send, F> ParMap<T, F>
where
    F: Fn(T) -> U + Sync,
{
    /// Runs the mapped pipeline across worker threads and collects results
    /// in input order.
    pub fn collect(self) -> Vec<U> {
        parallel_map(self.items, &self.f)
    }
}

thread_local! {
    /// Set while this thread is executing a batch on behalf of an outer
    /// `parallel_map`; nested parallel iterators then run serially on the
    /// same thread instead of spawning another fan-out (real rayon
    /// achieves the same by scheduling nested jobs on its fixed pool).
    /// Without this, nested `par_iter`s — grid search over grid points,
    /// each fitting a forest of trees — would spawn up to `ncpu²` OS
    /// threads.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`]; `None`
    /// falls back to `available_parallelism()`.
    static THREAD_LIMIT: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Configures a [`ThreadPool`], mirroring rayon's builder API.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type of [`ThreadPoolBuilder::build`]; the shim never actually
/// fails to build, the `Result` only mirrors rayon's signature.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (automatic) worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the worker count; `0` keeps the automatic default.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool. Never fails in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle that scopes a worker-count override, mirroring rayon's pool.
/// Unlike real rayon the shim has no resident worker threads; `install`
/// runs the closure on the calling thread with the pool's worker count
/// governing every `par_iter` fan-out reached from it.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's worker count in effect, restoring the
    /// previous limit afterwards (also on panic).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                THREAD_LIMIT.set(self.0);
            }
        }
        let _restore = Restore(THREAD_LIMIT.get());
        THREAD_LIMIT.set(if self.num_threads == 0 {
            None
        } else {
            Some(self.num_threads)
        });
        f()
    }

    /// The pinned worker count (`0` = automatic).
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Worker count governing parallel pipelines on the *current* thread,
/// mirroring `rayon::current_num_threads`: the limit installed by the
/// innermost enclosing [`ThreadPool::install`], else
/// `available_parallelism()`. Thread-locals do not cross `std::thread`
/// spawns, so callers forking plain threads should capture this value and
/// re-`install` it on the new thread to propagate a pinned limit.
pub fn current_num_threads() -> usize {
    THREAD_LIMIT.get().unwrap_or_else(default_parallelism)
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

fn parallel_map<T: Send, U: Send, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 || IN_WORKER.get() {
        return items.into_iter().map(f).collect();
    }

    let chunk_len = n.div_ceil(threads);
    let mut results: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let mut pending: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let tail = items.split_off(chunk_len.min(items.len()));
        pending.push(std::mem::replace(&mut items, tail));
    }

    std::thread::scope(|scope| {
        let mut slots: &mut [Option<U>] = &mut results;
        for batch in pending {
            let (head, tail) = slots.split_at_mut(batch.len());
            slots = tail;
            scope.spawn(move || {
                IN_WORKER.set(true);
                for (slot, item) in head.iter_mut().zip(batch) {
                    *slot = Some(f(item));
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| slot.expect("every slot is written by exactly one worker"))
        .collect()
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for core::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Borrowing conversion into a parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send + 'a;

    /// Returns a parallel iterator over borrowed elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The traits users import wholesale, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_over_ranges() {
        let squares: Vec<usize> = (0..100usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares[9], 81);
        assert_eq!(squares.len(), 100);
    }

    #[test]
    fn zip_pairs_elements() {
        let a = vec![1, 2, 3];
        let b = vec!["x", "y", "z"];
        let pairs: Vec<(i32, &str)> = a.par_iter().zip(b.par_iter()).map(|(&n, &s)| (n, s)).collect();
        assert_eq!(pairs, vec![(1, "x"), (2, "y"), (3, "z")]);
    }

    #[test]
    fn work_actually_crosses_threads() {
        // Not a strict guarantee (single-core machines run serially), but on
        // multi-core CI this exercises the scoped-thread path.
        let ids: Vec<std::thread::ThreadId> =
            (0..64usize).into_par_iter().map(|_| std::thread::current().id()).collect();
        assert_eq!(ids.len(), 64);
    }

    #[test]
    fn nested_parallel_iterators_run_serially_inside_workers() {
        // The inner par_iter must not fan out again: everything an outer
        // batch does stays on its worker thread.
        let results: Vec<Vec<std::thread::ThreadId>> = (0..8usize)
            .into_par_iter()
            .map(|_| {
                let outer_thread = std::thread::current().id();
                let inner: Vec<std::thread::ThreadId> =
                    (0..4usize).into_par_iter().map(|_| std::thread::current().id()).collect();
                assert!(inner.iter().all(|&id| id == outer_thread));
                inner
            })
            .collect();
        assert_eq!(results.len(), 8);
    }

    #[test]
    fn single_thread_pool_runs_everything_on_the_calling_thread() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let caller = std::thread::current().id();
        let ids: Vec<std::thread::ThreadId> =
            pool.install(|| (0..32usize).into_par_iter().map(|_| std::thread::current().id()).collect());
        assert!(ids.iter().all(|&id| id == caller));
        // The override is scoped: after install, fan-out is allowed again.
        assert!(crate::THREAD_LIMIT.get().is_none());
    }

    #[test]
    fn pool_results_match_the_default_schedule() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let serial: Vec<usize> = pool.install(|| (0..100usize).into_par_iter().map(|x| x * 3).collect());
        let parallel: Vec<usize> = (0..100usize).into_par_iter().map(|x| x * 3).collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
