//! Security experiments (Section 4.2): watermark detection (Table 2),
//! watermark forgery (Figures 4 and 5) and the suppression analysis.

use crate::datasets::PaperDataset;
use crate::settings::ExperimentSettings;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use wdte_core::{
    evaluate_detection, evaluate_suppression, forge_trigger_set_compiled, persist, DetectionFeature,
    DetectionStrategy, Dispute, DisputeService, ForgeryAttackConfig, ManifestEntry, ModelManifest,
    OwnershipClaim, Signature, SuppressionScore, WatermarkOutcome, Watermarker,
};
use wdte_data::Dataset;
use wdte_solver::LeafIndex;
use wdte_trees::{derive_seeds, rng_from_seed, CompiledForest, RandomForest};

/// A watermarked model plus everything needed to attack it.
pub struct SecuritySetup {
    /// The dataset attacked.
    pub dataset: PaperDataset,
    /// Training split.
    pub train: Dataset,
    /// Test split.
    pub test: Dataset,
    /// Watermark embedding outcome.
    pub outcome: WatermarkOutcome,
    /// A standard (non-watermarked) model trained with the same pipeline.
    pub baseline: RandomForest,
}

/// Embeds a watermark on one of the paper datasets with the evaluation
/// defaults (50% ones, 2% trigger set), returning the artefacts the
/// security experiments need.
pub fn prepare_security_setup(settings: &ExperimentSettings, dataset: PaperDataset) -> SecuritySetup {
    let (train, test) = dataset.load_split(settings.dataset_scale(dataset), settings.seed);
    let mut rng = SmallRng::seed_from_u64(settings.seed.wrapping_mul(31) ^ dataset.name().len() as u64);
    let config = settings.watermark_config(dataset);
    let signature = Signature::random(config.num_trees, 0.5, &mut rng);
    let watermarker = Watermarker::new(config);
    let outcome = watermarker
        .embed(&train, &signature, &mut rng)
        .expect("non-strict embedding succeeds");
    let baseline = watermarker.train_baseline(&train, &mut rng);
    SecuritySetup {
        dataset,
        train,
        test,
        outcome,
        baseline,
    }
}

/// Persists the reusable artefacts of a security setup under
/// `results/models/`: the watermarked model (compact binary), its compiled
/// inference form (auditable JSON) and the owner's full ownership claim.
/// Later dispute runs — or the `dispute_from_files` example — can then
/// verify and attack the model without retraining it. Failures are
/// reported on stderr but never abort the experiment.
///
/// Returns the [`ManifestEntry`] for the saved model, so the caller can
/// assemble the directory's [`ModelManifest`] (see
/// [`write_model_manifest`]) once every dataset has been persisted; `None`
/// if the model artefact could not be written.
pub fn save_model_artifacts(setup: &SecuritySetup) -> Option<ManifestEntry> {
    let dir = crate::report::results_dir().join("models");
    let claim = OwnershipClaim::new(
        setup.outcome.signature.clone(),
        setup.outcome.trigger_set.clone(),
        setup.test.clone(),
    );
    let compiled = CompiledForest::compile(&setup.outcome.model);
    let report = |path: &std::path::Path, result: wdte_core::WatermarkResult<()>| match result {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(err) => eprintln!("warning: could not save {}: {err}", path.display()),
    };
    let model_file = format!("{}.model.wdte", setup.dataset.name());
    let model_path = dir.join(&model_file);
    let compiled_path = dir.join(format!("{}.compiled.json", setup.dataset.name()));
    let claim_path = dir.join(format!("{}.claim.wdte", setup.dataset.name()));
    let model_saved = persist::save(&model_path, &setup.outcome.model, persist::Format::Binary);
    let model_ok = model_saved.is_ok();
    report(&model_path, model_saved);
    report(
        &compiled_path,
        persist::save(&compiled_path, &compiled, persist::Format::Json),
    );
    report(
        &claim_path,
        persist::save(&claim_path, &claim, persist::Format::Binary),
    );
    model_ok.then(|| ManifestEntry {
        model_id: setup.dataset.name().to_string(),
        file: model_file,
    })
}

/// Writes the [`ModelManifest`] of `results/models/` from the entries
/// returned by [`save_model_artifacts`], so
/// `DisputeService::builder().warm_start_dir("results/models")` — or
/// `serve_judge --warm-start results/models` — boots a judge serving every
/// persisted model, from disk alone.
pub fn write_model_manifest(entries: Vec<ManifestEntry>) {
    let dir = crate::report::results_dir().join("models");
    let manifest = ModelManifest { models: entries };
    match manifest.save_dir(&dir) {
        Ok(()) => println!(
            "[saved {} ({} models)]",
            dir.join(wdte_core::MODEL_MANIFEST_FILE).display(),
            manifest.models.len()
        ),
        Err(err) => eprintln!("warning: could not save the model manifest: {err}"),
    }
}

/// Adjudicates the owners' genuine claims for every setup as one
/// concurrent [`DisputeService`] docket: each watermarked model is
/// registered (and compiled) once, then all claims resolve in parallel —
/// the serving-side pipeline the persisted `results/models/` artefacts
/// feed. Panics if a genuine claim fails to verify, so experiment runs
/// double as an end-to-end check of the service layer.
pub fn adjudicate_via_service(setups: &[SecuritySetup]) {
    let service = DisputeService::builder().build().expect("an empty builder always builds");
    let disputes: Vec<Dispute> = setups
        .iter()
        .map(|setup| {
            service.register(setup.dataset.name(), &setup.outcome.model);
            let claim = OwnershipClaim::new(
                setup.outcome.signature.clone(),
                setup.outcome.trigger_set.clone(),
                setup.test.clone(),
            );
            Dispute::new(setup.dataset.name(), claim)
        })
        .collect();
    for (setup, verdict) in setups.iter().zip(service.resolve_many(&disputes)) {
        let report = verdict.expect("every dispute names a registered model");
        println!(
            "[dispute] {}: verified={} (bit agreement {:.3}, {} black-box queries)",
            setup.dataset.name(),
            report.verified,
            report.bit_agreement,
            report.queries_issued
        );
        assert!(
            report.verified,
            "genuine claim on {} must verify",
            setup.dataset.name()
        );
    }
    println!(
        "[dispute] {} claims resolved with {} model compilations",
        disputes.len(),
        service.compile_count()
    );
}

/// One row of Table 2 (a dataset × hyper-parameter × strategy cell).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Dataset name.
    pub dataset: String,
    /// Inspected hyper-parameter (`"Depth"` or `"#leaves"`).
    pub hyper_parameter: String,
    /// Mean of the inspected quantity over the ensemble.
    pub mean: f64,
    /// Standard deviation of the inspected quantity.
    pub std: f64,
    /// Strategy 1 (mean ± std bands): #correct / #wrong / #uncertain.
    pub bands_correct: usize,
    /// Strategy 1 wrong guesses.
    pub bands_wrong: usize,
    /// Strategy 1 uncertain trees.
    pub bands_uncertain: usize,
    /// Strategy 2 (sharp mean threshold): #correct.
    pub threshold_correct: usize,
    /// Strategy 2 wrong guesses.
    pub threshold_wrong: usize,
}

/// Runs the watermark-detection experiment for one prepared setup.
pub fn table2_rows(setup: &SecuritySetup) -> Vec<Table2Row> {
    [DetectionFeature::Depth, DetectionFeature::Leaves]
        .iter()
        .map(|&feature| {
            let bands = evaluate_detection(
                &setup.outcome.model,
                &setup.outcome.signature,
                feature,
                DetectionStrategy::MeanStdBands,
            );
            let threshold = evaluate_detection(
                &setup.outcome.model,
                &setup.outcome.signature,
                feature,
                DetectionStrategy::MeanThreshold,
            );
            Table2Row {
                dataset: setup.dataset.name().to_string(),
                hyper_parameter: feature.name().to_string(),
                mean: bands.mean,
                std: bands.std,
                bands_correct: bands.correct,
                bands_wrong: bands.wrong,
                bands_uncertain: bands.uncertain,
                threshold_correct: threshold.correct,
                threshold_wrong: threshold.wrong,
            }
        })
        .collect()
}

/// Prints Table 2 in the paper's layout (`bands / threshold` cells).
pub fn print_table2(rows: &[Table2Row]) {
    println!(
        "{:<15} {:<22} {:>14} {:>14} {:>14}",
        "Dataset", "Hyper-Parameters", "#correct", "#wrong", "#uncertain"
    );
    for row in rows {
        println!(
            "{:<15} {:<22} {:>14} {:>14} {:>14}",
            row.dataset,
            format!("{} ({:.2} - {:.2})", row.hyper_parameter, row.mean, row.std),
            format!("{} / {}", row.bands_correct, row.threshold_correct),
            format!("{} / {}", row.bands_wrong, row.threshold_wrong),
            format!("{} / 0", row.bands_uncertain),
        );
    }
}

/// One point of Figure 4: forged trigger-set size at a given ε.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForgeryCurvePoint {
    /// Distortion bound ε.
    pub epsilon: f64,
    /// Size of the legitimate trigger set.
    pub original_trigger_size: usize,
    /// Mean forged trigger-set size across fake signatures.
    pub mean_forged_size: f64,
    /// Largest forged trigger-set size across fake signatures.
    pub max_forged_size: usize,
    /// Number of attempts per signature.
    pub attempts_per_signature: usize,
    /// Number of solver budget exhaustions summed over signatures.
    pub budget_exhausted: usize,
}

/// ε sweep of Figure 4.
pub fn figure4_sweep(settings: &ExperimentSettings) -> Vec<f64> {
    if settings.full_scale {
        vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    } else {
        vec![0.1, 0.3, 0.5, 0.7, 0.9]
    }
}

/// Runs the forgery attack sweep of Figure 4 on a prepared setup (the paper
/// uses MNIST2-6 for the figure).
///
/// Grid points run concurrently across the work-stealing pool, and the
/// fake-signature fan-out *inside* each ε point is a nested pool fan-out:
/// workers that finish a cheap ε early steal another point's signature
/// tasks instead of idling. Each ε point draws
/// its RNG stream from a seed derived once from the master seed (and each
/// fake signature within a point from a seed derived from the point's
/// stream), so no task ever observes another task's RNG consumption:
/// fixed-seed results are bit-identical to the serial sweep for any
/// worker-thread count. (This re-derivation reshuffles fixed-seed outputs
/// relative to the earlier serial implementation, which threaded one RNG
/// through the whole sweep.)
pub fn figure4(settings: &ExperimentSettings, setup: &SecuritySetup) -> Vec<ForgeryCurvePoint> {
    let leaf_index = LeafIndex::new(&setup.outcome.model);
    // One compile shared across the whole ε × fake-signature sweep.
    let compiled = CompiledForest::compile(&setup.outcome.model);
    let sweep = figure4_sweep(settings);
    let mut rng = SmallRng::seed_from_u64(settings.seed.wrapping_add(404));
    let point_seeds = derive_seeds(sweep.len(), &mut rng);
    sweep
        .into_par_iter()
        .zip(point_seeds.into_par_iter())
        .map(|(epsilon, point_seed)| {
            let config = ForgeryAttackConfig {
                num_fake_signatures: settings.forgery_signatures,
                ones_fraction: 0.5,
                epsilon,
                solver: settings.solver_config(),
                max_instances: settings.forgery_max_instances,
            };
            let mut point_rng = rng_from_seed(point_seed);
            let signature_seeds = derive_seeds(config.num_fake_signatures, &mut point_rng);
            let results: Vec<_> = signature_seeds
                .into_par_iter()
                .map(|seed| {
                    let mut rng = rng_from_seed(seed);
                    let fake = Signature::random(setup.outcome.model.num_trees(), 0.5, &mut rng);
                    forge_trigger_set_compiled(&compiled, &leaf_index, &setup.test, &fake, &config)
                })
                .collect();
            let mean_forged_size = wdte_core::attack::mean_forged_size(&results);
            let max_forged_size = results.iter().map(|r| r.forged_count()).max().unwrap_or(0);
            let budget_exhausted = results.iter().map(|r| r.budget_exhausted).sum();
            let attempts_per_signature = results.first().map_or(0, |r| r.attempts);
            ForgeryCurvePoint {
                epsilon,
                original_trigger_size: setup.outcome.trigger_set.len(),
                mean_forged_size,
                max_forged_size,
                attempts_per_signature,
                budget_exhausted,
            }
        })
        .collect()
}

/// Prints the Figure 4 series.
pub fn print_figure4(points: &[ForgeryCurvePoint]) {
    println!(
        "{:>8} {:>18} {:>18} {:>16} {:>18}",
        "epsilon", "|D_trigger|", "mean |D'_trigger|", "max |D'_trigger|", "budget exhausted"
    );
    for point in points {
        println!(
            "{:>8.2} {:>18} {:>18.2} {:>16} {:>18}",
            point.epsilon,
            point.original_trigger_size,
            point.mean_forged_size,
            point.max_forged_size,
            point.budget_exhausted
        );
    }
}

/// Figure 5 artefacts: a forged instance (rendered separately) plus the
/// accuracy comparison between the original and forged trigger sets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForgedExample {
    /// Distortion bound ε used.
    pub epsilon: f64,
    /// The forged instance (pixel values for the MNIST-like dataset).
    pub instance: Vec<f64>,
    /// The test instance it was derived from.
    pub source: Vec<f64>,
    /// Actual L∞ distortion.
    pub distortion: f64,
    /// Accuracy of a standard ensemble on the original trigger set.
    pub baseline_accuracy_on_original_trigger: f64,
    /// Accuracy of a standard ensemble on the forged trigger set.
    pub baseline_accuracy_on_forged_trigger: f64,
}

/// Runs the Figure 5 experiment: forges instances at ε ∈ {0.3, 0.5, 0.7}
/// and measures how a standard ensemble scores the original vs forged
/// trigger sets.
///
/// Like [`figure4`], the ε grid points are independent pool tasks with
/// per-point derived seeds (bit-identical to the serial sweep), sharing
/// one compiled form of the watermarked model.
pub fn figure5(settings: &ExperimentSettings, setup: &SecuritySetup) -> Vec<ForgedExample> {
    let leaf_index = LeafIndex::new(&setup.outcome.model);
    let compiled = CompiledForest::compile(&setup.outcome.model);
    let baseline_on_original = setup.baseline.accuracy(&setup.outcome.trigger_set);
    let sweep = [0.3, 0.5, 0.7];
    let mut rng = SmallRng::seed_from_u64(settings.seed.wrapping_add(505));
    let point_seeds = derive_seeds(sweep.len(), &mut rng);
    let examples: Vec<Option<ForgedExample>> = sweep
        .to_vec()
        .into_par_iter()
        .zip(point_seeds.into_par_iter())
        .map(|(epsilon, point_seed)| {
            let mut rng = rng_from_seed(point_seed);
            let fake = Signature::random(setup.outcome.model.num_trees(), 0.5, &mut rng);
            let config = ForgeryAttackConfig {
                num_fake_signatures: 1,
                ones_fraction: 0.5,
                epsilon,
                solver: settings.solver_config(),
                max_instances: settings.forgery_max_instances,
            };
            let result = forge_trigger_set_compiled(&compiled, &leaf_index, &setup.test, &fake, &config);
            let baseline_on_forged = result
                .forged_dataset("forged-trigger")
                .map(|forged| setup.baseline.accuracy(&forged))
                .unwrap_or(0.0);
            result.forged.first().map(|first| ForgedExample {
                epsilon,
                instance: first.instance.clone(),
                source: setup.test.instance(first.source_index).to_vec(),
                distortion: first.distortion,
                baseline_accuracy_on_original_trigger: baseline_on_original,
                baseline_accuracy_on_forged_trigger: baseline_on_forged,
            })
        })
        .collect();
    examples.into_iter().flatten().collect()
}

/// Result of the suppression analysis for one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuppressionRow {
    /// Dataset name.
    pub dataset: String,
    /// AUC of the vote-disagreement distinguisher (0.5 = chance).
    pub disagreement_auc: f64,
    /// AUC of the vote-margin distinguisher (0.5 = chance).
    pub margin_auc: f64,
    /// Number of trigger instances scored.
    pub trigger_instances: usize,
    /// Number of ordinary test instances scored.
    pub test_instances: usize,
}

/// Runs the suppression analysis on a prepared setup.
pub fn suppression_row(setup: &SecuritySetup) -> SuppressionRow {
    let disagreement = evaluate_suppression(
        &setup.outcome.model,
        &setup.outcome.trigger_set,
        &setup.test,
        SuppressionScore::VoteDisagreement,
    );
    let margin = evaluate_suppression(
        &setup.outcome.model,
        &setup.outcome.trigger_set,
        &setup.test,
        SuppressionScore::VoteMargin,
    );
    SuppressionRow {
        dataset: setup.dataset.name().to_string(),
        disagreement_auc: disagreement.auc,
        margin_auc: margin.auc,
        trigger_instances: setup.outcome.trigger_set.len(),
        test_instances: setup.test.len(),
    }
}

/// Prints the suppression analysis rows.
pub fn print_suppression(rows: &[SuppressionRow]) {
    println!(
        "{:<15} {:>20} {:>16} {:>12} {:>12}",
        "Dataset", "Disagreement AUC", "Margin AUC", "#trigger", "#test"
    );
    for row in rows {
        println!(
            "{:<15} {:>20.3} {:>16.3} {:>12} {:>12}",
            row.dataset, row.disagreement_auc, row.margin_auc, row.trigger_instances, row.test_instances
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_settings() -> ExperimentSettings {
        ExperimentSettings {
            seed: 5,
            forgery_signatures: 2,
            forgery_max_instances: Some(8),
            solver_time_ms: 300,
            ..ExperimentSettings::laptop()
        }
    }

    #[test]
    fn security_pipeline_runs_end_to_end_on_the_small_dataset() {
        let settings = fast_settings();
        let setup = prepare_security_setup(&settings, PaperDataset::BreastCancer);
        assert_eq!(
            setup.outcome.model.num_trees(),
            settings.num_trees(PaperDataset::BreastCancer)
        );

        let rows = table2_rows(&setup);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(
                row.bands_correct + row.bands_wrong + row.bands_uncertain,
                setup.outcome.model.num_trees()
            );
            assert_eq!(
                row.threshold_correct + row.threshold_wrong,
                setup.outcome.model.num_trees()
            );
        }

        let suppression = suppression_row(&setup);
        assert!((0.0..=1.0).contains(&suppression.disagreement_auc));
        assert_eq!(suppression.trigger_instances, setup.outcome.trigger_set.len());

        let curve = figure4(&settings, &setup);
        assert_eq!(curve.len(), figure4_sweep(&settings).len());
        // Monotone trend check (weak form): the largest ε forges at least as
        // many instances as the smallest ε.
        let first = curve.first().unwrap();
        let last = curve.last().unwrap();
        assert!(last.mean_forged_size >= first.mean_forged_size);
    }

    /// The parallel ε-sweeps derive one seed per grid point, so the
    /// results must be bit-identical whether the sweep runs serially
    /// (1-thread pool) or fanned out across workers.
    ///
    /// The solver budget is pinned to the (deterministic) node limit by
    /// making the wall-clock limit unreachable: a wall-clock deadline is
    /// load-dependent by nature — it could flip `budget_exhausted` between
    /// two runs of the *serial* sweep just as easily — and would make any
    /// bit-identity assertion about scheduling meaningless.
    #[test]
    fn epsilon_sweeps_are_bit_identical_for_any_worker_count() {
        let settings = ExperimentSettings {
            solver_time_ms: u64::MAX / 1_000_000,
            ..fast_settings()
        };
        let setup = prepare_security_setup(&settings, PaperDataset::BreastCancer);
        let serial_pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let wide_pool = rayon::ThreadPoolBuilder::new().num_threads(8).build().unwrap();

        let serial4 = serial_pool.install(|| figure4(&settings, &setup));
        let wide4 = wide_pool.install(|| figure4(&settings, &setup));
        assert_eq!(serial4, wide4);
        assert_eq!(serial4, figure4(&settings, &setup));

        let serial5 = serial_pool.install(|| figure5(&settings, &setup));
        let wide5 = wide_pool.install(|| figure5(&settings, &setup));
        assert_eq!(serial5, wide5);

        // The suppression rows are per-dataset tasks seeded the same way.
        let serial_row = serial_pool.install(|| suppression_row(&setup));
        assert_eq!(serial_row, suppression_row(&setup));
    }
}
