//! The paper's three evaluation datasets (synthetic stand-ins) and the
//! preprocessing applied to them (normalization, the ijcnn1 stratified
//! reduction, train/test splits).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use wdte_data::{Dataset, DatasetStats, SyntheticSpec};

/// The three datasets of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PaperDataset {
    /// MNIST digits 2 vs 6 (784 features).
    Mnist26,
    /// Wisconsin breast cancer (30 features).
    BreastCancer,
    /// ijcnn1, reduced to 10,000 instances by stratified sampling.
    Ijcnn1,
}

impl PaperDataset {
    /// All datasets in Table 1 order.
    pub const ALL: [PaperDataset; 3] = [
        PaperDataset::Mnist26,
        PaperDataset::BreastCancer,
        PaperDataset::Ijcnn1,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            PaperDataset::Mnist26 => "MNIST2-6",
            PaperDataset::BreastCancer => "breast-cancer",
            PaperDataset::Ijcnn1 => "ijcnn1",
        }
    }

    /// The synthetic specification standing in for this dataset.
    pub fn spec(&self) -> SyntheticSpec {
        match self {
            PaperDataset::Mnist26 => SyntheticSpec::mnist2_6_like(),
            PaperDataset::BreastCancer => SyntheticSpec::breast_cancer_like(),
            PaperDataset::Ijcnn1 => SyntheticSpec::ijcnn1_like(),
        }
    }

    /// Generates the dataset at the given scale factor, applying the same
    /// preprocessing as the paper: `[0, 1]` normalization for every dataset
    /// and the stratified reduction to half the instances for ijcnn1
    /// (20,000 → 10,000 in the paper).
    pub fn load(&self, scale: f64, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut dataset = self.spec().scaled(scale).generate(&mut rng);
        if *self == PaperDataset::Ijcnn1 {
            let target = (dataset.len() / 2).max(30);
            dataset = dataset
                .stratified_subsample(target, &mut rng)
                .expect("subsample target is valid");
        }
        dataset.normalize();
        dataset
    }

    /// Generates the dataset and splits it into train/test partitions
    /// (stratified, 80/20).
    pub fn load_split(&self, scale: f64, seed: u64) -> (Dataset, Dataset) {
        let dataset = self.load(scale, seed);
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(1));
        dataset.split_stratified(0.8, &mut rng)
    }

    /// Table 1 statistics of the generated dataset.
    pub fn stats(&self, scale: f64, seed: u64) -> DatasetStats {
        DatasetStats::of(&self.load(scale, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_the_paper() {
        assert_eq!(PaperDataset::Mnist26.name(), "MNIST2-6");
        assert_eq!(PaperDataset::BreastCancer.name(), "breast-cancer");
        assert_eq!(PaperDataset::Ijcnn1.name(), "ijcnn1");
    }

    #[test]
    fn ijcnn_is_halved_by_the_stratified_reduction() {
        let full = PaperDataset::Ijcnn1.spec().scaled(0.05);
        let loaded = PaperDataset::Ijcnn1.load(0.05, 3);
        assert_eq!(loaded.len(), full.instances / 2);
    }

    #[test]
    fn splits_are_deterministic_per_seed() {
        let (a_train, a_test) = PaperDataset::BreastCancer.load_split(0.3, 7);
        let (b_train, b_test) = PaperDataset::BreastCancer.load_split(0.3, 7);
        assert_eq!(a_train, b_train);
        assert_eq!(a_test, b_test);
        assert!(!a_test.is_empty());
    }

    #[test]
    fn stats_report_paper_shapes() {
        let stats = PaperDataset::BreastCancer.stats(1.0, 1);
        assert_eq!(stats.features, 30);
        assert_eq!(stats.instances, 569);
        let stats = PaperDataset::Mnist26.stats(0.02, 1);
        assert_eq!(stats.features, 784);
    }
}
