//! Reporting helpers shared by the experiment binaries: console tables and
//! machine-readable JSON dumps under `results/`.

use serde::Serialize;
use std::path::{Path, PathBuf};

/// Directory where experiment results are written (`results/` under the
/// current working directory).
pub fn results_dir() -> PathBuf {
    PathBuf::from("results")
}

/// Serializes a result structure to `results/<name>.json`, creating the
/// directory if needed. Failures are reported on stderr but never abort the
/// experiment (the console output remains the primary artefact).
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if let Err(err) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: could not create {}: {err}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(err) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {err}", path.display());
            } else {
                println!("[saved {}]", path.display());
            }
        }
        Err(err) => eprintln!("warning: could not serialize {name}: {err}"),
    }
}

/// Prints a section header in the style used by all experiment binaries.
pub fn print_header(title: &str) {
    println!();
    println!("{}", "=".repeat(title.len().max(8)));
    println!("{title}");
    println!("{}", "=".repeat(title.len().max(8)));
}

/// Writes a grayscale image (`values` in `[0, 1]`, row-major) as an ASCII
/// rendering; used to visualize forged MNIST-like instances (Figure 5)
/// without any image dependency.
pub fn ascii_image(values: &[f64], side: usize) -> String {
    const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut out = String::with_capacity((side + 1) * side);
    for row in 0..side {
        for col in 0..side {
            let value = values.get(row * side + col).copied().unwrap_or(0.0).clamp(0.0, 1.0);
            let shade = (value * (SHADES.len() - 1) as f64).round() as usize;
            out.push(SHADES[shade]);
        }
        out.push('\n');
    }
    out
}

/// Writes a binary PGM (P2 ASCII variant) image file for a `[0, 1]`-valued
/// row-major pixel buffer. Returns the written path.
pub fn write_pgm(values: &[f64], side: usize, path: &Path) -> std::io::Result<()> {
    let mut content = format!("P2\n{side} {side}\n255\n");
    for row in 0..side {
        for col in 0..side {
            let value = values.get(row * side + col).copied().unwrap_or(0.0).clamp(0.0, 1.0);
            content.push_str(&format!("{} ", (value * 255.0).round() as u8));
        }
        content.push('\n');
    }
    std::fs::write(path, content)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_image_has_one_row_per_line() {
        let image = ascii_image(&[0.0, 1.0, 0.5, 0.25], 2);
        let lines: Vec<&str> = image.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 2);
        assert!(lines[0].contains('@'));
    }

    #[test]
    fn ascii_image_clamps_out_of_range_values() {
        let image = ascii_image(&[-3.0, 7.0], 1);
        assert!(image.starts_with(' ') || image.starts_with('@'));
    }

    #[test]
    fn pgm_writer_produces_a_valid_header() {
        let dir = std::env::temp_dir().join("wdte-pgm-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("img.pgm");
        write_pgm(&[0.0, 0.5, 1.0, 0.25], 2, &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("P2\n2 2\n255\n"));
        assert!(content.contains("255"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
