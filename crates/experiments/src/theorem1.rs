//! Empirical validation of Theorem 1 (the 3SAT → forgery reduction).
//!
//! Not a table or figure of the paper, but a direct check of its central
//! theoretical claim: random 3CNF formulas are converted into tree
//! ensembles, and the forgery solver's verdict is compared against a
//! reference DPLL SAT solver. Agreement on every instance means the
//! reduction (and the solver substrate standing in for Z3) behaves exactly
//! as the proof requires.

use serde::{Deserialize, Serialize};
use std::time::Instant;
use wdte_solver::{
    cnf_to_ensemble, solve_via_forgery, Cnf, DpllSolver, ReductionOutcome, SatResult, SolverConfig,
};

/// Result of one reduction check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReductionCheck {
    /// Number of propositional variables.
    pub variables: usize,
    /// Number of clauses.
    pub clauses: usize,
    /// Verdict of the reference DPLL solver.
    pub dpll_satisfiable: bool,
    /// Verdict of the forgery-based decision procedure.
    pub forgery_satisfiable: Option<bool>,
    /// Whether the two verdicts agree.
    pub agree: bool,
    /// Wall-clock milliseconds of the forgery-based procedure.
    pub forgery_ms: f64,
    /// Total leaves of the reduced ensemble (the size driver of forgery
    /// difficulty).
    pub ensemble_leaves: usize,
}

/// Runs the reduction check over a grid of clause/variable ratios.
pub fn run_reduction_checks<R: rand::Rng + ?Sized>(rounds: usize, rng: &mut R) -> Vec<ReductionCheck> {
    let mut checks = Vec::new();
    for round in 0..rounds {
        let variables = 4 + round % 5;
        let clauses = 3 + (round % 8) * 3;
        let formula = Cnf::random(variables, clauses, rng);
        checks.push(check_formula(&formula));
    }
    checks
}

/// Checks a single formula.
pub fn check_formula(formula: &Cnf) -> ReductionCheck {
    let dpll = DpllSolver.solve(formula);
    let ensemble = cnf_to_ensemble(formula);
    let start = Instant::now();
    let forgery = solve_via_forgery(formula, SolverConfig::default());
    let forgery_ms = start.elapsed().as_secs_f64() * 1000.0;
    let dpll_satisfiable = matches!(dpll, SatResult::Satisfiable(_));
    let forgery_satisfiable = match forgery {
        ReductionOutcome::Satisfiable(_) => Some(true),
        ReductionOutcome::Unsatisfiable => Some(false),
        ReductionOutcome::Unknown => None,
    };
    let agree = forgery_satisfiable == Some(dpll_satisfiable);
    ReductionCheck {
        variables: formula.num_variables,
        clauses: formula.clauses.len(),
        dpll_satisfiable,
        forgery_satisfiable,
        agree,
        forgery_ms,
        ensemble_leaves: ensemble.total_leaves(),
    }
}

/// Prints the reduction checks.
pub fn print_reduction_checks(checks: &[ReductionCheck]) {
    println!(
        "{:>6} {:>8} {:>8} {:>10} {:>8} {:>12} {:>10}",
        "vars", "clauses", "DPLL", "forgery", "agree", "forgery ms", "leaves"
    );
    for check in checks {
        println!(
            "{:>6} {:>8} {:>8} {:>10} {:>8} {:>12.2} {:>10}",
            check.variables,
            check.clauses,
            if check.dpll_satisfiable { "SAT" } else { "UNSAT" },
            match check.forgery_satisfiable {
                Some(true) => "SAT",
                Some(false) => "UNSAT",
                None => "unknown",
            },
            if check.agree { "yes" } else { "NO" },
            check.forgery_ms,
            check.ensemble_leaves
        );
    }
    let agreeing = checks.iter().filter(|c| c.agree).count();
    println!("agreement: {agreeing}/{} instances", checks.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn reduction_agrees_with_dpll_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(2024);
        let checks = run_reduction_checks(12, &mut rng);
        assert_eq!(checks.len(), 12);
        assert!(
            checks.iter().all(|c| c.agree),
            "reduction must agree with DPLL on every instance"
        );
        assert!(checks.iter().any(|c| c.dpll_satisfiable));
        assert!(checks.iter().all(|c| c.ensemble_leaves >= c.clauses));
    }

    #[test]
    fn paper_example_checks_out() {
        let check = check_formula(&Cnf::paper_example());
        assert!(check.dpll_satisfiable);
        assert_eq!(check.forgery_satisfiable, Some(true));
        assert!(check.agree);
    }
}
