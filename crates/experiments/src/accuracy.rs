//! Accuracy experiments (Section 4.1): Table 1, Figure 3a and Figure 3b.

use crate::datasets::PaperDataset;
use crate::settings::ExperimentSettings;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use wdte_core::{Signature, Watermarker};
use wdte_data::DatasetStats;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Dataset name.
    pub dataset: String,
    /// Number of instances after preprocessing.
    pub instances: usize,
    /// Number of features.
    pub features: usize,
    /// Class distribution rendered like the paper (`"51%/49%"`).
    pub distribution: String,
}

/// Regenerates Table 1 (dataset statistics).
pub fn table1(settings: &ExperimentSettings) -> Vec<Table1Row> {
    PaperDataset::ALL
        .iter()
        .map(|&dataset| {
            let stats: DatasetStats = dataset.stats(settings.dataset_scale(dataset), settings.seed);
            Table1Row {
                dataset: dataset.name().to_string(),
                instances: stats.instances,
                features: stats.features,
                distribution: stats.distribution_string(),
            }
        })
        .collect()
}

/// Prints Table 1 in the paper's layout.
pub fn print_table1(rows: &[Table1Row]) {
    println!(
        "{:<15} {:>10} {:>10} {:>14}",
        "Dataset", "Instances", "Features", "Distribution"
    );
    for row in rows {
        println!(
            "{:<15} {:>10} {:>10} {:>14}",
            row.dataset, row.instances, row.features, row.distribution
        );
    }
}

/// One measurement point of Figure 3a or 3b: watermarked vs standard test
/// accuracy for a given sweep value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyPoint {
    /// Dataset name.
    pub dataset: String,
    /// Sweep value: the trigger-set fraction (Figure 3a) or the percentage
    /// of 1 bits in the signature (Figure 3b).
    pub sweep_value: f64,
    /// Test accuracy of the watermarked model.
    pub watermarked_accuracy: f64,
    /// Test accuracy of a standard model trained with the same pipeline.
    pub standard_accuracy: f64,
    /// Whether the embedding reached full compliance on the trigger set.
    pub compliant: bool,
}

/// Sweep values of Figure 3a (trigger-set fraction of the training set).
pub fn figure3a_sweep(settings: &ExperimentSettings) -> Vec<f64> {
    if settings.full_scale {
        vec![0.010, 0.015, 0.020, 0.025, 0.030, 0.035, 0.040]
    } else {
        vec![0.010, 0.020, 0.030, 0.040]
    }
}

/// Sweep values of Figure 3b (percentage of bits set to 1).
pub fn figure3b_sweep(settings: &ExperimentSettings) -> Vec<f64> {
    if settings.full_scale {
        vec![0.10, 0.20, 0.30, 0.40, 0.50, 0.60]
    } else {
        vec![0.10, 0.30, 0.50, 0.60]
    }
}

/// Runs one accuracy measurement: embed a watermark with the given trigger
/// fraction and share of 1-bits, and compare against the standard baseline.
/// `sweep_value` is the x-axis value recorded for the figure being produced
/// (trigger fraction for Figure 3a, ones percentage for Figure 3b).
pub fn accuracy_point(
    settings: &ExperimentSettings,
    dataset: PaperDataset,
    trigger_fraction: f64,
    ones_fraction: f64,
    sweep_value: f64,
    seed_offset: u64,
) -> AccuracyPoint {
    let (train, test) = dataset.load_split(settings.dataset_scale(dataset), settings.seed);
    let mut rng = SmallRng::seed_from_u64(settings.seed ^ (seed_offset.wrapping_mul(0x9E37_79B9)));
    let mut config = settings.watermark_config(dataset);
    config.trigger_fraction = trigger_fraction;
    let num_trees = config.num_trees;
    let signature = Signature::random(num_trees, ones_fraction, &mut rng);
    let watermarker = Watermarker::new(config);
    let outcome = watermarker
        .embed(&train, &signature, &mut rng)
        .expect("embedding with non-strict config always returns a model");
    let baseline = watermarker.train_baseline(&train, &mut rng);
    let compliant = outcome.diagnostics.t0.as_ref().is_none_or(|d| d.compliant)
        && outcome.diagnostics.t1.as_ref().is_none_or(|d| d.compliant);
    AccuracyPoint {
        dataset: dataset.name().to_string(),
        sweep_value,
        watermarked_accuracy: outcome.model.accuracy(&test),
        standard_accuracy: baseline.accuracy(&test),
        compliant,
    }
}

/// Regenerates Figure 3a: accuracy vs trigger-set size for a fixed 50%-ones
/// signature.
pub fn figure3a(settings: &ExperimentSettings) -> Vec<AccuracyPoint> {
    let mut points = Vec::new();
    for &dataset in &PaperDataset::ALL {
        for (i, &fraction) in figure3a_sweep(settings).iter().enumerate() {
            points.push(accuracy_point(
                settings,
                dataset,
                fraction,
                0.5,
                fraction,
                i as u64 + 1,
            ));
        }
    }
    points
}

/// Regenerates Figure 3b: accuracy vs share of 1-bits for a fixed 2% trigger
/// set.
pub fn figure3b(settings: &ExperimentSettings) -> Vec<AccuracyPoint> {
    let mut points = Vec::new();
    for &dataset in &PaperDataset::ALL {
        for (i, &ones) in figure3b_sweep(settings).iter().enumerate() {
            points.push(accuracy_point(
                settings,
                dataset,
                0.02,
                ones,
                ones,
                100 + i as u64,
            ));
        }
    }
    points
}

/// Prints an accuracy sweep as the series the paper plots.
pub fn print_accuracy_series(points: &[AccuracyPoint], sweep_label: &str) {
    println!(
        "{:<15} {:>12} {:>12} {:>12} {:>10}",
        "Dataset", sweep_label, "WM RF", "Standard RF", "Compliant"
    );
    for point in points {
        println!(
            "{:<15} {:>12.3} {:>12.4} {:>12.4} {:>10}",
            point.dataset,
            point.sweep_value,
            point.watermarked_accuracy,
            point.standard_accuracy,
            if point.compliant { "yes" } else { "no" }
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_settings() -> ExperimentSettings {
        ExperimentSettings {
            seed: 11,
            ..ExperimentSettings::laptop()
        }
    }

    #[test]
    fn table1_has_three_rows_with_paper_feature_counts() {
        let rows = table1(&tiny_settings());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].features, 784);
        assert_eq!(rows[1].features, 30);
        assert_eq!(rows[2].features, 22);
        assert!(rows.iter().all(|r| r.distribution.contains('%')));
    }

    #[test]
    fn sweeps_match_the_paper_ranges_at_full_scale() {
        let full = ExperimentSettings::full();
        assert_eq!(figure3a_sweep(&full).len(), 7);
        assert_eq!(figure3b_sweep(&full), vec![0.10, 0.20, 0.30, 0.40, 0.50, 0.60]);
    }

    #[test]
    fn accuracy_point_on_the_small_dataset_behaves_like_the_paper() {
        // Only the smallest dataset is exercised in unit tests to keep the
        // suite fast; the binaries cover all three.
        let settings = tiny_settings();
        let point = accuracy_point(&settings, PaperDataset::BreastCancer, 0.02, 0.5, 0.02, 1);
        assert!(
            point.standard_accuracy > 0.85,
            "standard accuracy {}",
            point.standard_accuracy
        );
        assert!(
            point.standard_accuracy - point.watermarked_accuracy < 0.10,
            "accuracy drop too large: standard {} vs watermarked {}",
            point.standard_accuracy,
            point.watermarked_accuracy
        );
    }
}
