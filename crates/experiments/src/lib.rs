//! # wdte-experiments
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation section, plus two extra checks (suppression distinguisher and
//! Theorem 1 validation). Each experiment is a library function paired with
//! a thin binary:
//!
//! | Paper artefact | Module | Binary |
//! |----------------|--------|--------|
//! | Table 1 (dataset statistics) | [`accuracy::table1`] | `table1` |
//! | Figure 3a (accuracy vs trigger size) | [`accuracy::figure3a`] | `fig3a` |
//! | Figure 3b (accuracy vs share of 1-bits) | [`accuracy::figure3b`] | `fig3b` |
//! | Table 2 (watermark detection) | [`security::table2_rows`] | `table2` |
//! | Figure 4 (forged trigger size vs ε) | [`security::figure4`] | `fig4` |
//! | Figure 5 (forged instances) | [`security::figure5`] | `fig5` |
//! | Suppression analysis (§3.3) | [`security::suppression_row`] | `suppression` |
//! | Theorem 1 validation | [`theorem1`] | `theorem1` |
//! | k-class sweep (beyond the paper) | [`multiclass`] | `multiclass` |
//!
//! All binaries accept `--full` for paper-scale parameters and default to a
//! laptop-sized configuration that preserves the qualitative trends; see
//! [`settings::ExperimentSettings`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod datasets;
pub mod multiclass;
pub mod report;
pub mod security;
pub mod settings;
pub mod theorem1;

pub use datasets::PaperDataset;
pub use settings::ExperimentSettings;
