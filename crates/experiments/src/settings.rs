//! Experiment scaling and command-line configuration.
//!
//! The paper's full-scale configuration (13,866-instance MNIST2-6, 90-tree
//! ensembles, grid search, ten fake signatures for the forgery attack) is
//! reproducible but takes hours on a laptop; the default "laptop" settings
//! shrink the datasets and ensembles while preserving every qualitative
//! trend. `--full` switches to paper-scale parameters.

use crate::datasets::PaperDataset;
use serde::{Deserialize, Serialize};
use wdte_core::{WatermarkConfig, WeightSchedule};
use wdte_solver::SolverConfig;
use wdte_trees::{FeatureSubset, ParamGrid, TreeParams};

/// Scaling configuration shared by every experiment binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSettings {
    /// `true` for paper-scale parameters.
    pub full_scale: bool,
    /// Master seed; every experiment derives its own sub-seeds from it.
    pub seed: u64,
    /// Number of fake signatures for the forgery attack.
    pub forgery_signatures: usize,
    /// Cap on test instances attempted per fake signature (None = all).
    pub forgery_max_instances: Option<usize>,
    /// Per-instance solver time budget in milliseconds.
    pub solver_time_ms: u64,
}

impl ExperimentSettings {
    /// Laptop-sized defaults.
    pub fn laptop() -> Self {
        Self {
            full_scale: false,
            seed: 2025,
            forgery_signatures: 4,
            forgery_max_instances: Some(40),
            solver_time_ms: 1_000,
        }
    }

    /// Paper-scale settings.
    pub fn full() -> Self {
        Self {
            full_scale: true,
            seed: 2025,
            forgery_signatures: 10,
            forgery_max_instances: None,
            solver_time_ms: 30_000,
        }
    }

    /// Parses settings from process arguments: `--full`, `--seed N`,
    /// `--signatures N`, `--max-instances N`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::from_arg_slice(&args)
    }

    /// Parses settings from an explicit argument slice (testable variant of
    /// [`Self::from_args`]).
    pub fn from_arg_slice(args: &[String]) -> Self {
        let mut settings = if args.iter().any(|a| a == "--full") {
            Self::full()
        } else {
            Self::laptop()
        };
        for (position, arg) in args.iter().enumerate() {
            let next = args.get(position + 1);
            match arg.as_str() {
                "--seed" => {
                    if let Some(value) = next.and_then(|v| v.parse::<u64>().ok()) {
                        settings.seed = value;
                    }
                }
                "--time-ms" => {
                    if let Some(value) = next.and_then(|v| v.parse::<u64>().ok()) {
                        settings.solver_time_ms = value;
                    }
                }
                "--signatures" => {
                    if let Some(value) = next.and_then(|v| v.parse::<usize>().ok()) {
                        settings.forgery_signatures = value;
                    }
                }
                "--max-instances" => {
                    if let Some(value) = next.and_then(|v| v.parse::<usize>().ok()) {
                        settings.forgery_max_instances = Some(value);
                    }
                }
                _ => {}
            }
        }
        settings
    }

    /// Dataset scale factor for one of the paper datasets.
    pub fn dataset_scale(&self, dataset: PaperDataset) -> f64 {
        if self.full_scale {
            return 1.0;
        }
        match dataset {
            PaperDataset::Mnist26 => 0.06,
            PaperDataset::BreastCancer => 1.0,
            PaperDataset::Ijcnn1 => 0.10,
        }
    }

    /// Ensemble size used for one of the paper datasets (the per-dataset
    /// tree counts implied by Table 2: 90 / 70 / 80).
    pub fn num_trees(&self, dataset: PaperDataset) -> usize {
        if self.full_scale {
            match dataset {
                PaperDataset::Mnist26 => 90,
                PaperDataset::BreastCancer => 70,
                PaperDataset::Ijcnn1 => 80,
            }
        } else {
            match dataset {
                PaperDataset::Mnist26 => 24,
                PaperDataset::BreastCancer => 20,
                PaperDataset::Ijcnn1 => 20,
            }
        }
    }

    /// Watermarking configuration for one of the paper datasets.
    pub fn watermark_config(&self, dataset: PaperDataset) -> WatermarkConfig {
        if self.full_scale {
            WatermarkConfig {
                num_trees: self.num_trees(dataset),
                trigger_fraction: 0.02,
                feature_subset: FeatureSubset::Sqrt,
                grid: Some(ParamGrid::default()),
                grid_folds: 3,
                tree_params: TreeParams::default(),
                adjust_hyperparams: true,
                weight_schedule: WeightSchedule::Additive(1.0),
                max_weight_rounds: 60,
                relax_after: 20,
                strict: false,
            }
        } else {
            WatermarkConfig {
                num_trees: self.num_trees(dataset),
                trigger_fraction: 0.02,
                feature_subset: FeatureSubset::Sqrt,
                grid: None,
                grid_folds: 2,
                tree_params: TreeParams {
                    max_depth: Some(10),
                    max_leaves: Some(128),
                    ..TreeParams::default()
                },
                adjust_hyperparams: true,
                weight_schedule: WeightSchedule::Multiplicative(3.0),
                max_weight_rounds: 25,
                relax_after: 8,
                strict: false,
            }
        }
    }

    /// Constraint-solver budget for the forgery experiments.
    pub fn solver_config(&self) -> SolverConfig {
        SolverConfig {
            max_nodes: if self.full_scale { 5_000_000 } else { 300_000 },
            time_budget_ms: self.solver_time_ms,
            domain: Some((0.0, 1.0)),
        }
    }
}

impl Default for ExperimentSettings {
    fn default() -> Self {
        Self::laptop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_is_laptop_scale() {
        let settings = ExperimentSettings::default();
        assert!(!settings.full_scale);
        assert!(settings.dataset_scale(PaperDataset::Mnist26) < 0.2);
        assert_eq!(settings.dataset_scale(PaperDataset::BreastCancer), 1.0);
        assert!(settings.num_trees(PaperDataset::Mnist26) <= 32);
    }

    #[test]
    fn full_flag_switches_to_paper_scale() {
        let settings = ExperimentSettings::from_arg_slice(&args(&["bin", "--full"]));
        assert!(settings.full_scale);
        assert_eq!(settings.num_trees(PaperDataset::Mnist26), 90);
        assert_eq!(settings.num_trees(PaperDataset::BreastCancer), 70);
        assert_eq!(settings.num_trees(PaperDataset::Ijcnn1), 80);
        assert_eq!(settings.dataset_scale(PaperDataset::Ijcnn1), 1.0);
        assert_eq!(settings.forgery_signatures, 10);
        let config = settings.watermark_config(PaperDataset::Mnist26);
        assert!(config.grid.is_some());
        assert!(matches!(config.weight_schedule, WeightSchedule::Additive(_)));
    }

    #[test]
    fn numeric_overrides_are_parsed() {
        let settings = ExperimentSettings::from_arg_slice(&args(&[
            "bin",
            "--seed",
            "7",
            "--signatures",
            "3",
            "--max-instances",
            "12",
            "--time-ms",
            "500",
        ]));
        assert_eq!(settings.seed, 7);
        assert_eq!(settings.forgery_signatures, 3);
        assert_eq!(settings.forgery_max_instances, Some(12));
        assert_eq!(settings.solver_time_ms, 500);
    }

    #[test]
    fn watermark_config_matches_tree_count() {
        let settings = ExperimentSettings::laptop();
        for dataset in PaperDataset::ALL {
            let config = settings.watermark_config(dataset);
            assert_eq!(config.num_trees, settings.num_trees(dataset));
            assert!((config.trigger_fraction - 0.02).abs() < 1e-12);
        }
    }
}
