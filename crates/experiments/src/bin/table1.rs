//! Regenerates Table 1: dataset statistics.
use wdte_experiments::accuracy::{print_table1, table1};
use wdte_experiments::report::{print_header, save_json};
use wdte_experiments::ExperimentSettings;

fn main() {
    let settings = ExperimentSettings::from_args();
    print_header("Table 1: dataset statistics");
    let rows = table1(&settings);
    print_table1(&rows);
    save_json("table1", &rows);
}
