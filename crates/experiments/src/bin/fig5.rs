//! Regenerates Figure 5: forged MNIST-like instances for increasing ε,
//! rendered as ASCII art and PGM files, plus the accuracy of a standard
//! ensemble on the original vs forged trigger sets.
use wdte_experiments::report::{ascii_image, print_header, results_dir, save_json, write_pgm};
use wdte_experiments::security::{figure5, prepare_security_setup};
use wdte_experiments::{ExperimentSettings, PaperDataset};

fn main() {
    let settings = ExperimentSettings::from_args();
    print_header("Figure 5: forged instances for epsilon in {0.3, 0.5, 0.7}");
    let setup = prepare_security_setup(&settings, PaperDataset::Mnist26);
    let examples = figure5(&settings, &setup);
    let side = (setup.test.num_features() as f64).sqrt().round() as usize;
    std::fs::create_dir_all(results_dir()).ok();
    for example in &examples {
        println!(
            "epsilon {:.1}: distortion {:.3}, baseline accuracy original trigger {:.2} vs forged trigger {:.2}",
            example.epsilon,
            example.distortion,
            example.baseline_accuracy_on_original_trigger,
            example.baseline_accuracy_on_forged_trigger
        );
        println!("{}", ascii_image(&example.instance, side));
        let path = results_dir().join(format!("fig5_eps{:.1}.pgm", example.epsilon));
        if write_pgm(&example.instance, side, &path).is_ok() {
            println!("[saved {}]", path.display());
        }
    }
    if examples.is_empty() {
        println!("no instance could be forged at the configured budget; rerun with --full or a larger --time-ms");
    }
    save_json("fig5", &examples);
}
