//! Extra experiment: validates the 3SAT → forgery reduction of Theorem 1 by
//! comparing the forgery-based decision procedure against a DPLL solver on
//! random 3CNF instances.
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte_experiments::report::{print_header, save_json};
use wdte_experiments::theorem1::{print_reduction_checks, run_reduction_checks};
use wdte_experiments::ExperimentSettings;

fn main() {
    let settings = ExperimentSettings::from_args();
    print_header("Theorem 1 validation: 3SAT vs forgery reduction");
    let rounds = if settings.full_scale { 60 } else { 24 };
    let mut rng = SmallRng::seed_from_u64(settings.seed);
    let checks = run_reduction_checks(rounds, &mut rng);
    print_reduction_checks(&checks);
    save_json("theorem1", &checks);
}
