//! Regenerates Figure 3b: test accuracy of watermarked vs standard random
//! forests while the share of 1-bits in the signature sweeps.
use wdte_experiments::accuracy::{figure3b, print_accuracy_series};
use wdte_experiments::report::{print_header, save_json};
use wdte_experiments::ExperimentSettings;

fn main() {
    let settings = ExperimentSettings::from_args();
    print_header("Figure 3b: accuracy vs % of 1-bits (trigger set = 2% of training data)");
    let points = figure3b(&settings);
    print_accuracy_series(&points, "% bit 1");
    save_json("fig3b", &points);
}
