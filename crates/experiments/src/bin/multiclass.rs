//! Runs the k-class sweep: for each `k` in {2, 3, 5, 10}, generate a
//! synthetic k-class dataset, embed a watermark, persist and reload the
//! model, serve it from a dispute service and verify the owner's claim.
use wdte_experiments::multiclass::{multiclass_sweep, print_multiclass};
use wdte_experiments::report::{print_header, save_json};
use wdte_experiments::ExperimentSettings;

fn main() {
    let settings = ExperimentSettings::from_args();
    print_header("Multi-class sweep: embed -> persist -> serve -> verify for k in {2, 3, 5, 10}");
    let rows = multiclass_sweep(&settings);
    print_multiclass(&rows);
    save_json("multiclass", &rows);
    for row in &rows {
        assert!(
            row.watermark_holds,
            "watermark must hold for k={}",
            row.num_classes
        );
        assert!(
            row.persisted_round_trip,
            "persistence must round-trip for k={}",
            row.num_classes
        );
        assert!(
            row.claim_verified,
            "genuine claim must verify for k={}",
            row.num_classes
        );
    }
    println!("\nAll {} sweep entries verified end to end.", rows.len());
}
