//! Extra experiment: quantifies the watermark-suppression claim of §3.3 by
//! measuring how well a distinguisher separates trigger queries from
//! ordinary test queries (AUC ≈ 0.5 means indistinguishable).
//!
//! The datasets are independent grid points: each derives its RNG stream
//! from the settings seed and the dataset alone, so fanning them out
//! across worker threads is bit-identical to the serial sweep.
use rayon::prelude::*;
use wdte_experiments::report::{print_header, save_json};
use wdte_experiments::security::{prepare_security_setup, print_suppression, suppression_row};
use wdte_experiments::{ExperimentSettings, PaperDataset};

fn main() {
    let settings = ExperimentSettings::from_args();
    print_header("Suppression analysis: trigger vs test distinguishability");
    let rows: Vec<_> = PaperDataset::ALL
        .par_iter()
        .map(|&dataset| suppression_row(&prepare_security_setup(&settings, dataset)))
        .collect();
    print_suppression(&rows);
    save_json("suppression", &rows);
}
