//! Regenerates Figure 3a: test accuracy of watermarked vs standard random
//! forests while the trigger-set fraction sweeps.
use wdte_experiments::accuracy::{figure3a, print_accuracy_series};
use wdte_experiments::report::{print_header, save_json};
use wdte_experiments::ExperimentSettings;

fn main() {
    let settings = ExperimentSettings::from_args();
    print_header("Figure 3a: accuracy vs |D_trigger| / |D_train| (signature 50% ones)");
    let points = figure3a(&settings);
    print_accuracy_series(&points, "trigger frac");
    save_json("fig3a", &points);
}
