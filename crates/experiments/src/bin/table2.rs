//! Regenerates Table 2: watermark detection attacks (mean±std bands and
//! sharp mean threshold) on per-tree depth and leaf counts.
use wdte_experiments::report::{print_header, save_json};
use wdte_experiments::security::{
    adjudicate_via_service, prepare_security_setup, print_table2, save_model_artifacts, table2_rows,
    write_model_manifest,
};
use wdte_experiments::{ExperimentSettings, PaperDataset};

fn main() {
    let settings = ExperimentSettings::from_args();
    print_header("Table 2: watermark detection (cells are 'bands / threshold')");
    let mut rows = Vec::new();
    let mut setups = Vec::new();
    let mut manifest_entries = Vec::new();
    for dataset in PaperDataset::ALL {
        let setup = prepare_security_setup(&settings, dataset);
        // The trained, watermarked models are expensive; persist them so
        // dispute tooling can reload them instead of retraining.
        manifest_entries.extend(save_model_artifacts(&setup));
        rows.extend(table2_rows(&setup));
        setups.push(setup);
    }
    // The manifest makes `results/models/` a warm-start directory: a judge
    // (`serve_judge --warm-start results/models`) boots from disk alone.
    write_model_manifest(manifest_entries);
    print_table2(&rows);
    save_json("table2", &rows);
    // The same models, served: one concurrent dispute docket over every
    // dataset's genuine claim.
    adjudicate_via_service(&setups);
}
