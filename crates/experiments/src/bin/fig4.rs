//! Regenerates Figure 4: forged trigger-set size as a function of the
//! distortion bound ε on the MNIST2-6 stand-in.
use wdte_experiments::report::{print_header, save_json};
use wdte_experiments::security::{figure4, prepare_security_setup, print_figure4};
use wdte_experiments::{ExperimentSettings, PaperDataset};

fn main() {
    let settings = ExperimentSettings::from_args();
    print_header("Figure 4: forged trigger-set size vs epsilon (MNIST2-6)");
    let setup = prepare_security_setup(&settings, PaperDataset::Mnist26);
    let points = figure4(&settings, &setup);
    print_figure4(&points);
    save_json("fig4", &points);
}
