//! Multi-class experiment driver: the end-to-end k-class sweep.
//!
//! The paper's protocol is stated for binary classifiers; the codebase
//! generalizes it to k classes with the deterministic label rotation
//! `(c + 1) mod k` taking the place of the label flip. This module drives
//! the whole k-class stack end to end for each `k` in the sweep:
//!
//! 1. **generate** a k-class synthetic dataset
//!    ([`wdte_data::synth::MultiClassSpec`]) and split it stratified;
//! 2. **embed** a random signature with the standard watermarking
//!    pipeline;
//! 3. **persist** the watermarked model to disk and reload it, proving
//!    the k-class artefact round-trips through the format-v2 codec;
//! 4. **serve** the reloaded model from a [`DisputeService`] and resolve
//!    the owner's genuine claim against it;
//! 5. **verify** that the watermark holds and report test-set quality as
//!    accuracy plus macro-averaged F1 over the k×k confusion matrix.

use crate::settings::ExperimentSettings;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use wdte_core::{
    persist, watermark_holds, DisputeService, OwnershipClaim, Signature, WatermarkConfig,
    WatermarkOutcome, Watermarker, WeightSchedule,
};
use wdte_data::metrics::ConfusionMatrix;
use wdte_data::synth::MultiClassSpec;
use wdte_data::{Dataset, Label};
use wdte_trees::{FeatureSubset, RandomForest, TreeParams};

/// The class counts exercised by the default sweep.
pub const K_SWEEP: [usize; 4] = [2, 3, 5, 10];

/// One row of the k-class sweep report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiClassRow {
    /// Number of classes `k`.
    pub num_classes: usize,
    /// Ensemble size (and signature length).
    pub num_trees: usize,
    /// Trigger-set size.
    pub trigger_size: usize,
    /// Test-set accuracy of the watermarked model.
    pub test_accuracy: f64,
    /// Macro-averaged F1 over the k×k confusion matrix.
    pub macro_f1: f64,
    /// Whether every tree honours its signature bit on the trigger set.
    pub watermark_holds: bool,
    /// Whether the persisted model reloaded bit-identically.
    pub persisted_round_trip: bool,
    /// Whether the dispute service verified the owner's genuine claim.
    pub claim_verified: bool,
    /// Signature bit agreement reported by the judge.
    pub bit_agreement: f64,
}

/// Watermarking configuration for the synthetic k-class workloads: the
/// laptop-scale pipeline with an ensemble size that keeps the sweep fast
/// while leaving room for a multi-bit signature.
pub fn multiclass_config(num_trees: usize) -> WatermarkConfig {
    WatermarkConfig {
        num_trees,
        trigger_fraction: 0.02,
        feature_subset: FeatureSubset::Sqrt,
        grid: None,
        grid_folds: 2,
        tree_params: TreeParams {
            max_depth: Some(10),
            max_leaves: Some(128),
            ..TreeParams::default()
        },
        adjust_hyperparams: true,
        weight_schedule: WeightSchedule::Multiplicative(3.0),
        max_weight_rounds: 25,
        relax_after: 8,
        strict: false,
    }
}

/// Embeds a watermark into a model trained on a fresh k-class synthetic
/// dataset, returning the outcome plus the held-out test split.
pub fn prepare_multiclass_setup(
    settings: &ExperimentSettings,
    num_classes: usize,
) -> (WatermarkOutcome, Dataset) {
    let mut rng = SmallRng::seed_from_u64(settings.seed.wrapping_mul(97) ^ num_classes as u64);
    let spec = if settings.full_scale {
        MultiClassSpec::k_class(num_classes).scaled(2.0)
    } else {
        MultiClassSpec::k_class(num_classes)
    };
    let dataset = spec.generate(&mut rng);
    let (train, test) = dataset.split_stratified(0.8, &mut rng);
    let num_trees = if settings.full_scale { 40 } else { 16 };
    let signature = Signature::random(num_trees, 0.5, &mut rng);
    let watermarker = Watermarker::new(multiclass_config(num_trees));
    let outcome = watermarker
        .embed(&train, &signature, &mut rng)
        .expect("non-strict embedding succeeds");
    (outcome, test)
}

/// Test-set accuracy and macro-F1 of a model via the k×k confusion matrix.
fn test_quality(model: &RandomForest, test: &Dataset) -> (f64, f64) {
    let truth: Vec<Label> = test.iter().map(|(_, label)| label).collect();
    let predicted: Vec<Label> = test.iter().map(|(instance, _)| model.predict(instance)).collect();
    let matrix = ConfusionMatrix::from_predictions_with_classes(&truth, &predicted, test.num_classes());
    (matrix.accuracy(), matrix.macro_f1())
}

/// Runs the full embed → persist → serve → verify pipeline for one `k`.
///
/// The model is persisted under `results/models-kclass/` and *reloaded
/// from disk* before serving, so the row exercises the persistence codec
/// and the dispute service on exactly the artefact a real deployment
/// would ship.
pub fn multiclass_row(settings: &ExperimentSettings, num_classes: usize) -> MultiClassRow {
    let (outcome, test) = prepare_multiclass_setup(settings, num_classes);
    let holds = watermark_holds(&outcome.model, &outcome.signature, &outcome.trigger_set);

    let dir = crate::report::results_dir().join("models-kclass");
    let path = dir.join(format!("synth-k{num_classes}.model.wdte"));
    let served = match std::fs::create_dir_all(&dir)
        .map_err(|err| err.to_string())
        .and_then(|()| {
            persist::save(&path, &outcome.model, persist::Format::Binary).map_err(|err| err.to_string())
        })
        .and_then(|()| persist::load::<RandomForest>(&path).map_err(|err| err.to_string()))
    {
        Ok(reloaded) => {
            println!("[saved {}]", path.display());
            Some(reloaded)
        }
        Err(err) => {
            eprintln!("warning: persistence round trip failed for k={num_classes}: {err}");
            None
        }
    };
    let round_trip = served.as_ref() == Some(&outcome.model);

    // Serve the *reloaded* artefact when the round trip worked, falling
    // back to the in-memory model so the sweep still reports a verdict.
    let service = DisputeService::builder().build().expect("an empty builder always builds");
    let model_id = format!("synth-k{num_classes}");
    service.register(&model_id, served.as_ref().unwrap_or(&outcome.model));
    let claim = OwnershipClaim::new(
        outcome.signature.clone(),
        outcome.trigger_set.clone(),
        test.clone(),
    );
    let report = service.resolve(&model_id, &claim).expect("the model was just registered");

    let (test_accuracy, macro_f1) = test_quality(&outcome.model, &test);
    MultiClassRow {
        num_classes,
        num_trees: outcome.model.num_trees(),
        trigger_size: outcome.trigger_set.len(),
        test_accuracy,
        macro_f1,
        watermark_holds: holds,
        persisted_round_trip: round_trip,
        claim_verified: report.verified,
        bit_agreement: report.bit_agreement,
    }
}

/// Runs the sweep over `K_SWEEP`.
pub fn multiclass_sweep(settings: &ExperimentSettings) -> Vec<MultiClassRow> {
    K_SWEEP.iter().map(|&k| multiclass_row(settings, k)).collect()
}

/// Prints the sweep rows as a console table.
pub fn print_multiclass(rows: &[MultiClassRow]) {
    println!(
        "{:>4} {:>7} {:>9} {:>10} {:>9} {:>7} {:>11} {:>9} {:>11}",
        "k",
        "trees",
        "|trigger|",
        "accuracy",
        "macro-F1",
        "holds",
        "round-trip",
        "verified",
        "agreement"
    );
    for row in rows {
        println!(
            "{:>4} {:>7} {:>9} {:>10.3} {:>9.3} {:>7} {:>11} {:>9} {:>11.3}",
            row.num_classes,
            row.num_trees,
            row.trigger_size,
            row.test_accuracy,
            row.macro_f1,
            row.watermark_holds,
            row.persisted_round_trip,
            row.claim_verified,
            row.bit_agreement
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_class_pipeline_runs_end_to_end() {
        let settings = ExperimentSettings {
            seed: 11,
            ..ExperimentSettings::laptop()
        };
        let row = multiclass_row(&settings, 3);
        assert_eq!(row.num_classes, 3);
        assert!(row.watermark_holds, "the embedded watermark must hold");
        assert!(
            row.persisted_round_trip,
            "persist must round-trip the 3-class model"
        );
        assert!(row.claim_verified, "the genuine claim must verify");
        assert!((row.bit_agreement - 1.0).abs() < 1e-12);
        // A learnable clustered workload should beat chance comfortably.
        assert!(
            row.test_accuracy > 1.0 / 3.0 + 0.1,
            "accuracy {}",
            row.test_accuracy
        );
        assert!(row.macro_f1 > 0.0);
    }

    #[test]
    fn binary_sweep_entry_matches_the_binary_protocol() {
        let settings = ExperimentSettings {
            seed: 13,
            ..ExperimentSettings::laptop()
        };
        let (outcome, _) = prepare_multiclass_setup(&settings, 2);
        // For k = 2 the rotation is exactly the paper's label flip, so the
        // binary verification path must agree with the k-aware one.
        for (i, (instance, label)) in outcome.trigger_set.iter().enumerate() {
            let required_binary =
                outcome.signature.required_prediction(i % outcome.signature.len(), label);
            let required_k =
                outcome.signature.required_prediction_k(i % outcome.signature.len(), label, 2);
            assert_eq!(required_binary, required_k);
            let _ = instance;
        }
    }
}
