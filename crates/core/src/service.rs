//! Concurrent dispute-resolution service.
//!
//! The paper's verification protocol is a judge-mediated batch interaction,
//! and the ROADMAP north star is serving dispute traffic at scale. The
//! one-shot [`crate::verify_ownership`] entry point recompiles the suspect
//! forest on every call — fine for a single dispute, wasteful for a judge
//! adjudicating many claims against the same deployment. [`DisputeService`]
//! closes that gap:
//!
//! * **Registry** — suspect models are registered under a caller-chosen id
//!   and compiled exactly once into a shared [`Arc<CompiledForest>`],
//!   however many claims are later resolved against them. Registration
//!   publishes the `Arc` only after compilation completes, so concurrent
//!   resolvers can never observe a partially compiled forest.
//! * **Concurrency** — [`DisputeService::resolve_many`] fans independent
//!   disputes out across the shared work-stealing pool, and every
//!   verification batch is itself sharded through
//!   [`CompiledForest::par_predict_all_batch`] — a genuinely two-level
//!   fan-out: the pool schedules one dispute's batch shards onto workers
//!   that finished their own disputes early, instead of serializing the
//!   inner level as the old chunk-and-join shim did. Results are stitched
//!   back in input order, so reports are bit-identical to the sequential
//!   path regardless of the worker-thread count.
//!
//! The service is `&self`-only and `Sync`: one instance can be shared
//! behind an `Arc` by any number of request threads.
//!
//! **Construction** goes through [`DisputeService::builder`], which also
//! warm-starts the registry from a directory of persisted model artefacts
//! (a [`ModelManifest`] written by the `table2` experiment), so a judge
//! process boots from disk alone:
//!
//! ```rust,ignore
//! let service = DisputeService::builder()
//!     .batch_shard_rows(128)
//!     .max_docket(1024)
//!     .warm_start_dir("results/models")
//!     .build()?;
//! ```

use crate::error::{WatermarkError, WatermarkResult};
use crate::persist;
use crate::proto::PayloadDigest;
use crate::tenant::{TenantId, TenantLedger, TenantQuotas, TenantStatsEntry};
use crate::verify::{verify_ownership, ModelOracle, OwnershipClaim, VerificationReport};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use wdte_data::{Dataset, Label};
use wdte_trees::{CompiledForest, Kernel, RandomForest};

/// Default number of verification-batch rows each worker shard handles.
/// Small enough to spread one large claim across every core, large enough
/// that the per-shard row copy is negligible next to the tree walks.
pub const DEFAULT_BATCH_SHARD_ROWS: usize = 256;

/// Default byte budget of the digest-keyed claim cache (256 MiB of claim
/// payload — roughly a few hundred typical claims).
pub const DEFAULT_CLAIM_CACHE_BYTES: usize = 256 << 20;

/// Fixed bookkeeping cost charged per cached claim on top of its payload
/// bytes, so per-tenant byte quotas account for what an entry *actually*
/// costs the judge: the 16-byte digest key stored twice (hash map + LRU
/// deque), the hash-map bucket, the `Arc` allocation header, and the
/// owner/model attribution sets. Deliberately a round, documented estimate
/// rather than `size_of` arithmetic, so the accounting is stable across
/// Rust versions and pinned by a unit test.
pub const CLAIM_ENTRY_OVERHEAD_BYTES: usize = 160;

/// Estimated resident bytes per compiled-forest node: the four SoA words
/// (feature, threshold, left, right = 20 bytes), the 24-byte packed
/// traversal record, and the per-level BFS layout the blocked/quantized
/// kernels walk (~28 bytes amortized).
const MODEL_NODE_FOOTPRINT_BYTES: usize = 72;

/// File name of the model manifest inside a warm-start directory.
pub const MODEL_MANIFEST_FILE: &str = "manifest.json";

/// Approximate resident footprint of one compiled forest, used by the
/// model-cache byte budget ([`DisputeServiceBuilder::model_cache_bytes`]).
fn model_footprint(compiled: &CompiledForest) -> usize {
    compiled.total_nodes() * MODEL_NODE_FOOTPRINT_BYTES + compiled.num_trees() * 16 + 512
}

/// One dispute filed with the judge: a claim against a registered model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dispute {
    /// Registry id of the suspect model.
    pub model_id: String,
    /// The owner's evidence.
    pub claim: OwnershipClaim,
}

impl Dispute {
    /// Builds a dispute against the model registered under `model_id`.
    pub fn new(model_id: impl Into<String>, claim: OwnershipClaim) -> Self {
        Self {
            model_id: model_id.into(),
            claim,
        }
    }
}

/// One dispute of a content-addressed docket, claims shared rather than
/// owned: the form the wire front-end hands to
/// [`DisputeService::resolve_docket_shared`] after resolving digest
/// references against the claim cache. The digest keys the deduplication —
/// two disputes with the same `(model_id, digest)` pair are resolved once
/// and share the verdict.
#[derive(Debug, Clone)]
pub struct SharedDispute {
    /// Registry id of the suspect model.
    pub model_id: String,
    /// Content digest of the claim (as computed by [`ClaimCache::insert`]).
    pub digest: PayloadDigest,
    /// The owner's evidence, shared with the cache.
    pub claim: Arc<OwnershipClaim>,
}

impl SharedDispute {
    /// Builds a shared dispute.
    pub fn new(model_id: impl Into<String>, digest: PayloadDigest, claim: Arc<OwnershipClaim>) -> Self {
        Self {
            model_id: model_id.into(),
            digest,
            claim,
        }
    }
}

/// Digest-keyed cache of claim bodies, the server half of the v2 wire
/// protocol's content addressing: a claim uploaded once is later
/// referenced by its [`PayloadDigest`] alone. Digests are always computed
/// *here*, from the bytes actually received — a peer cannot bind a digest
/// to content the judge never saw, so a poisoned entry would require a
/// digest collision, not a lying client.
///
/// Eviction is least-recently-used over a byte budget estimated from the
/// claim's dataset payloads (`0` = unlimited, matching the codebase's
/// 0-disables convention). Evicting an entry only drops the cache's
/// reference: in-flight resolutions holding the `Arc` finish unaffected,
/// and a peer that references an evicted digest is asked to re-upload via
/// `NeedPayload`.
#[derive(Debug)]
pub struct ClaimCache {
    budget_bytes: usize,
    inner: Mutex<ClaimCacheInner>,
}

#[derive(Debug, Default)]
struct ClaimCacheInner {
    map: HashMap<PayloadDigest, ClaimEntry>,
    /// Digests in least-recently-used-first order.
    order: VecDeque<PayloadDigest>,
    bytes: usize,
    /// Bytes attributed to each tenant: every owner of an entry is charged
    /// its full footprint (each of them uploaded it independently), so a
    /// tenant's attributed bytes never shrink because someone *else*
    /// uploaded the same claim.
    tenant_bytes: HashMap<TenantId, usize>,
}

#[derive(Debug)]
struct ClaimEntry {
    claim: Arc<OwnershipClaim>,
    footprint: usize,
    /// Tenants charged for this entry.
    owners: HashSet<TenantId>,
    /// Models the claim has been adjudicated against, for
    /// [`ClaimCache::drop_model`].
    models: HashSet<(TenantId, String)>,
}

/// Approximate heap footprint of a claim: the dataset payloads dominate
/// (8 bytes per feature value), signature and labels are rounding error
/// but counted for claims with degenerate shapes, plus the fixed
/// per-entry bookkeeping cost [`CLAIM_ENTRY_OVERHEAD_BYTES`].
fn claim_footprint(claim: &OwnershipClaim) -> usize {
    let dataset = |d: &Dataset| d.len() * (d.num_features() * 8 + 1);
    dataset(&claim.trigger_set)
        + dataset(&claim.test_set)
        + claim.signature.len()
        + CLAIM_ENTRY_OVERHEAD_BYTES
}

impl ClaimCache {
    /// Creates a cache with the given byte budget (`0` = unlimited).
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            inner: Mutex::new(ClaimCacheInner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ClaimCacheInner> {
        self.inner.lock().expect("claim cache lock is never poisoned")
    }

    /// Inserts a claim, computing its digest from the content, and returns
    /// the digest with the (possibly pre-existing) shared body. Re-inserting
    /// an equal claim refreshes its recency instead of duplicating it.
    /// Attributes the bytes to the anonymous tenant with no quota — the
    /// in-process path; the wire front-end uses
    /// [`insert_for`](Self::insert_for).
    pub fn insert(&self, claim: OwnershipClaim) -> (PayloadDigest, Arc<OwnershipClaim>) {
        self.insert_for(&TenantId::anonymous(), &TenantQuotas::default(), claim)
            .expect("unlimited quotas never refuse an insert")
    }

    /// [`insert`](Self::insert) with per-tenant attribution: the tenant's
    /// `max_claim_bytes` quota is checked against its *attributed* bytes
    /// **before** the claim body is allocated into the cache, and refused
    /// inserts leave the cache untouched. Re-inserting a claim another
    /// tenant already uploaded charges this tenant too (content is shared,
    /// accountability is not).
    pub fn insert_for(
        &self,
        tenant: &TenantId,
        quotas: &TenantQuotas,
        claim: OwnershipClaim,
    ) -> WatermarkResult<(PayloadDigest, Arc<OwnershipClaim>)> {
        let digest = PayloadDigest::of_claim(&claim);
        let footprint = claim_footprint(&claim);
        let mut inner = self.lock();
        let already_owner = inner.map.get(&digest).is_some_and(|entry| entry.owners.contains(tenant));
        if !already_owner {
            let held = inner.tenant_bytes.get(tenant).copied().unwrap_or(0);
            quotas.check_claim_bytes(held + footprint)?;
        }
        if let Some(shared) = {
            let ClaimCacheInner {
                map, tenant_bytes, ..
            } = &mut *inner;
            map.get_mut(&digest).map(|entry| {
                if entry.owners.insert(tenant.clone()) {
                    *tenant_bytes.entry(tenant.clone()).or_insert(0) += entry.footprint;
                }
                Arc::clone(&entry.claim)
            })
        } {
            Self::touch(&mut inner, digest);
            return Ok((digest, shared));
        }
        let shared = Arc::new(claim);
        inner.map.insert(
            digest,
            ClaimEntry {
                claim: Arc::clone(&shared),
                footprint,
                owners: HashSet::from([tenant.clone()]),
                models: HashSet::new(),
            },
        );
        inner.order.push_back(digest);
        inner.bytes += footprint;
        *inner.tenant_bytes.entry(tenant.clone()).or_insert(0) += footprint;
        if self.budget_bytes > 0 {
            while inner.bytes > self.budget_bytes {
                let Some(oldest) = inner.order.pop_front() else {
                    break;
                };
                Self::drop_entry(&mut inner, &oldest);
            }
        }
        Ok((digest, shared))
    }

    /// Removes `digest` from the map and refunds its bytes to every owner.
    /// The caller is responsible for the `order` deque.
    fn drop_entry(inner: &mut ClaimCacheInner, digest: &PayloadDigest) {
        if let Some(evicted) = inner.map.remove(digest) {
            inner.bytes = inner.bytes.saturating_sub(evicted.footprint);
            for owner in &evicted.owners {
                if let Some(held) = inner.tenant_bytes.get_mut(owner) {
                    *held = held.saturating_sub(evicted.footprint);
                }
            }
        }
    }

    /// The cached claim with this digest, if present; refreshes recency.
    pub fn get(&self, digest: &PayloadDigest) -> Option<Arc<OwnershipClaim>> {
        let mut inner = self.lock();
        let found = inner.map.get(digest).map(|entry| Arc::clone(&entry.claim));
        if found.is_some() {
            Self::touch(&mut inner, *digest);
        }
        found
    }

    /// Records that the claim under `digest` was adjudicated against
    /// `(tenant, model_id)`, so a later [`drop_model`](Self::drop_model)
    /// for that model can drop it. No-op for unknown digests.
    pub fn associate(&self, digest: &PayloadDigest, tenant: &TenantId, model_id: &str) {
        let mut inner = self.lock();
        if let Some(entry) = inner.map.get_mut(digest) {
            entry.models.insert((tenant.clone(), model_id.to_string()));
        }
    }

    /// Drops every cached claim whose *only* remaining model association is
    /// `(tenant, model_id)` and detaches the association from the rest —
    /// called on deregistration so a retired model's evidence cannot be
    /// silently replayed against its successor under a stale digest.
    /// Returns the number of entries dropped.
    pub fn drop_model(&self, tenant: &TenantId, model_id: &str) -> usize {
        let mut inner = self.lock();
        let key = (tenant.clone(), model_id.to_string());
        let mut dropped: Vec<PayloadDigest> = Vec::new();
        for (digest, entry) in inner.map.iter_mut() {
            if entry.models.remove(&key) && entry.models.is_empty() {
                dropped.push(*digest);
            }
        }
        for digest in &dropped {
            Self::drop_entry(&mut inner, digest);
        }
        inner.order.retain(|d| !dropped.contains(d));
        dropped.len()
    }

    fn touch(inner: &mut ClaimCacheInner, digest: PayloadDigest) {
        if let Some(position) = inner.order.iter().position(|d| *d == digest) {
            inner.order.remove(position);
            inner.order.push_back(digest);
        }
    }

    /// Number of cached claims.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated bytes of cached claim payload (including per-entry
    /// overhead).
    pub fn bytes(&self) -> usize {
        self.lock().bytes
    }

    /// Bytes currently attributed to `tenant`.
    pub fn tenant_bytes(&self, tenant: &TenantId) -> usize {
        self.lock().tenant_bytes.get(tenant).copied().unwrap_or(0)
    }

    /// Every tenant with attributed bytes, for stats assembly.
    pub fn owner_tenants(&self) -> Vec<TenantId> {
        self.lock().tenant_bytes.keys().cloned().collect()
    }

    /// The configured byte budget (`0` = unlimited).
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }
}

/// Manifest of persisted model artefacts inside a warm-start directory
/// (see [`MODEL_MANIFEST_FILE`]): the registry ids a booting judge should
/// serve, each mapped to an artefact file relative to the directory. The
/// manifest is itself a versioned `persist` artefact (JSON envelope), so a
/// stale or corrupted manifest fails with the same typed errors as any
/// other artefact rather than silently warm-starting a partial registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelManifest {
    /// The models to register at boot, in registration order.
    pub models: Vec<ManifestEntry>,
}

/// One entry of a [`ModelManifest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Registry id the model is served under.
    pub model_id: String,
    /// Artefact file name, relative to the manifest's directory. Either a
    /// persisted pointer-tree [`RandomForest`] or a [`CompiledForest`].
    pub file: String,
}

impl ModelManifest {
    /// Loads the manifest of a warm-start directory.
    pub fn load_dir(dir: impl AsRef<Path>) -> WatermarkResult<Self> {
        persist::load(dir.as_ref().join(MODEL_MANIFEST_FILE))
    }

    /// Writes this manifest into `dir` as [`MODEL_MANIFEST_FILE`].
    pub fn save_dir(&self, dir: impl AsRef<Path>) -> WatermarkResult<()> {
        persist::save(
            dir.as_ref().join(MODEL_MANIFEST_FILE),
            self,
            persist::Format::Json,
        )
    }
}

/// Configures and builds a [`DisputeService`] — the one construction
/// path besides [`DisputeService::default`].
#[derive(Debug, Clone, Default)]
pub struct DisputeServiceBuilder {
    batch_shard_rows: Option<usize>,
    max_docket: Option<usize>,
    warm_start_dirs: Vec<PathBuf>,
    kernel: Option<Kernel>,
    claim_cache_bytes: Option<usize>,
    model_cache_bytes: Option<usize>,
    tenant_quotas: Option<TenantQuotas>,
}

impl DisputeServiceBuilder {
    /// Sets the verification-batch shard size (rows per worker task;
    /// clamped to at least 1). Defaults to [`DEFAULT_BATCH_SHARD_ROWS`].
    pub fn batch_shard_rows(mut self, rows: usize) -> Self {
        self.batch_shard_rows = Some(rows.max(1));
        self
    }

    /// Selects the batch-inference kernel every resolution runs
    /// (`serve_judge --kernel`). Defaults to [`Kernel::Auto`], which
    /// microprobes the candidates on each model's first batch and
    /// memoizes the winner. Kernel choice never changes verdicts — every
    /// kernel is bit-identical to the recursive walk — only throughput.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Caps the number of disputes [`DisputeService::resolve_docket`]
    /// accepts in one docket; oversized dockets are refused whole with
    /// [`WatermarkError::DocketTooLarge`]. Unlimited by default; passing
    /// `0` also means unlimited, matching the 0-disables convention of the
    /// `serve_judge` flags.
    pub fn max_docket(mut self, max: usize) -> Self {
        self.max_docket = (max > 0).then_some(max);
        self
    }

    /// Byte budget of the digest-keyed [`ClaimCache`] backing the wire
    /// protocol's content-addressed payloads (`serve_judge
    /// --claim-cache-mb`). `0` means unlimited, matching the 0-disables
    /// convention. Defaults to [`DEFAULT_CLAIM_CACHE_BYTES`].
    pub fn claim_cache_bytes(mut self, bytes: usize) -> Self {
        self.claim_cache_bytes = Some(bytes);
        self
    }

    /// Byte budget for resident compiled forests (`serve_judge
    /// --model-cache-mb`). When the resident set exceeds the budget, the
    /// least-recently-used *evictable* model is dropped to its persisted
    /// artefact and transparently recompiled on the next resolution
    /// against it. Only file-backed models are evictable (a wire-uploaded
    /// model has no artefact to fall back to), and warm-start models are
    /// pinned. `0` means unlimited (the default), matching the 0-disables
    /// convention.
    pub fn model_cache_bytes(mut self, bytes: usize) -> Self {
        self.model_cache_bytes = Some(bytes);
        self
    }

    /// Per-tenant quotas enforced on the wire-facing (`*_as`) entry points
    /// — models registered, docket size, attributed claim-cache bytes and
    /// in-flight requests — each checked *before* the corresponding
    /// allocation. Defaults to [`TenantQuotas::default`] (every axis
    /// unlimited). The same quotas apply to every tenant, including the
    /// anonymous one; trusted in-process callers using the legacy entry
    /// points are never quota-checked.
    pub fn tenant_quotas(mut self, quotas: TenantQuotas) -> Self {
        self.tenant_quotas = Some(quotas);
        self
    }

    /// Warm-starts the registry from a directory containing a
    /// [`ModelManifest`] plus the artefact files it names (as written by
    /// the `table2` experiment under `results/models/`). May be called
    /// multiple times; directories are loaded in call order at
    /// [`build`](Self::build) time. Warm-start models are *pinned*: they
    /// count toward the model-cache budget but are never evicted.
    pub fn warm_start_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.warm_start_dirs.push(dir.into());
        self
    }

    /// Builds the service, registering every warm-start artefact. Fails
    /// with the underlying `persist` error if a manifest or artefact is
    /// missing, corrupted, or written by an unsupported format version.
    pub fn build(self) -> WatermarkResult<DisputeService> {
        let service = DisputeService::with_options(
            self.batch_shard_rows.unwrap_or(DEFAULT_BATCH_SHARD_ROWS),
            self.max_docket,
            self.kernel.unwrap_or_default(),
            self.claim_cache_bytes.unwrap_or(DEFAULT_CLAIM_CACHE_BYTES),
            self.model_cache_bytes.unwrap_or(0),
            self.tenant_quotas.unwrap_or_default(),
        );
        for dir in &self.warm_start_dirs {
            let manifest = ModelManifest::load_dir(dir)?;
            for entry in &manifest.models {
                service.register_file_inner(
                    &TenantId::anonymous(),
                    entry.model_id.clone(),
                    dir.join(&entry.file),
                    true,
                )?;
            }
        }
        Ok(service)
    }
}

/// Key of one registry entry: the owning tenant plus the caller-chosen
/// model id. Namespaces are disjoint — two tenants can use the same id
/// without ever observing each other's models.
type ModelKey = (TenantId, String);

/// One registered model. `compiled: None` means the model was evicted to
/// its persisted artefact and will be transparently recompiled on the next
/// resolution against it.
#[derive(Debug)]
struct ModelEntry {
    compiled: Option<Arc<CompiledForest>>,
    /// Estimated resident bytes of the compiled form (counted while
    /// resident, refunded on eviction).
    footprint: usize,
    /// Pinned entries (warm-start models) are never evicted.
    pinned: bool,
    /// Persisted artefact backing the entry; only file-backed models are
    /// evictable, because a wire-uploaded model has nothing to fall back
    /// to.
    source: Option<PathBuf>,
}

impl ModelEntry {
    fn evictable(&self) -> bool {
        !self.pinned && self.source.is_some()
    }
}

#[derive(Debug, Default)]
struct ModelRegistry {
    map: HashMap<ModelKey, ModelEntry>,
    /// Resident, evictable keys in least-recently-used-first order.
    order: VecDeque<ModelKey>,
    /// Estimated bytes of all resident compiled forests.
    resident_bytes: usize,
}

impl ModelRegistry {
    fn touch(&mut self, key: &ModelKey) {
        if let Some(position) = self.order.iter().position(|k| k == key) {
            let key = self.order.remove(position).expect("position is in bounds");
            self.order.push_back(key);
        }
    }

    fn tenant_models(&self, tenant: &TenantId) -> usize {
        self.map.keys().filter(|(owner, _)| owner == tenant).count()
    }

    /// The typed error for a model id absent from `tenant`'s namespace:
    /// [`WatermarkError::Forbidden`] if another tenant holds the id (a
    /// cross-namespace probe), [`WatermarkError::UnknownModel`] otherwise.
    fn missing(&self, tenant: &TenantId, model_id: &str) -> WatermarkError {
        if self.map.keys().any(|(owner, id)| id == model_id && owner != tenant) {
            WatermarkError::Forbidden {
                detail: format!("model `{model_id}` is not in tenant `{tenant}`'s namespace"),
            }
        } else {
            WatermarkError::UnknownModel {
                model_id: model_id.to_string(),
            }
        }
    }
}

/// A registry of compiled suspect models plus a concurrent resolver for
/// ownership claims against them. See the module docs for the guarantees.
///
/// Every model lives in a tenant namespace (see [`TenantId`]); the
/// original single-tenant entry points operate on the anonymous namespace
/// and behave exactly as before, while the `*_as` variants the wire
/// front-end drives enforce namespace isolation
/// ([`WatermarkError::Forbidden`]) and [`TenantQuotas`].
#[derive(Debug)]
pub struct DisputeService {
    registry: Mutex<ModelRegistry>,
    /// Compiled models by tenant-scoped content digest, for digest-only
    /// re-registration ([`Self::register_by_digest`]). Scoping by tenant
    /// means a digest learned out of band cannot resurrect another
    /// tenant's model. Entries are pruned when the last registry id
    /// sharing the compiled form is deregistered or evicted.
    model_digests: RwLock<HashMap<(TenantId, PayloadDigest), Arc<CompiledForest>>>,
    claims: ClaimCache,
    ledger: TenantLedger,
    compile_count: AtomicUsize,
    batch_shard_rows: usize,
    max_docket: Option<usize>,
    model_cache_bytes: usize,
    quotas: TenantQuotas,
    kernel: Kernel,
}

impl Default for DisputeService {
    fn default() -> Self {
        Self::with_options(
            DEFAULT_BATCH_SHARD_ROWS,
            None,
            Kernel::default(),
            DEFAULT_CLAIM_CACHE_BYTES,
            0,
            TenantQuotas::default(),
        )
    }
}

impl DisputeService {
    /// Starts configuring a service. See [`DisputeServiceBuilder`].
    pub fn builder() -> DisputeServiceBuilder {
        DisputeServiceBuilder::default()
    }

    fn with_options(
        batch_shard_rows: usize,
        max_docket: Option<usize>,
        kernel: Kernel,
        claim_cache_bytes: usize,
        model_cache_bytes: usize,
        quotas: TenantQuotas,
    ) -> Self {
        Self {
            registry: Mutex::new(ModelRegistry::default()),
            model_digests: RwLock::new(HashMap::new()),
            claims: ClaimCache::new(claim_cache_bytes),
            ledger: TenantLedger::new(),
            compile_count: AtomicUsize::new(0),
            batch_shard_rows,
            max_docket,
            model_cache_bytes,
            quotas,
            kernel,
        }
    }

    fn lock_registry(&self) -> std::sync::MutexGuard<'_, ModelRegistry> {
        self.registry.lock().expect("dispute registry lock is never poisoned")
    }

    /// The digest-keyed claim cache backing content-addressed payloads.
    pub fn claims(&self) -> &ClaimCache {
        &self.claims
    }

    /// The per-tenant accounting ledger. The server front end records auth
    /// failures and the in-flight gauge here; the service itself records
    /// dockets, cache traffic and evictions.
    pub fn ledger(&self) -> &TenantLedger {
        &self.ledger
    }

    /// The per-tenant quotas configured via
    /// [`DisputeServiceBuilder::tenant_quotas`].
    pub fn quotas(&self) -> &TenantQuotas {
        &self.quotas
    }

    /// The batch-inference kernel configured via
    /// [`DisputeServiceBuilder::kernel`].
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Registers a pointer-tree model in the anonymous namespace,
    /// compiling it exactly once. The compiled form is shared by every
    /// subsequent resolution. Registering an id again replaces the
    /// previous model.
    pub fn register(&self, model_id: impl Into<String>, model: &RandomForest) -> Arc<CompiledForest> {
        // Compile outside the registry lock: registration of a large model
        // must not block resolutions against other models.
        let compiled = Arc::new(CompiledForest::compile(model));
        self.compile_count.fetch_add(1, Ordering::Relaxed);
        self.publish_model(
            &TenantId::anonymous(),
            model_id.into(),
            Arc::clone(&compiled),
            false,
            None,
        );
        compiled
    }

    /// Registers an already-compiled model (e.g. loaded from a persisted
    /// artefact) without paying another compilation.
    pub fn register_compiled(
        &self,
        model_id: impl Into<String>,
        compiled: CompiledForest,
    ) -> Arc<CompiledForest> {
        let compiled = Arc::new(compiled);
        self.publish_model(
            &TenantId::anonymous(),
            model_id.into(),
            Arc::clone(&compiled),
            false,
            None,
        );
        compiled
    }

    /// Registers a model from a persisted artefact: either a
    /// [`CompiledForest`] (as written by `save_model_artifacts` /
    /// `persist::save`) or a pointer-tree [`RandomForest`], which is then
    /// compiled once. File-backed models are *evictable* under the
    /// [`model_cache_bytes`](DisputeServiceBuilder::model_cache_bytes)
    /// budget: the artefact path is retained and the model is recompiled
    /// transparently on the next resolution after an eviction.
    pub fn register_from_file(
        &self,
        model_id: impl Into<String>,
        path: impl AsRef<Path>,
    ) -> WatermarkResult<Arc<CompiledForest>> {
        self.register_file_inner(
            &TenantId::anonymous(),
            model_id.into(),
            path.as_ref().to_path_buf(),
            false,
        )
    }

    fn register_file_inner(
        &self,
        tenant: &TenantId,
        model_id: String,
        path: PathBuf,
        pinned: bool,
    ) -> WatermarkResult<Arc<CompiledForest>> {
        let compiled = self.load_artefact(&path)?;
        self.publish_model(tenant, model_id, Arc::clone(&compiled), pinned, Some(path));
        Ok(compiled)
    }

    /// Decodes (and, for pointer-tree artefacts, compiles) a persisted
    /// model without touching the registry.
    fn load_artefact(&self, path: &Path) -> WatermarkResult<Arc<CompiledForest>> {
        let bytes = std::fs::read(path).map_err(|err| WatermarkError::Io {
            path: path.display().to_string(),
            message: err.to_string(),
        })?;
        match persist::from_bytes::<CompiledForest>(&bytes) {
            Ok(compiled) => Ok(Arc::new(compiled)),
            // Container-level failures (wrong magic, future format version)
            // would hit any payload type: propagate.
            Err(
                err @ (WatermarkError::UnrecognizedFormat { .. }
                | WatermarkError::UnsupportedFormatVersion { .. }),
            ) => Err(err),
            // The container decoded but the payload is not a compiled
            // forest — fall back to a pointer-tree model and compile it. If
            // that fails too, the file is neither kind of model artefact:
            // report the first decode error, which names the corruption
            // precisely rather than a misleading shape mismatch.
            Err(first) => match persist::from_bytes::<RandomForest>(&bytes) {
                Ok(model) => {
                    let compiled = Arc::new(CompiledForest::compile(&model));
                    self.compile_count.fetch_add(1, Ordering::Relaxed);
                    Ok(compiled)
                }
                Err(_) => Err(first),
            },
        }
    }

    /// Inserts (or replaces) a registry entry and enforces the model-cache
    /// byte budget, evicting least-recently-used file-backed models.
    fn publish_model(
        &self,
        tenant: &TenantId,
        model_id: String,
        compiled: Arc<CompiledForest>,
        pinned: bool,
        source: Option<PathBuf>,
    ) {
        let key = (tenant.clone(), model_id);
        let footprint = model_footprint(&compiled);
        let mut reg = self.lock_registry();
        if let Some(old) = reg.map.remove(&key) {
            if old.compiled.is_some() {
                reg.resident_bytes = reg.resident_bytes.saturating_sub(old.footprint);
            }
            reg.order.retain(|k| k != &key);
        }
        let entry = ModelEntry {
            compiled: Some(compiled),
            footprint,
            pinned,
            source,
        };
        if entry.evictable() {
            reg.order.push_back(key.clone());
        }
        reg.resident_bytes += footprint;
        reg.map.insert(key.clone(), entry);
        self.enforce_model_budget(&mut reg, &key);
    }

    /// Evicts least-recently-used evictable models until the resident set
    /// fits the budget. The entry just published (`keep`) is exempt, so a
    /// budget smaller than one model degrades to cache-nothing rather than
    /// evicting what the caller is about to use.
    fn enforce_model_budget(&self, reg: &mut ModelRegistry, keep: &ModelKey) {
        if self.model_cache_bytes == 0 {
            return;
        }
        while reg.resident_bytes > self.model_cache_bytes {
            let Some(position) = reg.order.iter().position(|key| key != keep) else {
                break;
            };
            let key = reg.order.remove(position).expect("position is in bounds");
            let Some(entry) = reg.map.get_mut(&key) else {
                continue;
            };
            if let Some(evicted) = entry.compiled.take() {
                reg.resident_bytes = reg.resident_bytes.saturating_sub(entry.footprint);
                self.ledger.record_evictions(&key.0, 1);
                // The digest index must not keep the evicted form resident:
                // prune this tenant's entries sharing it. A later
                // RegisterByDigest misses and falls back to a full upload.
                self.model_digests
                    .write()
                    .expect("model digest index lock is never poisoned")
                    .retain(|(owner, _), compiled| {
                        !(owner == &key.0 && Arc::ptr_eq(compiled, &evicted))
                    });
            }
        }
    }

    /// The compiled model registered under `model_id` in the anonymous
    /// namespace, if any; an evicted file-backed model is transparently
    /// recompiled (errors from the reload surface as `None` here — use
    /// [`model_as`](Self::model_as) for the typed error).
    pub fn model(&self, model_id: &str) -> Option<Arc<CompiledForest>> {
        self.model_as(&TenantId::anonymous(), model_id).ok()
    }

    /// The compiled model registered under `model_id` in `tenant`'s
    /// namespace. An evicted entry is recompiled from its persisted
    /// artefact before returning (counted as a cache miss in the ledger);
    /// an id held by another tenant is [`WatermarkError::Forbidden`].
    pub fn model_as(&self, tenant: &TenantId, model_id: &str) -> WatermarkResult<Arc<CompiledForest>> {
        let key = (tenant.clone(), model_id.to_string());
        let source = {
            let mut reg = self.lock_registry();
            let resident = match reg.map.get(&key) {
                Some(entry) => match &entry.compiled {
                    Some(compiled) => Some((Arc::clone(compiled), entry.evictable())),
                    None => None,
                },
                None => return Err(reg.missing(tenant, model_id)),
            };
            if let Some((compiled, evictable)) = resident {
                if evictable {
                    reg.touch(&key);
                }
                return Ok(compiled);
            }
            reg.map
                .get(&key)
                .and_then(|entry| entry.source.clone())
                .expect("evicted entries always retain their artefact path")
        };
        // Transparent recompile-on-miss, outside the lock so resolutions
        // against other models proceed. Two racing misses may both reload;
        // the second publish wins and the budget holds either way.
        self.ledger.record_cache_misses(tenant, 1);
        let compiled = self.load_artefact(&source)?;
        self.publish_model(
            tenant,
            model_id.to_string(),
            Arc::clone(&compiled),
            false,
            Some(source),
        );
        Ok(compiled)
    }

    /// Checks the models-registered quota for registering `model_id`
    /// (re-registering an existing id never counts as growth).
    fn check_model_quota(&self, tenant: &TenantId, model_id: &str) -> WatermarkResult<()> {
        let reg = self.lock_registry();
        let additional = usize::from(!reg.map.contains_key(&(tenant.clone(), model_id.to_string())));
        self.quotas.check_models(reg.tenant_models(tenant) + additional)
    }

    /// Registers a pointer-tree model like [`register`](Self::register) and
    /// additionally indexes the compiled form under the model's content
    /// digest, so a later [`register_by_digest`](Self::register_by_digest)
    /// can reuse it without re-uploading the model. The returned digest is
    /// echoed to the client.
    pub fn register_digested(
        &self,
        model_id: impl Into<String>,
        model: &RandomForest,
    ) -> (PayloadDigest, Arc<CompiledForest>) {
        self.register_digested_inner(&TenantId::anonymous(), model_id.into(), model)
    }

    /// [`register_digested`](Self::register_digested) in `tenant`'s
    /// namespace, with the models-registered quota checked before
    /// compiling. This is the registration path the wire front-end drives.
    pub fn register_digested_as(
        &self,
        tenant: &TenantId,
        model_id: impl Into<String>,
        model: &RandomForest,
    ) -> WatermarkResult<(PayloadDigest, Arc<CompiledForest>)> {
        let model_id = model_id.into();
        self.check_model_quota(tenant, &model_id)?;
        Ok(self.register_digested_inner(tenant, model_id, model))
    }

    fn register_digested_inner(
        &self,
        tenant: &TenantId,
        model_id: String,
        model: &RandomForest,
    ) -> (PayloadDigest, Arc<CompiledForest>) {
        let digest = PayloadDigest::of_model(model);
        let compiled = Arc::new(CompiledForest::compile(model));
        self.compile_count.fetch_add(1, Ordering::Relaxed);
        self.publish_model(tenant, model_id, Arc::clone(&compiled), false, None);
        self.model_digests
            .write()
            .expect("model digest index lock is never poisoned")
            .insert((tenant.clone(), digest), Arc::clone(&compiled));
        (digest, compiled)
    }

    /// Registers an already-uploaded model under a (possibly new) id by
    /// content digest alone; `None` if no model with that digest is
    /// indexed (the caller should fall back to a full upload).
    pub fn register_by_digest(
        &self,
        model_id: impl Into<String>,
        digest: PayloadDigest,
    ) -> Option<Arc<CompiledForest>> {
        self.register_by_digest_inner(&TenantId::anonymous(), model_id.into(), digest)
    }

    /// [`register_by_digest`](Self::register_by_digest) in `tenant`'s
    /// namespace: only digests this tenant uploaded can match, and the
    /// models-registered quota is checked first.
    pub fn register_by_digest_as(
        &self,
        tenant: &TenantId,
        model_id: impl Into<String>,
        digest: PayloadDigest,
    ) -> WatermarkResult<Option<Arc<CompiledForest>>> {
        let model_id = model_id.into();
        self.check_model_quota(tenant, &model_id)?;
        Ok(self.register_by_digest_inner(tenant, model_id, digest))
    }

    fn register_by_digest_inner(
        &self,
        tenant: &TenantId,
        model_id: String,
        digest: PayloadDigest,
    ) -> Option<Arc<CompiledForest>> {
        let compiled = self
            .model_digests
            .read()
            .expect("model digest index lock is never poisoned")
            .get(&(tenant.clone(), digest))
            .cloned()?;
        self.publish_model(tenant, model_id, Arc::clone(&compiled), false, None);
        Some(compiled)
    }

    /// Removes a model from the anonymous namespace; returns the compiled
    /// form if the id was registered *and resident*. In-flight resolutions
    /// holding the `Arc` finish unaffected. Digest-index entries are
    /// pruned once no registry id shares the removed compiled form, so a
    /// deregistered model cannot be resurrected by digest — and the
    /// model's cached claims are dropped (see [`ClaimCache::drop_model`]).
    pub fn deregister(&self, model_id: &str) -> Option<Arc<CompiledForest>> {
        match self.deregister_inner(&TenantId::anonymous(), model_id) {
            Ok((_, removed)) => removed,
            Err(_) => None,
        }
    }

    /// [`deregister`](Self::deregister) in `tenant`'s namespace. Returns
    /// whether the id existed; attempting to deregister an id held by
    /// another tenant is [`WatermarkError::Forbidden`].
    pub fn deregister_as(&self, tenant: &TenantId, model_id: &str) -> WatermarkResult<bool> {
        self.deregister_inner(tenant, model_id).map(|(existed, _)| existed)
    }

    fn deregister_inner(
        &self,
        tenant: &TenantId,
        model_id: &str,
    ) -> WatermarkResult<(bool, Option<Arc<CompiledForest>>)> {
        let key = (tenant.clone(), model_id.to_string());
        let removed = {
            let mut reg = self.lock_registry();
            match reg.map.remove(&key) {
                Some(entry) => {
                    reg.order.retain(|k| k != &key);
                    if entry.compiled.is_some() {
                        reg.resident_bytes = reg.resident_bytes.saturating_sub(entry.footprint);
                    }
                    entry.compiled
                }
                None => {
                    let missing = reg.missing(tenant, model_id);
                    return match missing {
                        WatermarkError::UnknownModel { .. } => Ok((false, None)),
                        forbidden => Err(forbidden),
                    };
                }
            }
        };
        if let Some(removed_arc) = &removed {
            let still_registered = self.lock_registry().map.iter().any(|((owner, _), entry)| {
                owner == tenant
                    && entry
                        .compiled
                        .as_ref()
                        .is_some_and(|compiled| Arc::ptr_eq(compiled, removed_arc))
            });
            if !still_registered {
                self.model_digests
                    .write()
                    .expect("model digest index lock is never poisoned")
                    .retain(|(owner, _), compiled| {
                        !(owner == tenant && Arc::ptr_eq(compiled, removed_arc))
                    });
            }
        }
        // Evidence adjudicated only against the retired model must not be
        // silently replayable against a successor under a stale digest.
        self.claims.drop_model(tenant, model_id);
        Ok((true, removed))
    }

    /// Ids of every model in the anonymous namespace, sorted
    /// lexicographically. The registry is a hash map, whose iteration
    /// order varies across runs (and Rust releases); sorting here makes
    /// registry listings — and the wire protocol's `ListModels` response
    /// built on top — deterministic.
    pub fn model_ids(&self) -> Vec<String> {
        self.model_ids_for(&TenantId::anonymous())
    }

    /// Ids of every model in `tenant`'s namespace, sorted. A tenant can
    /// never list another namespace — there is no cross-tenant variant.
    pub fn model_ids_for(&self, tenant: &TenantId) -> Vec<String> {
        let reg = self.lock_registry();
        let mut ids: Vec<String> = reg
            .map
            .keys()
            .filter(|(owner, _)| owner == tenant)
            .map(|(_, id)| id.clone())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// The docket-size cap configured via
    /// [`DisputeServiceBuilder::max_docket`], if any.
    pub fn max_docket(&self) -> Option<usize> {
        self.max_docket
    }

    /// The model-cache byte budget (`0` = unlimited).
    pub fn model_cache_bytes(&self) -> usize {
        self.model_cache_bytes
    }

    /// Estimated bytes of all resident compiled forests, across tenants.
    pub fn resident_model_bytes(&self) -> usize {
        self.lock_registry().resident_bytes
    }

    /// Number of registered models across every namespace (evicted
    /// file-backed models still count — they are registered, just not
    /// resident).
    pub fn len(&self) -> usize {
        self.lock_registry().map.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of [`CompiledForest::compile`] calls this service has
    /// performed — the compile-once guarantee made observable: resolving
    /// any number of claims never increments it (evicting a model under
    /// the byte budget and resolving against it again does, once per
    /// reload of a pointer-tree artefact).
    pub fn compile_count(&self) -> usize {
        self.compile_count.load(Ordering::Relaxed)
    }

    /// One tenant's `Stats` row: ledger counters plus the live gauges
    /// (models registered, attributed claim-cache bytes).
    pub fn stats_for(&self, tenant: &TenantId) -> TenantStatsEntry {
        let counters = self.ledger.counters(tenant);
        let models = self.lock_registry().tenant_models(tenant) as u64;
        TenantStatsEntry {
            tenant: tenant.to_string(),
            models,
            dockets: counters.dockets,
            claims: counters.claims,
            cache_hits: counters.cache_hits,
            cache_misses: counters.cache_misses,
            evictions: counters.evictions,
            auth_failures: counters.auth_failures,
            claim_bytes: self.claims.tenant_bytes(tenant) as u64,
            in_flight: counters.in_flight,
        }
    }

    /// Every tenant's `Stats` row, sorted by tenant id: the union of
    /// tenants seen by the ledger, the registry and the claim cache. This
    /// is what an *anonymous* (open) judge reports; an authenticated
    /// tenant only ever sees its own [`stats_for`](Self::stats_for) row.
    pub fn stats_all(&self) -> Vec<TenantStatsEntry> {
        let mut tenants: BTreeSet<TenantId> =
            self.ledger.snapshot().into_iter().map(|(tenant, _)| tenant).collect();
        tenants.extend(self.lock_registry().map.keys().map(|(owner, _)| owner.clone()));
        tenants.extend(self.claims.owner_tenants());
        tenants.iter().map(|tenant| self.stats_for(tenant)).collect()
    }

    /// Resolves one claim against a registered model. The verification
    /// batch is sharded across worker threads; the report is identical to
    /// [`crate::verify_ownership`] on the same model.
    pub fn resolve(
        &self,
        model_id: &str,
        claim: &OwnershipClaim,
    ) -> WatermarkResult<VerificationReport> {
        self.resolve_as(&TenantId::anonymous(), model_id, claim)
    }

    /// [`resolve`](Self::resolve) in `tenant`'s namespace: resolving
    /// against another tenant's model is [`WatermarkError::Forbidden`],
    /// and an evicted model is transparently recompiled first.
    pub fn resolve_as(
        &self,
        tenant: &TenantId,
        model_id: &str,
        claim: &OwnershipClaim,
    ) -> WatermarkResult<VerificationReport> {
        let compiled = self.model_as(tenant, model_id)?;
        let oracle = ShardedOracle {
            compiled: &compiled,
            shard_rows: self.batch_shard_rows,
            kernel: self.kernel,
        };
        Ok(verify_ownership(&oracle, claim))
    }

    /// Resolves many disputes concurrently, returning one verdict per
    /// dispute in input order. Each dispute is an independent pool task
    /// whose verification batch is itself sharded across the same pool
    /// (two-level parallelism); disputes against the same model share its
    /// one compiled form.
    pub fn resolve_many(&self, disputes: &[Dispute]) -> Vec<WatermarkResult<VerificationReport>> {
        disputes
            .par_iter()
            .map(|dispute| self.resolve(&dispute.model_id, &dispute.claim))
            .collect()
    }

    /// [`resolve_many`](Self::resolve_many) with the configured
    /// [`max_docket`](DisputeServiceBuilder::max_docket) cap enforced:
    /// oversized dockets are refused whole, before any resolution work.
    /// This is the entry point the network front-end drives.
    pub fn resolve_docket(
        &self,
        disputes: &[Dispute],
    ) -> WatermarkResult<Vec<WatermarkResult<VerificationReport>>> {
        if let Some(max) = self.max_docket {
            if disputes.len() > max {
                return Err(WatermarkError::DocketTooLarge {
                    size: disputes.len(),
                    max,
                });
            }
        }
        Ok(self.resolve_many(disputes))
    }

    /// Resolves a content-addressed docket with deduplication: disputes
    /// sharing a `(model_id, digest)` pair are resolved once and the
    /// verdict is scattered back to every duplicate position. Resolution
    /// is deterministic in the claim content (the disguise permutation is
    /// seeded from the claim itself), so the scattered verdicts are
    /// bit-identical to resolving each dispute independently — this is the
    /// wire path's throughput win, not a semantic change.
    ///
    /// The [`max_docket`](DisputeServiceBuilder::max_docket) cap counts
    /// the *pre-deduplication* docket size, mirroring
    /// [`resolve_docket`](Self::resolve_docket).
    pub fn resolve_docket_shared(
        &self,
        disputes: &[SharedDispute],
    ) -> WatermarkResult<Vec<WatermarkResult<VerificationReport>>> {
        if let Some(max) = self.max_docket {
            if disputes.len() > max {
                return Err(WatermarkError::DocketTooLarge {
                    size: disputes.len(),
                    max,
                });
            }
        }
        Ok(self.resolve_shared_inner(&TenantId::anonymous(), disputes))
    }

    /// [`resolve_docket_shared`](Self::resolve_docket_shared) in
    /// `tenant`'s namespace — the entry point the wire front-end drives.
    /// Enforces the tighter of the global docket cap and the tenant's
    /// docket quota (both pre-dedup, both before any resolution work),
    /// records the docket in the ledger, and associates every referenced
    /// claim with its model so deregistration can drop them.
    pub fn resolve_docket_shared_as(
        &self,
        tenant: &TenantId,
        disputes: &[SharedDispute],
    ) -> WatermarkResult<Vec<WatermarkResult<VerificationReport>>> {
        self.check_docket_size(disputes.len())?;
        for dispute in disputes {
            self.claims.associate(&dispute.digest, tenant, &dispute.model_id);
        }
        self.ledger.record_docket(tenant, disputes.len() as u64);
        Ok(self.resolve_shared_inner(tenant, disputes))
    }

    /// Checks a docket size against the global cap and the per-tenant
    /// docket quota (the smaller of the two wins), without resolving
    /// anything. Quotas are uniform across tenants, so no tenant argument
    /// is needed.
    pub fn check_docket_size(&self, size: usize) -> WatermarkResult<()> {
        if let Some(max) = self.max_docket {
            if size > max {
                return Err(WatermarkError::DocketTooLarge { size, max });
            }
        }
        self.quotas.check_docket(size)
    }

    fn resolve_shared_inner(
        &self,
        tenant: &TenantId,
        disputes: &[SharedDispute],
    ) -> Vec<WatermarkResult<VerificationReport>> {
        let mut index_of: HashMap<(&str, PayloadDigest), usize> = HashMap::new();
        let mut distinct: Vec<&SharedDispute> = Vec::new();
        let slots: Vec<usize> = disputes
            .iter()
            .map(|dispute| {
                *index_of.entry((dispute.model_id.as_str(), dispute.digest)).or_insert_with(|| {
                    distinct.push(dispute);
                    distinct.len() - 1
                })
            })
            .collect();
        let resolved: Vec<WatermarkResult<VerificationReport>> = distinct
            .par_iter()
            .map(|dispute| self.resolve_as(tenant, &dispute.model_id, &dispute.claim))
            .collect();
        slots.into_iter().map(|slot| resolved[slot].clone()).collect()
    }
}

/// Oracle adapter sharding each verification batch across worker threads,
/// through the service's configured inference kernel.
struct ShardedOracle<'a> {
    compiled: &'a CompiledForest,
    shard_rows: usize,
    kernel: Kernel,
}

impl ModelOracle for ShardedOracle<'_> {
    fn num_trees(&self) -> usize {
        self.compiled.num_trees()
    }

    fn query(&self, instance: &[f64]) -> Vec<Label> {
        self.compiled.predict_all(instance)
    }

    fn query_batch(&self, batch: &Dataset) -> Vec<Vec<Label>> {
        self.compiled
            .par_predict_all_batch_with(batch.features(), self.shard_rows, self.kernel)
            .iter()
            .map(<[Label]>::to_vec)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WatermarkConfig;
    use crate::signature::Signature;
    use crate::watermark::Watermarker;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wdte_data::SyntheticSpec;

    fn embedded() -> (Dataset, crate::watermark::WatermarkOutcome) {
        let dataset = SyntheticSpec::breast_cancer_like()
            .scaled(0.7)
            .generate(&mut SmallRng::seed_from_u64(71));
        let mut rng = SmallRng::seed_from_u64(72);
        let (train, test) = dataset.split_stratified(0.75, &mut rng);
        let signature = Signature::random(10, 0.5, &mut rng);
        let watermarker = Watermarker::new(WatermarkConfig {
            num_trees: 10,
            ..WatermarkConfig::fast()
        });
        let outcome = watermarker.embed(&train, &signature, &mut rng).unwrap();
        (test, outcome)
    }

    fn claim_for(outcome: &crate::watermark::WatermarkOutcome, test: &Dataset) -> OwnershipClaim {
        OwnershipClaim::new(
            outcome.signature.clone(),
            outcome.trigger_set.clone(),
            test.clone(),
        )
    }

    #[test]
    fn resolve_matches_the_one_shot_path_and_compiles_once() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let service = DisputeService::builder().build().unwrap();
        service.register("bobs-api", &outcome.model);
        assert_eq!(service.compile_count(), 1);

        let direct = verify_ownership(&outcome.model, &claim);
        for _ in 0..5 {
            let resolved = service.resolve("bobs-api", &claim).unwrap();
            assert_eq!(resolved, direct);
            assert!(resolved.verified);
        }
        assert_eq!(service.compile_count(), 1, "resolutions never recompile");
    }

    #[test]
    fn resolve_many_returns_verdicts_in_input_order() {
        let (test, outcome) = embedded();
        let genuine = claim_for(&outcome, &test);
        let mut rng = SmallRng::seed_from_u64(73);
        let fake_signature = Signature::random(10, 0.5, &mut rng);
        assert!(fake_signature.hamming_distance(&outcome.signature) > 0);
        let forged = OwnershipClaim::new(fake_signature, outcome.trigger_set.clone(), test.clone());

        let service = DisputeService::builder().build().unwrap();
        service.register("m", &outcome.model);
        let disputes: Vec<Dispute> = (0..8)
            .map(|i| {
                let claim = if i % 2 == 0 {
                    genuine.clone()
                } else {
                    forged.clone()
                };
                Dispute::new("m", claim)
            })
            .collect();
        let verdicts = service.resolve_many(&disputes);
        assert_eq!(verdicts.len(), 8);
        for (i, verdict) in verdicts.iter().enumerate() {
            let report = verdict.as_ref().unwrap();
            assert_eq!(report.verified, i % 2 == 0, "dispute {i}");
        }
        assert_eq!(service.compile_count(), 1);
    }

    #[test]
    fn unknown_model_is_a_typed_error() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let service = DisputeService::builder().build().unwrap();
        let err = service.resolve("nobody", &claim).unwrap_err();
        assert!(matches!(err, WatermarkError::UnknownModel { model_id } if model_id == "nobody"));
    }

    #[test]
    fn registry_lifecycle() {
        let (_, outcome) = embedded();
        let service = DisputeService::builder().build().unwrap();
        assert!(service.is_empty());
        service.register("a", &outcome.model);
        let compiled = CompiledForest::compile(&outcome.model);
        service.register_compiled("b", compiled);
        assert_eq!(service.len(), 2);
        let mut ids = service.model_ids();
        ids.sort();
        assert_eq!(ids, ["a", "b"]);
        // Only the pointer-tree registration paid a compile.
        assert_eq!(service.compile_count(), 1);
        assert!(service.deregister("a").is_some());
        assert!(service.model("a").is_none());
        assert!(service.model("b").is_some());
        assert_eq!(service.len(), 1);
    }

    #[test]
    fn re_registration_replaces_the_model() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let mut rng = SmallRng::seed_from_u64(74);
        let dataset = SyntheticSpec::breast_cancer_like()
            .scaled(0.4)
            .generate(&mut SmallRng::seed_from_u64(75));
        let unrelated = Watermarker::new(WatermarkConfig {
            num_trees: 10,
            ..WatermarkConfig::fast()
        })
        .train_baseline(&dataset, &mut rng);

        let service = DisputeService::builder().build().unwrap();
        service.register("m", &unrelated);
        assert!(!service.resolve("m", &claim).unwrap().verified);
        service.register("m", &outcome.model);
        assert!(service.resolve("m", &claim).unwrap().verified);
        assert_eq!(service.len(), 1);
    }

    #[test]
    fn sharded_batches_match_for_every_shard_size() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let reference = verify_ownership(&outcome.model, &claim);
        for shard_rows in [1, 7, 64, DEFAULT_BATCH_SHARD_ROWS, usize::MAX] {
            let service = DisputeService::builder().batch_shard_rows(shard_rows).build().unwrap();
            service.register("m", &outcome.model);
            assert_eq!(
                service.resolve("m", &claim).unwrap(),
                reference,
                "shard_rows={shard_rows}"
            );
        }
    }

    #[test]
    fn every_kernel_resolves_to_identical_reports() {
        // The kernel knob is pure throughput: reports (scores included)
        // must be bit-identical to the one-shot reference under every
        // kernel, and the default is Auto.
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let reference = verify_ownership(&outcome.model, &claim);
        assert_eq!(DisputeService::builder().build().unwrap().kernel(), Kernel::Auto);
        for kernel in Kernel::ALL {
            let service = DisputeService::builder().kernel(kernel).build().unwrap();
            assert_eq!(service.kernel(), kernel);
            service.register("m", &outcome.model);
            assert_eq!(
                service.resolve("m", &claim).unwrap(),
                reference,
                "kernel {kernel}"
            );
        }
    }

    #[test]
    fn register_from_file_accepts_compiled_and_pointer_artefacts() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let dir = std::env::temp_dir().join(format!("wdte-service-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let compiled_path = dir.join("model.compiled.json");
        let pointer_path = dir.join("model.wdte");
        persist::save(
            &compiled_path,
            &CompiledForest::compile(&outcome.model),
            persist::Format::Json,
        )
        .unwrap();
        persist::save(&pointer_path, &outcome.model, persist::Format::Binary).unwrap();

        let service = DisputeService::builder().build().unwrap();
        service.register_from_file("compiled", &compiled_path).unwrap();
        service.register_from_file("pointer", &pointer_path).unwrap();
        let from_compiled = service.resolve("compiled", &claim).unwrap();
        let from_pointer = service.resolve("pointer", &claim).unwrap();
        assert_eq!(from_compiled, from_pointer);
        assert!(from_compiled.verified);
        assert!(service.register_from_file("missing", dir.join("nope.wdte")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn model_ids_are_sorted_regardless_of_registration_order() {
        let (_, outcome) = embedded();
        let service = DisputeService::builder().build().unwrap();
        for id in ["zeta", "alpha", "mid", "beta"] {
            service.register(id, &outcome.model);
        }
        assert_eq!(service.model_ids(), ["alpha", "beta", "mid", "zeta"]);
    }

    #[test]
    fn builder_warm_starts_from_a_manifest_directory() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let dir = std::env::temp_dir().join(format!("wdte-warmstart-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        persist::save(dir.join("a.model.wdte"), &outcome.model, persist::Format::Binary).unwrap();
        persist::save(
            dir.join("b.compiled.json"),
            &CompiledForest::compile(&outcome.model),
            persist::Format::Json,
        )
        .unwrap();
        let manifest = ModelManifest {
            models: vec![
                ManifestEntry {
                    model_id: "deployment-a".into(),
                    file: "a.model.wdte".into(),
                },
                ManifestEntry {
                    model_id: "deployment-b".into(),
                    file: "b.compiled.json".into(),
                },
            ],
        };
        manifest.save_dir(&dir).unwrap();
        assert_eq!(ModelManifest::load_dir(&dir).unwrap(), manifest);

        let service = DisputeService::builder().warm_start_dir(&dir).build().unwrap();
        assert_eq!(service.model_ids(), ["deployment-a", "deployment-b"]);
        // Only the pointer-tree artefact needed a compile at boot.
        assert_eq!(service.compile_count(), 1);
        assert!(service.resolve("deployment-a", &claim).unwrap().verified);
        assert!(service.resolve("deployment-b", &claim).unwrap().verified);

        // A manifest naming a missing artefact fails the whole build with a
        // typed error instead of booting a partial registry.
        let broken = ModelManifest {
            models: vec![ManifestEntry {
                model_id: "ghost".into(),
                file: "missing.wdte".into(),
            }],
        };
        broken.save_dir(&dir).unwrap();
        assert!(matches!(
            DisputeService::builder().warm_start_dir(&dir).build().unwrap_err(),
            WatermarkError::Io { .. }
        ));
        // No manifest at all is an Io error too.
        let _ = std::fs::remove_dir_all(&dir);
        assert!(matches!(
            DisputeService::builder().warm_start_dir(&dir).build().unwrap_err(),
            WatermarkError::Io { .. }
        ));
    }

    #[test]
    fn max_docket_refuses_oversized_dockets_whole() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let service = DisputeService::builder().max_docket(2).build().unwrap();
        service.register("m", &outcome.model);
        assert_eq!(service.max_docket(), Some(2));
        let small: Vec<Dispute> = (0..2).map(|_| Dispute::new("m", claim.clone())).collect();
        let verdicts = service.resolve_docket(&small).unwrap();
        assert!(verdicts.iter().all(|v| v.as_ref().unwrap().verified));
        let big: Vec<Dispute> = (0..3).map(|_| Dispute::new("m", claim.clone())).collect();
        match service.resolve_docket(&big).unwrap_err() {
            WatermarkError::DocketTooLarge { size, max } => {
                assert_eq!((size, max), (3, 2));
            }
            other => panic!("expected DocketTooLarge, got {other:?}"),
        }
        // `resolve_many` stays uncapped for in-process callers.
        assert_eq!(service.resolve_many(&big).len(), 3);
        // 0 means unlimited (the 0-disables convention of serve_judge).
        let uncapped = DisputeService::builder().max_docket(0).build().unwrap();
        assert_eq!(uncapped.max_docket(), None);
    }

    /// The builder with explicit options resolves identically to the
    /// all-defaults service: shard size is a throughput knob, never a
    /// behaviour knob.
    #[test]
    fn builder_shard_size_does_not_change_behaviour() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let via_default = DisputeService::default();
        let via_shards = DisputeService::builder().batch_shard_rows(7).build().unwrap();
        for service in [&via_default, &via_shards] {
            service.register("m", &outcome.model);
            assert!(service.resolve("m", &claim).unwrap().verified);
            assert_eq!(service.max_docket(), None);
        }
        assert_eq!(
            via_default.resolve("m", &claim).unwrap(),
            via_shards.resolve("m", &claim).unwrap()
        );
    }

    #[test]
    fn claim_cache_dedups_and_evicts_by_lru_byte_budget() {
        let (test, outcome) = embedded();
        let big = claim_for(&outcome, &test);
        let small = OwnershipClaim::new(
            outcome.signature.clone(),
            outcome.trigger_set.clone(),
            outcome.trigger_set.clone(),
        );
        // Unlimited cache: re-inserting an equal claim dedups to one entry
        // sharing one body.
        let cache = ClaimCache::new(0);
        let (digest_a, body_a) = cache.insert(big.clone());
        let (digest_b, body_b) = cache.insert(big.clone());
        assert_eq!(digest_a, digest_b);
        assert!(Arc::ptr_eq(&body_a, &body_b));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&digest_a).as_deref(), Some(&big));
        assert!(cache.get(&PayloadDigest { hi: 0, lo: 0 }).is_none());

        // A budget that fits two big claims or (big + small), but not two
        // big claims *and* the small one: the third insertion must evict
        // exactly the least-recently-used entry, and `get` refreshes
        // recency.
        let budget = 2 * claim_footprint(&big) + claim_footprint(&small) - 1;
        let cache = ClaimCache::new(budget);
        let (big_digest, _) = cache.insert(big.clone());
        let (small_digest, _) = cache.insert(small.clone());
        assert_eq!(cache.len(), 2, "both claims fit the budget exactly");
        // Touch the big claim so the small one is now least recently used,
        // then overflow the budget: the small claim is evicted.
        assert!(cache.get(&big_digest).is_some());
        let third = OwnershipClaim::new(
            Signature::from_bits(outcome.signature.bits().iter().map(|&b| !b).collect()),
            outcome.trigger_set.clone(),
            test.clone(),
        );
        let (third_digest, _) = cache.insert(third);
        assert!(cache.get(&small_digest).is_none(), "LRU entry evicted");
        assert!(cache.get(&big_digest).is_some());
        assert!(cache.get(&third_digest).is_some());
        assert!(cache.bytes() <= budget);
    }

    #[test]
    fn resolve_docket_shared_dedups_to_bit_identical_verdicts() {
        let (test, outcome) = embedded();
        let genuine = claim_for(&outcome, &test);
        let forged = OwnershipClaim::new(
            Signature::from_bits(outcome.signature.bits().iter().map(|&b| !b).collect()),
            outcome.trigger_set.clone(),
            test.clone(),
        );
        let service = DisputeService::builder().build().unwrap();
        service.register("m", &outcome.model);

        // A docket repeating two distinct claims many times, plus one
        // unknown-model dispute: exactly the wire fixture shape.
        let disputes: Vec<Dispute> = (0..12)
            .map(|i| {
                let claim = if i % 2 == 0 {
                    genuine.clone()
                } else {
                    forged.clone()
                };
                let model_id = if i == 5 { "ghost" } else { "m" };
                Dispute::new(model_id, claim)
            })
            .collect();
        let shared: Vec<SharedDispute> = disputes
            .iter()
            .map(|dispute| {
                let (digest, claim) = service.claims().insert(dispute.claim.clone());
                SharedDispute::new(dispute.model_id.clone(), digest, claim)
            })
            .collect();
        let reference = service.resolve_many(&disputes);
        let deduped = service.resolve_docket_shared(&shared).unwrap();
        assert_eq!(deduped.len(), reference.len());
        for (i, (a, b)) in deduped.iter().zip(&reference).enumerate() {
            assert_eq!(a, b, "dispute {i}");
        }
        // Only two distinct claims ever entered the cache.
        assert_eq!(service.claims().len(), 2);

        // The docket cap counts pre-dedup size.
        let capped = DisputeService::builder().max_docket(3).build().unwrap();
        capped.register("m", &outcome.model);
        let oversized: Vec<SharedDispute> = shared[..4].to_vec();
        assert!(matches!(
            capped.resolve_docket_shared(&oversized).unwrap_err(),
            WatermarkError::DocketTooLarge { size: 4, max: 3 }
        ));
    }

    #[test]
    fn register_by_digest_reuses_the_compiled_form_until_deregistered() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let service = DisputeService::builder().build().unwrap();
        let (digest, compiled) = service.register_digested("a", &outcome.model);
        assert_eq!(digest, PayloadDigest::of_model(&outcome.model));
        // Digest-only registration under a second id: no recompilation,
        // same compiled form, resolvable.
        let reused = service.register_by_digest("b", digest).unwrap();
        assert!(Arc::ptr_eq(&compiled, &reused));
        assert_eq!(service.compile_count(), 1);
        assert!(service.resolve("b", &claim).unwrap().verified);
        // Unknown digests miss.
        assert!(service.register_by_digest("c", PayloadDigest { hi: 1, lo: 2 }).is_none());
        // The index survives while any id still serves the compiled form …
        service.deregister("a");
        assert!(service.register_by_digest("a2", digest).is_some());
        // … and is pruned once the last id is gone.
        service.deregister("a2");
        service.deregister("b");
        assert!(
            service.register_by_digest("d", digest).is_none(),
            "a fully deregistered model must not be resurrectable by digest"
        );
    }

    fn tenant(name: &str) -> TenantId {
        TenantId::new(name).unwrap()
    }

    #[test]
    fn tenant_namespaces_isolate_models() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let service = DisputeService::builder().build().unwrap();
        let acme = tenant("acme");
        let rival = tenant("rival");
        service.register_digested_as(&acme, "prod", &outcome.model).unwrap();
        assert_eq!(service.model_ids_for(&acme), ["prod"]);
        assert!(service.model_ids_for(&rival).is_empty());
        assert!(service.resolve_as(&acme, "prod", &claim).unwrap().verified);
        // Probing another tenant's id is Forbidden, not UnknownModel.
        assert!(matches!(
            service.resolve_as(&rival, "prod", &claim).unwrap_err(),
            WatermarkError::Forbidden { .. }
        ));
        assert!(matches!(
            service.deregister_as(&rival, "prod").unwrap_err(),
            WatermarkError::Forbidden { .. }
        ));
        // A digest uploaded by one tenant never matches in another
        // namespace, even though the content is identical.
        let digest = PayloadDigest::of_model(&outcome.model);
        assert!(service.register_by_digest_as(&rival, "copy", digest).unwrap().is_none());
        assert!(service.register_by_digest_as(&acme, "copy", digest).unwrap().is_some());
        // An id registered nowhere stays UnknownModel.
        assert!(matches!(
            service.resolve_as(&rival, "ghost", &claim).unwrap_err(),
            WatermarkError::UnknownModel { .. }
        ));
        // Deregistering your own id works and leaves the rest untouched.
        assert!(service.deregister_as(&acme, "prod").unwrap());
        assert_eq!(service.model_ids_for(&acme), ["copy"]);
    }

    #[test]
    fn tenant_quotas_refuse_before_allocation() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let quotas = TenantQuotas {
            max_models: 1,
            max_docket: 2,
            max_claim_bytes: claim_footprint(&claim) + 10,
            max_in_flight: 0,
        };
        let service = DisputeService::builder().tenant_quotas(quotas).build().unwrap();
        let acme = tenant("acme");
        service.register_digested_as(&acme, "one", &outcome.model).unwrap();
        let err = service.register_digested_as(&acme, "two", &outcome.model).unwrap_err();
        assert!(matches!(
            err,
            WatermarkError::QuotaExceeded { ref resource, used: 2, limit: 1 } if resource == "models"
        ));
        // Re-registering a held id is replacement, not growth.
        service.register_digested_as(&acme, "one", &outcome.model).unwrap();
        // Every tenant gets its own budget.
        service.register_digested_as(&tenant("other"), "one", &outcome.model).unwrap();

        // Docket axis: the per-tenant quota applies even with no global cap.
        let (digest, shared) =
            service.claims().insert_for(&acme, service.quotas(), claim.clone()).unwrap();
        let disputes: Vec<SharedDispute> =
            (0..3).map(|_| SharedDispute::new("one", digest, Arc::clone(&shared))).collect();
        assert!(matches!(
            service.resolve_docket_shared_as(&acme, &disputes).unwrap_err(),
            WatermarkError::QuotaExceeded { ref resource, .. } if resource == "docket"
        ));
        let verdicts = service.resolve_docket_shared_as(&acme, &disputes[..2]).unwrap();
        assert!(verdicts.iter().all(|v| v.as_ref().unwrap().verified));

        // Claim-bytes axis: the refused insert allocates nothing, and
        // re-inserting an already-owned claim is never re-charged.
        service.claims().insert_for(&acme, service.quotas(), claim.clone()).unwrap();
        let small = OwnershipClaim::new(
            outcome.signature.clone(),
            outcome.trigger_set.clone(),
            outcome.trigger_set.clone(),
        );
        let before = service.claims().len();
        let err = service.claims().insert_for(&acme, service.quotas(), small.clone()).unwrap_err();
        assert!(matches!(
            err,
            WatermarkError::QuotaExceeded { ref resource, .. } if resource == "claim-bytes"
        ));
        assert_eq!(service.claims().len(), before, "refused insert allocates nothing");
        // The same claim fits another tenant's untouched budget.
        service.claims().insert_for(&tenant("other"), service.quotas(), small).unwrap();
    }

    #[test]
    fn model_cache_evicts_lru_and_recompiles_transparently() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let reference = verify_ownership(&outcome.model, &claim);
        let dir = std::env::temp_dir().join(format!("wdte-evict-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path_a = dir.join("a.wdte");
        let path_b = dir.join("b.wdte");
        persist::save(&path_a, &outcome.model, persist::Format::Binary).unwrap();
        persist::save(&path_b, &outcome.model, persist::Format::Binary).unwrap();
        // A budget that fits one compiled forest but not two.
        let budget = model_footprint(&CompiledForest::compile(&outcome.model)) * 3 / 2;
        let service = DisputeService::builder().model_cache_bytes(budget).build().unwrap();
        let anon = TenantId::anonymous();

        service.register_from_file("a", &path_a).unwrap();
        service.register_from_file("b", &path_b).unwrap();
        assert_eq!(service.len(), 2, "an evicted model stays registered");
        assert_eq!(service.model_ids(), ["a", "b"]);
        assert!(service.resident_model_bytes() <= budget);
        assert_eq!(
            service.ledger().counters(&anon).evictions,
            1,
            "registering b evicted a"
        );

        // Resolving against the evicted model transparently reloads and
        // recompiles it — bit-identical verdict, one recorded cache miss —
        // and LRU pressure then pushes b out.
        assert_eq!(service.resolve("a", &claim).unwrap(), reference);
        assert_eq!(service.ledger().counters(&anon).cache_misses, 1);
        assert_eq!(service.ledger().counters(&anon).evictions, 2);
        assert!(service.resident_model_bytes() <= budget);
        assert_eq!(service.resolve("b", &claim).unwrap(), reference);
        assert_eq!(service.ledger().counters(&anon).cache_misses, 2);

        // A wire-registered model has no artefact to fall back to: it is
        // never evicted, whatever the budget says.
        service.register("wire-only", &outcome.model);
        assert!(service.resolve("wire-only", &claim).unwrap().verified);
        assert!(service.resolve("wire-only", &claim).unwrap().verified);
        assert_eq!(
            service.ledger().counters(&anon).cache_misses,
            2,
            "resident models never miss"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_start_models_are_pinned_and_never_evicted() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let dir = std::env::temp_dir().join(format!("wdte-pinned-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        persist::save(dir.join("m.wdte"), &outcome.model, persist::Format::Binary).unwrap();
        ModelManifest {
            models: vec![ManifestEntry {
                model_id: "warm".into(),
                file: "m.wdte".into(),
            }],
        }
        .save_dir(&dir)
        .unwrap();
        // A budget far smaller than the model: a pinned entry still boots
        // resident and stays resident.
        let service = DisputeService::builder()
            .warm_start_dir(&dir)
            .model_cache_bytes(1)
            .build()
            .unwrap();
        assert_eq!(service.compile_count(), 1);
        assert!(service.resolve("warm", &claim).unwrap().verified);
        assert!(service.resolve("warm", &claim).unwrap().verified);
        assert_eq!(service.compile_count(), 1, "pinned models never leave residency");
        assert_eq!(service.ledger().counters(&TenantId::anonymous()).evictions, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Pins the claim-cache byte accounting: dataset payloads + signature +
    /// the documented fixed per-entry overhead, with every owner of a
    /// deduplicated entry charged its full footprint.
    #[test]
    fn claim_accounting_includes_entry_overhead_and_attributes_owners() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let payload = claim.trigger_set.len() * (claim.trigger_set.num_features() * 8 + 1)
            + claim.test_set.len() * (claim.test_set.num_features() * 8 + 1)
            + claim.signature.len();
        assert_eq!(claim_footprint(&claim), payload + CLAIM_ENTRY_OVERHEAD_BYTES);

        let cache = ClaimCache::new(0);
        cache.insert(claim.clone());
        assert_eq!(cache.bytes(), claim_footprint(&claim));
        assert_eq!(
            cache.tenant_bytes(&TenantId::anonymous()),
            claim_footprint(&claim)
        );

        // Two tenants uploading the same claim share one body but are each
        // attributed its full cost.
        let cache = ClaimCache::new(0);
        let quotas = TenantQuotas::unlimited();
        cache.insert_for(&tenant("a"), &quotas, claim.clone()).unwrap();
        cache.insert_for(&tenant("b"), &quotas, claim.clone()).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), claim_footprint(&claim));
        assert_eq!(cache.tenant_bytes(&tenant("a")), claim_footprint(&claim));
        assert_eq!(cache.tenant_bytes(&tenant("b")), claim_footprint(&claim));
        assert_eq!(cache.tenant_bytes(&tenant("c")), 0);
    }

    #[test]
    fn deregistration_drops_the_models_cached_claims() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let service = DisputeService::builder().build().unwrap();
        let acme = tenant("acme");
        service.register_digested_as(&acme, "prod", &outcome.model).unwrap();
        service.register_digested_as(&acme, "staging", &outcome.model).unwrap();

        // One claim adjudicated only against prod …
        let (digest, shared) =
            service.claims().insert_for(&acme, service.quotas(), claim.clone()).unwrap();
        let docket = [SharedDispute::new("prod", digest, Arc::clone(&shared))];
        service.resolve_docket_shared_as(&acme, &docket).unwrap();
        // … and one adjudicated against both models.
        let other = OwnershipClaim::new(
            outcome.signature.clone(),
            outcome.trigger_set.clone(),
            outcome.trigger_set.clone(),
        );
        let (other_digest, other_shared) =
            service.claims().insert_for(&acme, service.quotas(), other.clone()).unwrap();
        let docket = [
            SharedDispute::new("prod", other_digest, Arc::clone(&other_shared)),
            SharedDispute::new("staging", other_digest, other_shared),
        ];
        service.resolve_docket_shared_as(&acme, &docket).unwrap();
        assert_eq!(service.claims().len(), 2);

        assert!(service.deregister_as(&acme, "prod").unwrap());
        // The prod-only evidence is gone: a later digest reference must
        // re-upload instead of silently reusing a claim bound to the
        // retired model.
        assert!(service.claims().get(&digest).is_none(), "stale digest dropped");
        // Evidence still bound to a live model survives.
        assert!(service.claims().get(&other_digest).is_some());
        assert_eq!(service.claims().tenant_bytes(&acme), claim_footprint(&other));
    }

    #[test]
    fn stats_rows_report_counters_and_gauges() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let service = DisputeService::builder().build().unwrap();
        let acme = tenant("acme");
        service.register_digested_as(&acme, "prod", &outcome.model).unwrap();
        let (digest, shared) =
            service.claims().insert_for(&acme, service.quotas(), claim.clone()).unwrap();
        let docket: Vec<SharedDispute> = (0..3)
            .map(|_| SharedDispute::new("prod", digest, Arc::clone(&shared)))
            .collect();
        service.resolve_docket_shared_as(&acme, &docket).unwrap();
        let row = service.stats_for(&acme);
        assert_eq!(row.tenant, "acme");
        assert_eq!((row.models, row.dockets, row.claims), (1, 1, 3));
        assert_eq!(row.claim_bytes as usize, claim_footprint(&claim));
        assert_eq!(row.in_flight, 0);

        // The open-judge view reports every namespace, sorted with the
        // anonymous tenant first (it sorts as the empty id).
        service.register("open-model", &outcome.model);
        let all = service.stats_all();
        let names: Vec<&str> = all.iter().map(|row| row.tenant.as_str()).collect();
        assert_eq!(names, ["anonymous", "acme"]);
        assert_eq!(all[0].models, 1);
        assert_eq!(all[1].dockets, 1);
    }
}
