//! Concurrent dispute-resolution service.
//!
//! The paper's verification protocol is a judge-mediated batch interaction,
//! and the ROADMAP north star is serving dispute traffic at scale. The
//! one-shot [`crate::verify_ownership`] entry point recompiles the suspect
//! forest on every call — fine for a single dispute, wasteful for a judge
//! adjudicating many claims against the same deployment. [`DisputeService`]
//! closes that gap:
//!
//! * **Registry** — suspect models are registered under a caller-chosen id
//!   and compiled exactly once into a shared [`Arc<CompiledForest>`],
//!   however many claims are later resolved against them. Registration
//!   publishes the `Arc` only after compilation completes, so concurrent
//!   resolvers can never observe a partially compiled forest.
//! * **Concurrency** — [`DisputeService::resolve_many`] fans independent
//!   disputes out across worker threads, and every verification batch is
//!   itself sharded through
//!   [`CompiledForest::par_predict_all_batch`]. Results are stitched back
//!   in input order, so reports are bit-identical to the sequential path
//!   regardless of the worker-thread count.
//!
//! The service is `&self`-only and `Sync`: one instance can be shared
//! behind an `Arc` by any number of request threads.

use crate::error::{WatermarkError, WatermarkResult};
use crate::persist;
use crate::verify::{verify_ownership, ModelOracle, OwnershipClaim, VerificationReport};
use rayon::prelude::*;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use wdte_data::{Dataset, Label};
use wdte_trees::{CompiledForest, RandomForest};

/// Default number of verification-batch rows each worker shard handles.
/// Small enough to spread one large claim across every core, large enough
/// that the per-shard row copy is negligible next to the tree walks.
pub const DEFAULT_BATCH_SHARD_ROWS: usize = 256;

/// One dispute filed with the judge: a claim against a registered model.
#[derive(Debug, Clone, PartialEq)]
pub struct Dispute {
    /// Registry id of the suspect model.
    pub model_id: String,
    /// The owner's evidence.
    pub claim: OwnershipClaim,
}

impl Dispute {
    /// Builds a dispute against the model registered under `model_id`.
    pub fn new(model_id: impl Into<String>, claim: OwnershipClaim) -> Self {
        Self {
            model_id: model_id.into(),
            claim,
        }
    }
}

/// A registry of compiled suspect models plus a concurrent resolver for
/// ownership claims against them. See the module docs for the guarantees.
#[derive(Debug)]
pub struct DisputeService {
    registry: RwLock<HashMap<String, Arc<CompiledForest>>>,
    compile_count: AtomicUsize,
    batch_shard_rows: usize,
}

impl Default for DisputeService {
    fn default() -> Self {
        Self::new()
    }
}

impl DisputeService {
    /// Creates an empty service with the default batch shard size.
    pub fn new() -> Self {
        Self {
            registry: RwLock::new(HashMap::new()),
            compile_count: AtomicUsize::new(0),
            batch_shard_rows: DEFAULT_BATCH_SHARD_ROWS,
        }
    }

    /// Creates an empty service with a custom verification-batch shard
    /// size (rows per worker task; clamped to at least 1).
    pub fn with_batch_shard_rows(batch_shard_rows: usize) -> Self {
        Self {
            batch_shard_rows: batch_shard_rows.max(1),
            ..Self::new()
        }
    }

    /// Registers a pointer-tree model, compiling it exactly once. The
    /// compiled form is shared by every subsequent resolution. Registering
    /// an id again replaces the previous model.
    pub fn register(&self, model_id: impl Into<String>, model: &RandomForest) -> Arc<CompiledForest> {
        // Compile outside the registry lock: registration of a large model
        // must not block resolutions against other models.
        let compiled = Arc::new(CompiledForest::compile(model));
        self.compile_count.fetch_add(1, Ordering::Relaxed);
        self.publish(model_id.into(), Arc::clone(&compiled));
        compiled
    }

    /// Registers an already-compiled model (e.g. loaded from a persisted
    /// artefact) without paying another compilation.
    pub fn register_compiled(
        &self,
        model_id: impl Into<String>,
        compiled: CompiledForest,
    ) -> Arc<CompiledForest> {
        let compiled = Arc::new(compiled);
        self.publish(model_id.into(), Arc::clone(&compiled));
        compiled
    }

    /// Registers a model from a persisted artefact: either a
    /// [`CompiledForest`] (as written by `save_model_artifacts` /
    /// `persist::save`) or a pointer-tree [`RandomForest`], which is then
    /// compiled once.
    pub fn register_from_file(
        &self,
        model_id: impl Into<String>,
        path: impl AsRef<Path>,
    ) -> WatermarkResult<Arc<CompiledForest>> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|err| WatermarkError::Io {
            path: path.display().to_string(),
            message: err.to_string(),
        })?;
        match persist::from_bytes::<CompiledForest>(&bytes) {
            Ok(compiled) => Ok(self.register_compiled(model_id, compiled)),
            // Container-level failures (wrong magic, future format version)
            // would hit any payload type: propagate.
            Err(
                err @ (WatermarkError::UnrecognizedFormat { .. }
                | WatermarkError::UnsupportedFormatVersion { .. }),
            ) => Err(err),
            // The container decoded but the payload is not a compiled
            // forest — fall back to a pointer-tree model and compile it. If
            // that fails too, the file is neither kind of model artefact:
            // report the first decode error, which names the corruption
            // precisely rather than a misleading shape mismatch.
            Err(first) => match persist::from_bytes::<RandomForest>(&bytes) {
                Ok(model) => Ok(self.register(model_id, &model)),
                Err(_) => Err(first),
            },
        }
    }

    fn publish(&self, model_id: String, compiled: Arc<CompiledForest>) {
        self.registry
            .write()
            .expect("dispute registry lock is never poisoned")
            .insert(model_id, compiled);
    }

    /// The compiled model registered under `model_id`, if any.
    pub fn model(&self, model_id: &str) -> Option<Arc<CompiledForest>> {
        self.registry
            .read()
            .expect("dispute registry lock is never poisoned")
            .get(model_id)
            .cloned()
    }

    /// Removes a model from the registry; returns the compiled form if the
    /// id was registered. In-flight resolutions holding the `Arc` finish
    /// unaffected.
    pub fn deregister(&self, model_id: &str) -> Option<Arc<CompiledForest>> {
        self.registry
            .write()
            .expect("dispute registry lock is never poisoned")
            .remove(model_id)
    }

    /// Ids of every registered model, in unspecified order.
    pub fn model_ids(&self) -> Vec<String> {
        self.registry
            .read()
            .expect("dispute registry lock is never poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.registry.read().expect("dispute registry lock is never poisoned").len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of [`CompiledForest::compile`] calls this service has
    /// performed — the compile-once guarantee made observable: resolving
    /// any number of claims never increments it.
    pub fn compile_count(&self) -> usize {
        self.compile_count.load(Ordering::Relaxed)
    }

    /// Resolves one claim against a registered model. The verification
    /// batch is sharded across worker threads; the report is identical to
    /// [`crate::verify_ownership`] on the same model.
    pub fn resolve(
        &self,
        model_id: &str,
        claim: &OwnershipClaim,
    ) -> WatermarkResult<VerificationReport> {
        let compiled = self.model(model_id).ok_or_else(|| WatermarkError::UnknownModel {
            model_id: model_id.to_string(),
        })?;
        let oracle = ShardedOracle {
            compiled: &compiled,
            shard_rows: self.batch_shard_rows,
        };
        Ok(verify_ownership(&oracle, claim))
    }

    /// Resolves many disputes concurrently, returning one verdict per
    /// dispute in input order. Each dispute is an independent worker task;
    /// disputes against the same model share its one compiled form.
    pub fn resolve_many(&self, disputes: &[Dispute]) -> Vec<WatermarkResult<VerificationReport>> {
        disputes
            .par_iter()
            .map(|dispute| self.resolve(&dispute.model_id, &dispute.claim))
            .collect()
    }
}

/// Oracle adapter sharding each verification batch across worker threads.
struct ShardedOracle<'a> {
    compiled: &'a CompiledForest,
    shard_rows: usize,
}

impl ModelOracle for ShardedOracle<'_> {
    fn num_trees(&self) -> usize {
        self.compiled.num_trees()
    }

    fn query(&self, instance: &[f64]) -> Vec<Label> {
        self.compiled.predict_all(instance)
    }

    fn query_batch(&self, batch: &Dataset) -> Vec<Vec<Label>> {
        self.compiled
            .par_predict_all_batch(batch.features(), self.shard_rows)
            .iter()
            .map(<[Label]>::to_vec)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WatermarkConfig;
    use crate::signature::Signature;
    use crate::watermark::Watermarker;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wdte_data::SyntheticSpec;

    fn embedded() -> (Dataset, crate::watermark::WatermarkOutcome) {
        let dataset = SyntheticSpec::breast_cancer_like()
            .scaled(0.7)
            .generate(&mut SmallRng::seed_from_u64(71));
        let mut rng = SmallRng::seed_from_u64(72);
        let (train, test) = dataset.split_stratified(0.75, &mut rng);
        let signature = Signature::random(10, 0.5, &mut rng);
        let watermarker = Watermarker::new(WatermarkConfig {
            num_trees: 10,
            ..WatermarkConfig::fast()
        });
        let outcome = watermarker.embed(&train, &signature, &mut rng).unwrap();
        (test, outcome)
    }

    fn claim_for(outcome: &crate::watermark::WatermarkOutcome, test: &Dataset) -> OwnershipClaim {
        OwnershipClaim::new(
            outcome.signature.clone(),
            outcome.trigger_set.clone(),
            test.clone(),
        )
    }

    #[test]
    fn resolve_matches_the_one_shot_path_and_compiles_once() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let service = DisputeService::new();
        service.register("bobs-api", &outcome.model);
        assert_eq!(service.compile_count(), 1);

        let direct = verify_ownership(&outcome.model, &claim);
        for _ in 0..5 {
            let resolved = service.resolve("bobs-api", &claim).unwrap();
            assert_eq!(resolved, direct);
            assert!(resolved.verified);
        }
        assert_eq!(service.compile_count(), 1, "resolutions never recompile");
    }

    #[test]
    fn resolve_many_returns_verdicts_in_input_order() {
        let (test, outcome) = embedded();
        let genuine = claim_for(&outcome, &test);
        let mut rng = SmallRng::seed_from_u64(73);
        let fake_signature = Signature::random(10, 0.5, &mut rng);
        assert!(fake_signature.hamming_distance(&outcome.signature) > 0);
        let forged = OwnershipClaim::new(fake_signature, outcome.trigger_set.clone(), test.clone());

        let service = DisputeService::new();
        service.register("m", &outcome.model);
        let disputes: Vec<Dispute> = (0..8)
            .map(|i| {
                let claim = if i % 2 == 0 {
                    genuine.clone()
                } else {
                    forged.clone()
                };
                Dispute::new("m", claim)
            })
            .collect();
        let verdicts = service.resolve_many(&disputes);
        assert_eq!(verdicts.len(), 8);
        for (i, verdict) in verdicts.iter().enumerate() {
            let report = verdict.as_ref().unwrap();
            assert_eq!(report.verified, i % 2 == 0, "dispute {i}");
        }
        assert_eq!(service.compile_count(), 1);
    }

    #[test]
    fn unknown_model_is_a_typed_error() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let service = DisputeService::new();
        let err = service.resolve("nobody", &claim).unwrap_err();
        assert!(matches!(err, WatermarkError::UnknownModel { model_id } if model_id == "nobody"));
    }

    #[test]
    fn registry_lifecycle() {
        let (_, outcome) = embedded();
        let service = DisputeService::new();
        assert!(service.is_empty());
        service.register("a", &outcome.model);
        let compiled = CompiledForest::compile(&outcome.model);
        service.register_compiled("b", compiled);
        assert_eq!(service.len(), 2);
        let mut ids = service.model_ids();
        ids.sort();
        assert_eq!(ids, ["a", "b"]);
        // Only the pointer-tree registration paid a compile.
        assert_eq!(service.compile_count(), 1);
        assert!(service.deregister("a").is_some());
        assert!(service.model("a").is_none());
        assert!(service.model("b").is_some());
        assert_eq!(service.len(), 1);
    }

    #[test]
    fn re_registration_replaces_the_model() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let mut rng = SmallRng::seed_from_u64(74);
        let dataset = SyntheticSpec::breast_cancer_like()
            .scaled(0.4)
            .generate(&mut SmallRng::seed_from_u64(75));
        let unrelated = Watermarker::new(WatermarkConfig {
            num_trees: 10,
            ..WatermarkConfig::fast()
        })
        .train_baseline(&dataset, &mut rng);

        let service = DisputeService::new();
        service.register("m", &unrelated);
        assert!(!service.resolve("m", &claim).unwrap().verified);
        service.register("m", &outcome.model);
        assert!(service.resolve("m", &claim).unwrap().verified);
        assert_eq!(service.len(), 1);
    }

    #[test]
    fn sharded_batches_match_for_every_shard_size() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let reference = verify_ownership(&outcome.model, &claim);
        for shard_rows in [1, 7, 64, DEFAULT_BATCH_SHARD_ROWS, usize::MAX] {
            let service = DisputeService::with_batch_shard_rows(shard_rows);
            service.register("m", &outcome.model);
            assert_eq!(
                service.resolve("m", &claim).unwrap(),
                reference,
                "shard_rows={shard_rows}"
            );
        }
    }

    #[test]
    fn register_from_file_accepts_compiled_and_pointer_artefacts() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let dir = std::env::temp_dir().join(format!("wdte-service-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let compiled_path = dir.join("model.compiled.json");
        let pointer_path = dir.join("model.wdte");
        persist::save(
            &compiled_path,
            &CompiledForest::compile(&outcome.model),
            persist::Format::Json,
        )
        .unwrap();
        persist::save(&pointer_path, &outcome.model, persist::Format::Binary).unwrap();

        let service = DisputeService::new();
        service.register_from_file("compiled", &compiled_path).unwrap();
        service.register_from_file("pointer", &pointer_path).unwrap();
        let from_compiled = service.resolve("compiled", &claim).unwrap();
        let from_pointer = service.resolve("pointer", &claim).unwrap();
        assert_eq!(from_compiled, from_pointer);
        assert!(from_compiled.verified);
        assert!(service.register_from_file("missing", dir.join("nope.wdte")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
