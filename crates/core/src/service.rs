//! Concurrent dispute-resolution service.
//!
//! The paper's verification protocol is a judge-mediated batch interaction,
//! and the ROADMAP north star is serving dispute traffic at scale. The
//! one-shot [`crate::verify_ownership`] entry point recompiles the suspect
//! forest on every call — fine for a single dispute, wasteful for a judge
//! adjudicating many claims against the same deployment. [`DisputeService`]
//! closes that gap:
//!
//! * **Registry** — suspect models are registered under a caller-chosen id
//!   and compiled exactly once into a shared [`Arc<CompiledForest>`],
//!   however many claims are later resolved against them. Registration
//!   publishes the `Arc` only after compilation completes, so concurrent
//!   resolvers can never observe a partially compiled forest.
//! * **Concurrency** — [`DisputeService::resolve_many`] fans independent
//!   disputes out across the shared work-stealing pool, and every
//!   verification batch is itself sharded through
//!   [`CompiledForest::par_predict_all_batch`] — a genuinely two-level
//!   fan-out: the pool schedules one dispute's batch shards onto workers
//!   that finished their own disputes early, instead of serializing the
//!   inner level as the old chunk-and-join shim did. Results are stitched
//!   back in input order, so reports are bit-identical to the sequential
//!   path regardless of the worker-thread count.
//!
//! The service is `&self`-only and `Sync`: one instance can be shared
//! behind an `Arc` by any number of request threads.
//!
//! **Construction** goes through [`DisputeService::builder`], which also
//! warm-starts the registry from a directory of persisted model artefacts
//! (a [`ModelManifest`] written by the `table2` experiment), so a judge
//! process boots from disk alone:
//!
//! ```rust,ignore
//! let service = DisputeService::builder()
//!     .batch_shard_rows(128)
//!     .max_docket(1024)
//!     .warm_start_dir("results/models")
//!     .build()?;
//! ```

use crate::error::{WatermarkError, WatermarkResult};
use crate::persist;
use crate::proto::PayloadDigest;
use crate::verify::{verify_ownership, ModelOracle, OwnershipClaim, VerificationReport};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use wdte_data::{Dataset, Label};
use wdte_trees::{CompiledForest, Kernel, RandomForest};

/// Default number of verification-batch rows each worker shard handles.
/// Small enough to spread one large claim across every core, large enough
/// that the per-shard row copy is negligible next to the tree walks.
pub const DEFAULT_BATCH_SHARD_ROWS: usize = 256;

/// Default byte budget of the digest-keyed claim cache (256 MiB of claim
/// payload — roughly a few hundred typical claims).
pub const DEFAULT_CLAIM_CACHE_BYTES: usize = 256 << 20;

/// File name of the model manifest inside a warm-start directory.
pub const MODEL_MANIFEST_FILE: &str = "manifest.json";

/// One dispute filed with the judge: a claim against a registered model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dispute {
    /// Registry id of the suspect model.
    pub model_id: String,
    /// The owner's evidence.
    pub claim: OwnershipClaim,
}

impl Dispute {
    /// Builds a dispute against the model registered under `model_id`.
    pub fn new(model_id: impl Into<String>, claim: OwnershipClaim) -> Self {
        Self {
            model_id: model_id.into(),
            claim,
        }
    }
}

/// One dispute of a content-addressed docket, claims shared rather than
/// owned: the form the wire front-end hands to
/// [`DisputeService::resolve_docket_shared`] after resolving digest
/// references against the claim cache. The digest keys the deduplication —
/// two disputes with the same `(model_id, digest)` pair are resolved once
/// and share the verdict.
#[derive(Debug, Clone)]
pub struct SharedDispute {
    /// Registry id of the suspect model.
    pub model_id: String,
    /// Content digest of the claim (as computed by [`ClaimCache::insert`]).
    pub digest: PayloadDigest,
    /// The owner's evidence, shared with the cache.
    pub claim: Arc<OwnershipClaim>,
}

impl SharedDispute {
    /// Builds a shared dispute.
    pub fn new(model_id: impl Into<String>, digest: PayloadDigest, claim: Arc<OwnershipClaim>) -> Self {
        Self {
            model_id: model_id.into(),
            digest,
            claim,
        }
    }
}

/// Digest-keyed cache of claim bodies, the server half of the v2 wire
/// protocol's content addressing: a claim uploaded once is later
/// referenced by its [`PayloadDigest`] alone. Digests are always computed
/// *here*, from the bytes actually received — a peer cannot bind a digest
/// to content the judge never saw, so a poisoned entry would require a
/// digest collision, not a lying client.
///
/// Eviction is least-recently-used over a byte budget estimated from the
/// claim's dataset payloads (`0` = unlimited, matching the codebase's
/// 0-disables convention). Evicting an entry only drops the cache's
/// reference: in-flight resolutions holding the `Arc` finish unaffected,
/// and a peer that references an evicted digest is asked to re-upload via
/// `NeedPayload`.
#[derive(Debug)]
pub struct ClaimCache {
    budget_bytes: usize,
    inner: Mutex<ClaimCacheInner>,
}

#[derive(Debug, Default)]
struct ClaimCacheInner {
    map: HashMap<PayloadDigest, Arc<OwnershipClaim>>,
    /// Digests in least-recently-used-first order.
    order: VecDeque<PayloadDigest>,
    bytes: usize,
}

/// Approximate heap footprint of a claim: the dataset payloads dominate
/// (8 bytes per feature value), signature and labels are rounding error
/// but counted for claims with degenerate shapes.
fn claim_footprint(claim: &OwnershipClaim) -> usize {
    let dataset = |d: &Dataset| d.len() * (d.num_features() * 8 + 1);
    dataset(&claim.trigger_set) + dataset(&claim.test_set) + claim.signature.len()
}

impl ClaimCache {
    /// Creates a cache with the given byte budget (`0` = unlimited).
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            inner: Mutex::new(ClaimCacheInner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ClaimCacheInner> {
        self.inner.lock().expect("claim cache lock is never poisoned")
    }

    /// Inserts a claim, computing its digest from the content, and returns
    /// the digest with the (possibly pre-existing) shared body. Re-inserting
    /// an equal claim refreshes its recency instead of duplicating it.
    pub fn insert(&self, claim: OwnershipClaim) -> (PayloadDigest, Arc<OwnershipClaim>) {
        let digest = PayloadDigest::of_claim(&claim);
        let mut inner = self.lock();
        if let Some(existing) = inner.map.get(&digest).cloned() {
            Self::touch(&mut inner, digest);
            return (digest, existing);
        }
        let footprint = claim_footprint(&claim);
        let shared = Arc::new(claim);
        inner.map.insert(digest, Arc::clone(&shared));
        inner.order.push_back(digest);
        inner.bytes += footprint;
        if self.budget_bytes > 0 {
            while inner.bytes > self.budget_bytes {
                let Some(oldest) = inner.order.pop_front() else {
                    break;
                };
                if let Some(evicted) = inner.map.remove(&oldest) {
                    inner.bytes = inner.bytes.saturating_sub(claim_footprint(&evicted));
                }
            }
        }
        (digest, shared)
    }

    /// The cached claim with this digest, if present; refreshes recency.
    pub fn get(&self, digest: &PayloadDigest) -> Option<Arc<OwnershipClaim>> {
        let mut inner = self.lock();
        let found = inner.map.get(digest).cloned();
        if found.is_some() {
            Self::touch(&mut inner, *digest);
        }
        found
    }

    fn touch(inner: &mut ClaimCacheInner, digest: PayloadDigest) {
        if let Some(position) = inner.order.iter().position(|d| *d == digest) {
            inner.order.remove(position);
            inner.order.push_back(digest);
        }
    }

    /// Number of cached claims.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated bytes of cached claim payload.
    pub fn bytes(&self) -> usize {
        self.lock().bytes
    }

    /// The configured byte budget (`0` = unlimited).
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }
}

/// Manifest of persisted model artefacts inside a warm-start directory
/// (see [`MODEL_MANIFEST_FILE`]): the registry ids a booting judge should
/// serve, each mapped to an artefact file relative to the directory. The
/// manifest is itself a versioned `persist` artefact (JSON envelope), so a
/// stale or corrupted manifest fails with the same typed errors as any
/// other artefact rather than silently warm-starting a partial registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelManifest {
    /// The models to register at boot, in registration order.
    pub models: Vec<ManifestEntry>,
}

/// One entry of a [`ModelManifest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Registry id the model is served under.
    pub model_id: String,
    /// Artefact file name, relative to the manifest's directory. Either a
    /// persisted pointer-tree [`RandomForest`] or a [`CompiledForest`].
    pub file: String,
}

impl ModelManifest {
    /// Loads the manifest of a warm-start directory.
    pub fn load_dir(dir: impl AsRef<Path>) -> WatermarkResult<Self> {
        persist::load(dir.as_ref().join(MODEL_MANIFEST_FILE))
    }

    /// Writes this manifest into `dir` as [`MODEL_MANIFEST_FILE`].
    pub fn save_dir(&self, dir: impl AsRef<Path>) -> WatermarkResult<()> {
        persist::save(
            dir.as_ref().join(MODEL_MANIFEST_FILE),
            self,
            persist::Format::Json,
        )
    }
}

/// Configures and builds a [`DisputeService`] — the one construction
/// path besides [`DisputeService::default`].
#[derive(Debug, Clone, Default)]
pub struct DisputeServiceBuilder {
    batch_shard_rows: Option<usize>,
    max_docket: Option<usize>,
    warm_start_dirs: Vec<PathBuf>,
    kernel: Option<Kernel>,
    claim_cache_bytes: Option<usize>,
}

impl DisputeServiceBuilder {
    /// Sets the verification-batch shard size (rows per worker task;
    /// clamped to at least 1). Defaults to [`DEFAULT_BATCH_SHARD_ROWS`].
    pub fn batch_shard_rows(mut self, rows: usize) -> Self {
        self.batch_shard_rows = Some(rows.max(1));
        self
    }

    /// Selects the batch-inference kernel every resolution runs
    /// (`serve_judge --kernel`). Defaults to [`Kernel::Auto`], which
    /// microprobes the candidates on each model's first batch and
    /// memoizes the winner. Kernel choice never changes verdicts — every
    /// kernel is bit-identical to the recursive walk — only throughput.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Caps the number of disputes [`DisputeService::resolve_docket`]
    /// accepts in one docket; oversized dockets are refused whole with
    /// [`WatermarkError::DocketTooLarge`]. Unlimited by default; passing
    /// `0` also means unlimited, matching the 0-disables convention of the
    /// `serve_judge` flags.
    pub fn max_docket(mut self, max: usize) -> Self {
        self.max_docket = (max > 0).then_some(max);
        self
    }

    /// Byte budget of the digest-keyed [`ClaimCache`] backing the wire
    /// protocol's content-addressed payloads (`serve_judge
    /// --claim-cache-mb`). `0` means unlimited, matching the 0-disables
    /// convention. Defaults to [`DEFAULT_CLAIM_CACHE_BYTES`].
    pub fn claim_cache_bytes(mut self, bytes: usize) -> Self {
        self.claim_cache_bytes = Some(bytes);
        self
    }

    /// Warm-starts the registry from a directory containing a
    /// [`ModelManifest`] plus the artefact files it names (as written by
    /// the `table2` experiment under `results/models/`). May be called
    /// multiple times; directories are loaded in call order at
    /// [`build`](Self::build) time.
    pub fn warm_start_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.warm_start_dirs.push(dir.into());
        self
    }

    /// Builds the service, registering every warm-start artefact. Fails
    /// with the underlying `persist` error if a manifest or artefact is
    /// missing, corrupted, or written by an unsupported format version.
    pub fn build(self) -> WatermarkResult<DisputeService> {
        let service = DisputeService::with_options(
            self.batch_shard_rows.unwrap_or(DEFAULT_BATCH_SHARD_ROWS),
            self.max_docket,
            self.kernel.unwrap_or_default(),
            self.claim_cache_bytes.unwrap_or(DEFAULT_CLAIM_CACHE_BYTES),
        );
        for dir in &self.warm_start_dirs {
            let manifest = ModelManifest::load_dir(dir)?;
            for entry in &manifest.models {
                service.register_from_file(&entry.model_id, dir.join(&entry.file))?;
            }
        }
        Ok(service)
    }
}

/// A registry of compiled suspect models plus a concurrent resolver for
/// ownership claims against them. See the module docs for the guarantees.
#[derive(Debug)]
pub struct DisputeService {
    registry: RwLock<HashMap<String, Arc<CompiledForest>>>,
    /// Compiled models by content digest, for digest-only re-registration
    /// ([`Self::register_by_digest`]). Entries are pruned when the last
    /// registry id sharing the compiled form is deregistered.
    model_digests: RwLock<HashMap<PayloadDigest, Arc<CompiledForest>>>,
    claims: ClaimCache,
    compile_count: AtomicUsize,
    batch_shard_rows: usize,
    max_docket: Option<usize>,
    kernel: Kernel,
}

impl Default for DisputeService {
    fn default() -> Self {
        Self::with_options(
            DEFAULT_BATCH_SHARD_ROWS,
            None,
            Kernel::default(),
            DEFAULT_CLAIM_CACHE_BYTES,
        )
    }
}

impl DisputeService {
    /// Starts configuring a service. See [`DisputeServiceBuilder`].
    pub fn builder() -> DisputeServiceBuilder {
        DisputeServiceBuilder::default()
    }

    fn with_options(
        batch_shard_rows: usize,
        max_docket: Option<usize>,
        kernel: Kernel,
        claim_cache_bytes: usize,
    ) -> Self {
        Self {
            registry: RwLock::new(HashMap::new()),
            model_digests: RwLock::new(HashMap::new()),
            claims: ClaimCache::new(claim_cache_bytes),
            compile_count: AtomicUsize::new(0),
            batch_shard_rows,
            max_docket,
            kernel,
        }
    }

    /// The digest-keyed claim cache backing content-addressed payloads.
    pub fn claims(&self) -> &ClaimCache {
        &self.claims
    }

    /// The batch-inference kernel configured via
    /// [`DisputeServiceBuilder::kernel`].
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Registers a pointer-tree model, compiling it exactly once. The
    /// compiled form is shared by every subsequent resolution. Registering
    /// an id again replaces the previous model.
    pub fn register(&self, model_id: impl Into<String>, model: &RandomForest) -> Arc<CompiledForest> {
        // Compile outside the registry lock: registration of a large model
        // must not block resolutions against other models.
        let compiled = Arc::new(CompiledForest::compile(model));
        self.compile_count.fetch_add(1, Ordering::Relaxed);
        self.publish(model_id.into(), Arc::clone(&compiled));
        compiled
    }

    /// Registers an already-compiled model (e.g. loaded from a persisted
    /// artefact) without paying another compilation.
    pub fn register_compiled(
        &self,
        model_id: impl Into<String>,
        compiled: CompiledForest,
    ) -> Arc<CompiledForest> {
        let compiled = Arc::new(compiled);
        self.publish(model_id.into(), Arc::clone(&compiled));
        compiled
    }

    /// Registers a model from a persisted artefact: either a
    /// [`CompiledForest`] (as written by `save_model_artifacts` /
    /// `persist::save`) or a pointer-tree [`RandomForest`], which is then
    /// compiled once.
    pub fn register_from_file(
        &self,
        model_id: impl Into<String>,
        path: impl AsRef<Path>,
    ) -> WatermarkResult<Arc<CompiledForest>> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|err| WatermarkError::Io {
            path: path.display().to_string(),
            message: err.to_string(),
        })?;
        match persist::from_bytes::<CompiledForest>(&bytes) {
            Ok(compiled) => Ok(self.register_compiled(model_id, compiled)),
            // Container-level failures (wrong magic, future format version)
            // would hit any payload type: propagate.
            Err(
                err @ (WatermarkError::UnrecognizedFormat { .. }
                | WatermarkError::UnsupportedFormatVersion { .. }),
            ) => Err(err),
            // The container decoded but the payload is not a compiled
            // forest — fall back to a pointer-tree model and compile it. If
            // that fails too, the file is neither kind of model artefact:
            // report the first decode error, which names the corruption
            // precisely rather than a misleading shape mismatch.
            Err(first) => match persist::from_bytes::<RandomForest>(&bytes) {
                Ok(model) => Ok(self.register(model_id, &model)),
                Err(_) => Err(first),
            },
        }
    }

    fn publish(&self, model_id: String, compiled: Arc<CompiledForest>) {
        self.registry
            .write()
            .expect("dispute registry lock is never poisoned")
            .insert(model_id, compiled);
    }

    /// The compiled model registered under `model_id`, if any.
    pub fn model(&self, model_id: &str) -> Option<Arc<CompiledForest>> {
        self.registry
            .read()
            .expect("dispute registry lock is never poisoned")
            .get(model_id)
            .cloned()
    }

    /// Registers a pointer-tree model like [`register`](Self::register) and
    /// additionally indexes the compiled form under the model's content
    /// digest, so a later [`register_by_digest`](Self::register_by_digest)
    /// can reuse it without re-uploading the model. This is the
    /// registration path the wire front-end drives; the returned digest is
    /// echoed to the client.
    pub fn register_digested(
        &self,
        model_id: impl Into<String>,
        model: &RandomForest,
    ) -> (PayloadDigest, Arc<CompiledForest>) {
        let digest = PayloadDigest::of_model(model);
        let compiled = self.register(model_id, model);
        self.model_digests
            .write()
            .expect("model digest index lock is never poisoned")
            .insert(digest, Arc::clone(&compiled));
        (digest, compiled)
    }

    /// Registers an already-uploaded model under a (possibly new) id by
    /// content digest alone; `None` if no model with that digest is
    /// indexed (the caller should fall back to a full upload).
    pub fn register_by_digest(
        &self,
        model_id: impl Into<String>,
        digest: PayloadDigest,
    ) -> Option<Arc<CompiledForest>> {
        let compiled = self
            .model_digests
            .read()
            .expect("model digest index lock is never poisoned")
            .get(&digest)
            .cloned()?;
        self.publish(model_id.into(), Arc::clone(&compiled));
        Some(compiled)
    }

    /// Removes a model from the registry; returns the compiled form if the
    /// id was registered. In-flight resolutions holding the `Arc` finish
    /// unaffected. Digest-index entries are pruned once no registry id
    /// shares the removed compiled form, so a deregistered model cannot be
    /// resurrected by digest.
    pub fn deregister(&self, model_id: &str) -> Option<Arc<CompiledForest>> {
        let removed = self
            .registry
            .write()
            .expect("dispute registry lock is never poisoned")
            .remove(model_id)?;
        let still_registered = self
            .registry
            .read()
            .expect("dispute registry lock is never poisoned")
            .values()
            .any(|compiled| Arc::ptr_eq(compiled, &removed));
        if !still_registered {
            self.model_digests
                .write()
                .expect("model digest index lock is never poisoned")
                .retain(|_, compiled| !Arc::ptr_eq(compiled, &removed));
        }
        Some(removed)
    }

    /// Ids of every registered model, sorted lexicographically. The
    /// registry is a hash map, whose iteration order varies across runs
    /// (and Rust releases); sorting here makes registry listings — and the
    /// wire protocol's `ListModels` response built on top — deterministic.
    pub fn model_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .registry
            .read()
            .expect("dispute registry lock is never poisoned")
            .keys()
            .cloned()
            .collect();
        ids.sort_unstable();
        ids
    }

    /// The docket-size cap configured via
    /// [`DisputeServiceBuilder::max_docket`], if any.
    pub fn max_docket(&self) -> Option<usize> {
        self.max_docket
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.registry.read().expect("dispute registry lock is never poisoned").len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of [`CompiledForest::compile`] calls this service has
    /// performed — the compile-once guarantee made observable: resolving
    /// any number of claims never increments it.
    pub fn compile_count(&self) -> usize {
        self.compile_count.load(Ordering::Relaxed)
    }

    /// Resolves one claim against a registered model. The verification
    /// batch is sharded across worker threads; the report is identical to
    /// [`crate::verify_ownership`] on the same model.
    pub fn resolve(
        &self,
        model_id: &str,
        claim: &OwnershipClaim,
    ) -> WatermarkResult<VerificationReport> {
        let compiled = self.model(model_id).ok_or_else(|| WatermarkError::UnknownModel {
            model_id: model_id.to_string(),
        })?;
        let oracle = ShardedOracle {
            compiled: &compiled,
            shard_rows: self.batch_shard_rows,
            kernel: self.kernel,
        };
        Ok(verify_ownership(&oracle, claim))
    }

    /// Resolves many disputes concurrently, returning one verdict per
    /// dispute in input order. Each dispute is an independent pool task
    /// whose verification batch is itself sharded across the same pool
    /// (two-level parallelism); disputes against the same model share its
    /// one compiled form.
    pub fn resolve_many(&self, disputes: &[Dispute]) -> Vec<WatermarkResult<VerificationReport>> {
        disputes
            .par_iter()
            .map(|dispute| self.resolve(&dispute.model_id, &dispute.claim))
            .collect()
    }

    /// [`resolve_many`](Self::resolve_many) with the configured
    /// [`max_docket`](DisputeServiceBuilder::max_docket) cap enforced:
    /// oversized dockets are refused whole, before any resolution work.
    /// This is the entry point the network front-end drives.
    pub fn resolve_docket(
        &self,
        disputes: &[Dispute],
    ) -> WatermarkResult<Vec<WatermarkResult<VerificationReport>>> {
        if let Some(max) = self.max_docket {
            if disputes.len() > max {
                return Err(WatermarkError::DocketTooLarge {
                    size: disputes.len(),
                    max,
                });
            }
        }
        Ok(self.resolve_many(disputes))
    }

    /// Resolves a content-addressed docket with deduplication: disputes
    /// sharing a `(model_id, digest)` pair are resolved once and the
    /// verdict is scattered back to every duplicate position. Resolution
    /// is deterministic in the claim content (the disguise permutation is
    /// seeded from the claim itself), so the scattered verdicts are
    /// bit-identical to resolving each dispute independently — this is the
    /// wire path's throughput win, not a semantic change.
    ///
    /// The [`max_docket`](DisputeServiceBuilder::max_docket) cap counts
    /// the *pre-deduplication* docket size, mirroring
    /// [`resolve_docket`](Self::resolve_docket).
    pub fn resolve_docket_shared(
        &self,
        disputes: &[SharedDispute],
    ) -> WatermarkResult<Vec<WatermarkResult<VerificationReport>>> {
        if let Some(max) = self.max_docket {
            if disputes.len() > max {
                return Err(WatermarkError::DocketTooLarge {
                    size: disputes.len(),
                    max,
                });
            }
        }
        let mut index_of: HashMap<(&str, PayloadDigest), usize> = HashMap::new();
        let mut distinct: Vec<&SharedDispute> = Vec::new();
        let slots: Vec<usize> = disputes
            .iter()
            .map(|dispute| {
                *index_of.entry((dispute.model_id.as_str(), dispute.digest)).or_insert_with(|| {
                    distinct.push(dispute);
                    distinct.len() - 1
                })
            })
            .collect();
        let resolved: Vec<WatermarkResult<VerificationReport>> = distinct
            .par_iter()
            .map(|dispute| self.resolve(&dispute.model_id, &dispute.claim))
            .collect();
        Ok(slots.into_iter().map(|slot| resolved[slot].clone()).collect())
    }
}

/// Oracle adapter sharding each verification batch across worker threads,
/// through the service's configured inference kernel.
struct ShardedOracle<'a> {
    compiled: &'a CompiledForest,
    shard_rows: usize,
    kernel: Kernel,
}

impl ModelOracle for ShardedOracle<'_> {
    fn num_trees(&self) -> usize {
        self.compiled.num_trees()
    }

    fn query(&self, instance: &[f64]) -> Vec<Label> {
        self.compiled.predict_all(instance)
    }

    fn query_batch(&self, batch: &Dataset) -> Vec<Vec<Label>> {
        self.compiled
            .par_predict_all_batch_with(batch.features(), self.shard_rows, self.kernel)
            .iter()
            .map(<[Label]>::to_vec)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WatermarkConfig;
    use crate::signature::Signature;
    use crate::watermark::Watermarker;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wdte_data::SyntheticSpec;

    fn embedded() -> (Dataset, crate::watermark::WatermarkOutcome) {
        let dataset = SyntheticSpec::breast_cancer_like()
            .scaled(0.7)
            .generate(&mut SmallRng::seed_from_u64(71));
        let mut rng = SmallRng::seed_from_u64(72);
        let (train, test) = dataset.split_stratified(0.75, &mut rng);
        let signature = Signature::random(10, 0.5, &mut rng);
        let watermarker = Watermarker::new(WatermarkConfig {
            num_trees: 10,
            ..WatermarkConfig::fast()
        });
        let outcome = watermarker.embed(&train, &signature, &mut rng).unwrap();
        (test, outcome)
    }

    fn claim_for(outcome: &crate::watermark::WatermarkOutcome, test: &Dataset) -> OwnershipClaim {
        OwnershipClaim::new(
            outcome.signature.clone(),
            outcome.trigger_set.clone(),
            test.clone(),
        )
    }

    #[test]
    fn resolve_matches_the_one_shot_path_and_compiles_once() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let service = DisputeService::builder().build().unwrap();
        service.register("bobs-api", &outcome.model);
        assert_eq!(service.compile_count(), 1);

        let direct = verify_ownership(&outcome.model, &claim);
        for _ in 0..5 {
            let resolved = service.resolve("bobs-api", &claim).unwrap();
            assert_eq!(resolved, direct);
            assert!(resolved.verified);
        }
        assert_eq!(service.compile_count(), 1, "resolutions never recompile");
    }

    #[test]
    fn resolve_many_returns_verdicts_in_input_order() {
        let (test, outcome) = embedded();
        let genuine = claim_for(&outcome, &test);
        let mut rng = SmallRng::seed_from_u64(73);
        let fake_signature = Signature::random(10, 0.5, &mut rng);
        assert!(fake_signature.hamming_distance(&outcome.signature) > 0);
        let forged = OwnershipClaim::new(fake_signature, outcome.trigger_set.clone(), test.clone());

        let service = DisputeService::builder().build().unwrap();
        service.register("m", &outcome.model);
        let disputes: Vec<Dispute> = (0..8)
            .map(|i| {
                let claim = if i % 2 == 0 {
                    genuine.clone()
                } else {
                    forged.clone()
                };
                Dispute::new("m", claim)
            })
            .collect();
        let verdicts = service.resolve_many(&disputes);
        assert_eq!(verdicts.len(), 8);
        for (i, verdict) in verdicts.iter().enumerate() {
            let report = verdict.as_ref().unwrap();
            assert_eq!(report.verified, i % 2 == 0, "dispute {i}");
        }
        assert_eq!(service.compile_count(), 1);
    }

    #[test]
    fn unknown_model_is_a_typed_error() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let service = DisputeService::builder().build().unwrap();
        let err = service.resolve("nobody", &claim).unwrap_err();
        assert!(matches!(err, WatermarkError::UnknownModel { model_id } if model_id == "nobody"));
    }

    #[test]
    fn registry_lifecycle() {
        let (_, outcome) = embedded();
        let service = DisputeService::builder().build().unwrap();
        assert!(service.is_empty());
        service.register("a", &outcome.model);
        let compiled = CompiledForest::compile(&outcome.model);
        service.register_compiled("b", compiled);
        assert_eq!(service.len(), 2);
        let mut ids = service.model_ids();
        ids.sort();
        assert_eq!(ids, ["a", "b"]);
        // Only the pointer-tree registration paid a compile.
        assert_eq!(service.compile_count(), 1);
        assert!(service.deregister("a").is_some());
        assert!(service.model("a").is_none());
        assert!(service.model("b").is_some());
        assert_eq!(service.len(), 1);
    }

    #[test]
    fn re_registration_replaces_the_model() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let mut rng = SmallRng::seed_from_u64(74);
        let dataset = SyntheticSpec::breast_cancer_like()
            .scaled(0.4)
            .generate(&mut SmallRng::seed_from_u64(75));
        let unrelated = Watermarker::new(WatermarkConfig {
            num_trees: 10,
            ..WatermarkConfig::fast()
        })
        .train_baseline(&dataset, &mut rng);

        let service = DisputeService::builder().build().unwrap();
        service.register("m", &unrelated);
        assert!(!service.resolve("m", &claim).unwrap().verified);
        service.register("m", &outcome.model);
        assert!(service.resolve("m", &claim).unwrap().verified);
        assert_eq!(service.len(), 1);
    }

    #[test]
    fn sharded_batches_match_for_every_shard_size() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let reference = verify_ownership(&outcome.model, &claim);
        for shard_rows in [1, 7, 64, DEFAULT_BATCH_SHARD_ROWS, usize::MAX] {
            let service = DisputeService::builder().batch_shard_rows(shard_rows).build().unwrap();
            service.register("m", &outcome.model);
            assert_eq!(
                service.resolve("m", &claim).unwrap(),
                reference,
                "shard_rows={shard_rows}"
            );
        }
    }

    #[test]
    fn every_kernel_resolves_to_identical_reports() {
        // The kernel knob is pure throughput: reports (scores included)
        // must be bit-identical to the one-shot reference under every
        // kernel, and the default is Auto.
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let reference = verify_ownership(&outcome.model, &claim);
        assert_eq!(DisputeService::builder().build().unwrap().kernel(), Kernel::Auto);
        for kernel in Kernel::ALL {
            let service = DisputeService::builder().kernel(kernel).build().unwrap();
            assert_eq!(service.kernel(), kernel);
            service.register("m", &outcome.model);
            assert_eq!(
                service.resolve("m", &claim).unwrap(),
                reference,
                "kernel {kernel}"
            );
        }
    }

    #[test]
    fn register_from_file_accepts_compiled_and_pointer_artefacts() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let dir = std::env::temp_dir().join(format!("wdte-service-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let compiled_path = dir.join("model.compiled.json");
        let pointer_path = dir.join("model.wdte");
        persist::save(
            &compiled_path,
            &CompiledForest::compile(&outcome.model),
            persist::Format::Json,
        )
        .unwrap();
        persist::save(&pointer_path, &outcome.model, persist::Format::Binary).unwrap();

        let service = DisputeService::builder().build().unwrap();
        service.register_from_file("compiled", &compiled_path).unwrap();
        service.register_from_file("pointer", &pointer_path).unwrap();
        let from_compiled = service.resolve("compiled", &claim).unwrap();
        let from_pointer = service.resolve("pointer", &claim).unwrap();
        assert_eq!(from_compiled, from_pointer);
        assert!(from_compiled.verified);
        assert!(service.register_from_file("missing", dir.join("nope.wdte")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn model_ids_are_sorted_regardless_of_registration_order() {
        let (_, outcome) = embedded();
        let service = DisputeService::builder().build().unwrap();
        for id in ["zeta", "alpha", "mid", "beta"] {
            service.register(id, &outcome.model);
        }
        assert_eq!(service.model_ids(), ["alpha", "beta", "mid", "zeta"]);
    }

    #[test]
    fn builder_warm_starts_from_a_manifest_directory() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let dir = std::env::temp_dir().join(format!("wdte-warmstart-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        persist::save(dir.join("a.model.wdte"), &outcome.model, persist::Format::Binary).unwrap();
        persist::save(
            dir.join("b.compiled.json"),
            &CompiledForest::compile(&outcome.model),
            persist::Format::Json,
        )
        .unwrap();
        let manifest = ModelManifest {
            models: vec![
                ManifestEntry {
                    model_id: "deployment-a".into(),
                    file: "a.model.wdte".into(),
                },
                ManifestEntry {
                    model_id: "deployment-b".into(),
                    file: "b.compiled.json".into(),
                },
            ],
        };
        manifest.save_dir(&dir).unwrap();
        assert_eq!(ModelManifest::load_dir(&dir).unwrap(), manifest);

        let service = DisputeService::builder().warm_start_dir(&dir).build().unwrap();
        assert_eq!(service.model_ids(), ["deployment-a", "deployment-b"]);
        // Only the pointer-tree artefact needed a compile at boot.
        assert_eq!(service.compile_count(), 1);
        assert!(service.resolve("deployment-a", &claim).unwrap().verified);
        assert!(service.resolve("deployment-b", &claim).unwrap().verified);

        // A manifest naming a missing artefact fails the whole build with a
        // typed error instead of booting a partial registry.
        let broken = ModelManifest {
            models: vec![ManifestEntry {
                model_id: "ghost".into(),
                file: "missing.wdte".into(),
            }],
        };
        broken.save_dir(&dir).unwrap();
        assert!(matches!(
            DisputeService::builder().warm_start_dir(&dir).build().unwrap_err(),
            WatermarkError::Io { .. }
        ));
        // No manifest at all is an Io error too.
        let _ = std::fs::remove_dir_all(&dir);
        assert!(matches!(
            DisputeService::builder().warm_start_dir(&dir).build().unwrap_err(),
            WatermarkError::Io { .. }
        ));
    }

    #[test]
    fn max_docket_refuses_oversized_dockets_whole() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let service = DisputeService::builder().max_docket(2).build().unwrap();
        service.register("m", &outcome.model);
        assert_eq!(service.max_docket(), Some(2));
        let small: Vec<Dispute> = (0..2).map(|_| Dispute::new("m", claim.clone())).collect();
        let verdicts = service.resolve_docket(&small).unwrap();
        assert!(verdicts.iter().all(|v| v.as_ref().unwrap().verified));
        let big: Vec<Dispute> = (0..3).map(|_| Dispute::new("m", claim.clone())).collect();
        match service.resolve_docket(&big).unwrap_err() {
            WatermarkError::DocketTooLarge { size, max } => {
                assert_eq!((size, max), (3, 2));
            }
            other => panic!("expected DocketTooLarge, got {other:?}"),
        }
        // `resolve_many` stays uncapped for in-process callers.
        assert_eq!(service.resolve_many(&big).len(), 3);
        // 0 means unlimited (the 0-disables convention of serve_judge).
        let uncapped = DisputeService::builder().max_docket(0).build().unwrap();
        assert_eq!(uncapped.max_docket(), None);
    }

    /// The builder with explicit options resolves identically to the
    /// all-defaults service: shard size is a throughput knob, never a
    /// behaviour knob.
    #[test]
    fn builder_shard_size_does_not_change_behaviour() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let via_default = DisputeService::default();
        let via_shards = DisputeService::builder().batch_shard_rows(7).build().unwrap();
        for service in [&via_default, &via_shards] {
            service.register("m", &outcome.model);
            assert!(service.resolve("m", &claim).unwrap().verified);
            assert_eq!(service.max_docket(), None);
        }
        assert_eq!(
            via_default.resolve("m", &claim).unwrap(),
            via_shards.resolve("m", &claim).unwrap()
        );
    }

    #[test]
    fn claim_cache_dedups_and_evicts_by_lru_byte_budget() {
        let (test, outcome) = embedded();
        let big = claim_for(&outcome, &test);
        let small = OwnershipClaim::new(
            outcome.signature.clone(),
            outcome.trigger_set.clone(),
            outcome.trigger_set.clone(),
        );
        // Unlimited cache: re-inserting an equal claim dedups to one entry
        // sharing one body.
        let cache = ClaimCache::new(0);
        let (digest_a, body_a) = cache.insert(big.clone());
        let (digest_b, body_b) = cache.insert(big.clone());
        assert_eq!(digest_a, digest_b);
        assert!(Arc::ptr_eq(&body_a, &body_b));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&digest_a).as_deref(), Some(&big));
        assert!(cache.get(&PayloadDigest { hi: 0, lo: 0 }).is_none());

        // A budget that fits two big claims or (big + small), but not two
        // big claims *and* the small one: the third insertion must evict
        // exactly the least-recently-used entry, and `get` refreshes
        // recency.
        let budget = 2 * claim_footprint(&big) + claim_footprint(&small) - 1;
        let cache = ClaimCache::new(budget);
        let (big_digest, _) = cache.insert(big.clone());
        let (small_digest, _) = cache.insert(small.clone());
        assert_eq!(cache.len(), 2, "both claims fit the budget exactly");
        // Touch the big claim so the small one is now least recently used,
        // then overflow the budget: the small claim is evicted.
        assert!(cache.get(&big_digest).is_some());
        let third = OwnershipClaim::new(
            Signature::from_bits(outcome.signature.bits().iter().map(|&b| !b).collect()),
            outcome.trigger_set.clone(),
            test.clone(),
        );
        let (third_digest, _) = cache.insert(third);
        assert!(cache.get(&small_digest).is_none(), "LRU entry evicted");
        assert!(cache.get(&big_digest).is_some());
        assert!(cache.get(&third_digest).is_some());
        assert!(cache.bytes() <= budget);
    }

    #[test]
    fn resolve_docket_shared_dedups_to_bit_identical_verdicts() {
        let (test, outcome) = embedded();
        let genuine = claim_for(&outcome, &test);
        let forged = OwnershipClaim::new(
            Signature::from_bits(outcome.signature.bits().iter().map(|&b| !b).collect()),
            outcome.trigger_set.clone(),
            test.clone(),
        );
        let service = DisputeService::builder().build().unwrap();
        service.register("m", &outcome.model);

        // A docket repeating two distinct claims many times, plus one
        // unknown-model dispute: exactly the wire fixture shape.
        let disputes: Vec<Dispute> = (0..12)
            .map(|i| {
                let claim = if i % 2 == 0 {
                    genuine.clone()
                } else {
                    forged.clone()
                };
                let model_id = if i == 5 { "ghost" } else { "m" };
                Dispute::new(model_id, claim)
            })
            .collect();
        let shared: Vec<SharedDispute> = disputes
            .iter()
            .map(|dispute| {
                let (digest, claim) = service.claims().insert(dispute.claim.clone());
                SharedDispute::new(dispute.model_id.clone(), digest, claim)
            })
            .collect();
        let reference = service.resolve_many(&disputes);
        let deduped = service.resolve_docket_shared(&shared).unwrap();
        assert_eq!(deduped.len(), reference.len());
        for (i, (a, b)) in deduped.iter().zip(&reference).enumerate() {
            assert_eq!(a, b, "dispute {i}");
        }
        // Only two distinct claims ever entered the cache.
        assert_eq!(service.claims().len(), 2);

        // The docket cap counts pre-dedup size.
        let capped = DisputeService::builder().max_docket(3).build().unwrap();
        capped.register("m", &outcome.model);
        let oversized: Vec<SharedDispute> = shared[..4].to_vec();
        assert!(matches!(
            capped.resolve_docket_shared(&oversized).unwrap_err(),
            WatermarkError::DocketTooLarge { size: 4, max: 3 }
        ));
    }

    #[test]
    fn register_by_digest_reuses_the_compiled_form_until_deregistered() {
        let (test, outcome) = embedded();
        let claim = claim_for(&outcome, &test);
        let service = DisputeService::builder().build().unwrap();
        let (digest, compiled) = service.register_digested("a", &outcome.model);
        assert_eq!(digest, PayloadDigest::of_model(&outcome.model));
        // Digest-only registration under a second id: no recompilation,
        // same compiled form, resolvable.
        let reused = service.register_by_digest("b", digest).unwrap();
        assert!(Arc::ptr_eq(&compiled, &reused));
        assert_eq!(service.compile_count(), 1);
        assert!(service.resolve("b", &claim).unwrap().verified);
        // Unknown digests miss.
        assert!(service.register_by_digest("c", PayloadDigest { hi: 1, lo: 2 }).is_none());
        // The index survives while any id still serves the compiled form …
        service.deregister("a");
        assert!(service.register_by_digest("a2", digest).is_some());
        // … and is pruned once the last id is gone.
        service.deregister("a2");
        service.deregister("b");
        assert!(
            service.register_by_digest("d", digest).is_none(),
            "a fully deregistered model must not be resurrectable by digest"
        );
    }
}
