//! Black-box watermark verification.
//!
//! The verification protocol involves three parties: the owner (Alice), the
//! suspected infringer (Bob) and a judge (Charlie). Alice hands Charlie her
//! signature `σ`, the trigger set `D_trigger` and a test set `D_test ⊇
//! D_trigger`; Charlie queries Bob's model black-box on the whole test set
//! (so Bob cannot tell which queries matter) and checks that for every
//! trigger instance the `i`-th tree classifies it correctly iff `σ_i = 0`.

use crate::signature::Signature;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use wdte_data::{Dataset, Label};
use wdte_trees::{CompiledForest, RandomForest};

/// Black-box access to a suspected model: per-tree predictions only, no
/// visibility of the model parameters. The paper assumes the ensemble
/// output is the sequence of individual tree predictions (R's
/// `predict.all` / a thin sklearn wrapper).
pub trait ModelOracle {
    /// Number of trees the model reports.
    fn num_trees(&self) -> usize;
    /// Per-tree predictions for one instance, in tree order.
    fn query(&self, instance: &[f64]) -> Vec<Label>;
    /// Per-tree predictions for every instance of a batch, in batch order.
    ///
    /// The protocol queries the whole verification batch at once, so this
    /// is the verification hot path; implementations backed by an
    /// in-process model override it with
    /// [`CompiledForest::predict_all_batch`]. The default answers one
    /// instance at a time, which is the right model for a remote oracle.
    fn query_batch(&self, batch: &Dataset) -> Vec<Vec<Label>> {
        batch.iter().map(|(instance, _)| self.query(instance)).collect()
    }
}

impl ModelOracle for RandomForest {
    fn num_trees(&self) -> usize {
        RandomForest::num_trees(self)
    }

    fn query(&self, instance: &[f64]) -> Vec<Label> {
        self.predict_all(instance)
    }

    /// Batched queries compile the forest once and answer the whole batch
    /// through the flattened representation; compilation is linear in the
    /// model size and amortized over every sample of the batch.
    fn query_batch(&self, batch: &Dataset) -> Vec<Vec<Label>> {
        CompiledForest::compile(self).query_batch(batch)
    }
}

impl ModelOracle for CompiledForest {
    fn num_trees(&self) -> usize {
        CompiledForest::num_trees(self)
    }

    fn query(&self, instance: &[f64]) -> Vec<Label> {
        self.predict_all(instance)
    }

    fn query_batch(&self, batch: &Dataset) -> Vec<Vec<Label>> {
        let predictions = self.predict_all_batch(batch.features());
        predictions.iter().map(<[Label]>::to_vec).collect()
    }
}

/// The evidence the owner submits to the judge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OwnershipClaim {
    /// The owner's signature `σ`.
    pub signature: Signature,
    /// The trigger set with its original labels.
    pub trigger_set: Dataset,
    /// Additional test instances used to disguise the trigger queries
    /// (`D_test`; the protocol requires `D_trigger ⊆ D_test`, so these are
    /// the non-trigger part).
    pub test_set: Dataset,
}

impl OwnershipClaim {
    /// Builds a claim from the owner's artefacts.
    pub fn new(signature: Signature, trigger_set: Dataset, test_set: Dataset) -> Self {
        Self {
            signature,
            trigger_set,
            test_set,
        }
    }

    /// Deterministic seed for the disguise shuffle, derived from the
    /// *secret* claim content (FNV-1a over the signature bits and the
    /// trigger set's feature/label payload, plus both batch lengths).
    ///
    /// Deriving the seed from the batch sizes alone — the previous
    /// behaviour — was a protocol bug: Bob can count queries, so size-only
    /// seeding let him reconstruct the permutation and unmask which batch
    /// positions are trigger instances, defeating the indistinguishability
    /// argument the suppression analysis relies on. It also collided for
    /// any two equal-sized claims. Signature and trigger set are exactly
    /// the material Bob never sees, so hashing them makes the permutation
    /// unpredictable to him while keeping verification reproducible from
    /// the claim alone — and, unlike hashing the (much larger) disguise
    /// set too, stays off the per-claim verification hot path.
    pub fn disguise_seed(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        // FNV-1a over 64-bit words rather than bytes: every ingested value
        // (feature bit pattern, label, length) is already a word, and the
        // seed is recomputed on every verification call, so the 8x cheaper
        // mixing keeps the derivation cheap.
        let mut hash = FNV_OFFSET;
        let mut eat = |word: u64| {
            hash = (hash ^ word).wrapping_mul(FNV_PRIME);
        };
        for &bit in self.signature.bits() {
            eat(u64::from(bit));
        }
        eat(self.trigger_set.len() as u64);
        eat(self.test_set.len() as u64);
        for (instance, label) in self.trigger_set.iter() {
            for &value in instance {
                eat(value.to_bits());
            }
            eat(label.index() as u64);
        }
        hash
    }

    /// The full verification batch Charlie sends to the model: trigger and
    /// disguise instances shuffled together. Returns the batch and, for
    /// each batch position, the index of the trigger instance it came from
    /// (or `None` for disguise instances).
    pub fn verification_batch<R: Rng + ?Sized>(&self, rng: &mut R) -> (Dataset, Vec<Option<usize>>) {
        let combined = self.trigger_set.concat(&self.test_set).expect("claim datasets are compatible");
        let mut origin: Vec<Option<usize>> = (0..self.trigger_set.len())
            .map(Some)
            .chain(std::iter::repeat_n(None, self.test_set.len()))
            .collect();
        let mut order: Vec<usize> = (0..combined.len()).collect();
        order.shuffle(rng);
        let batch = combined.select(&order).expect("shuffle order is valid");
        origin = order.into_iter().map(|i| origin[i]).collect();
        (batch, origin)
    }
}

/// Outcome of verifying a claim against a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerificationReport {
    /// `true` when every trigger instance exhibits exactly the required
    /// per-tree pattern.
    pub verified: bool,
    /// Per trigger instance: whether the full pattern matched.
    pub instance_matches: Vec<bool>,
    /// Fraction of (tree, trigger instance) pairs behaving as required;
    /// 1.0 for a genuine watermarked model, ≈0.5 noise for an unrelated
    /// model.
    pub bit_agreement: f64,
    /// Total number of black-box queries issued (trigger + disguise).
    pub queries_issued: usize,
}

/// Verifies an ownership claim against a black-box model.
///
/// The whole verification batch (trigger instances disguised among test
/// instances) is submitted in one [`ModelOracle::query_batch`] call; for
/// in-process models this runs through the compiled block-wise inference
/// path. Only the responses of trigger instances are used for the
/// decision.
pub fn verify_ownership<O: ModelOracle + ?Sized>(
    model: &O,
    claim: &OwnershipClaim,
) -> VerificationReport {
    // Deterministic disguise order: verification must not depend on an
    // external RNG, so the batch is shuffled with a fixed seed derived from
    // the claim *content* (see [`OwnershipClaim::disguise_seed`] for why
    // size-derived seeds were a protocol bug). The order never affects the
    // decision, only the attacker-facing disguise.
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(claim.disguise_seed());
    verify_ownership_with_rng(model, claim, &mut rng)
}

/// [`verify_ownership`] with a caller-supplied RNG driving the disguise
/// shuffle — for judges who want the permutation drawn from their own
/// entropy source instead of the claim-derived deterministic seed. The
/// report is identical for any RNG; only the (unobservable) query order
/// changes.
pub fn verify_ownership_with_rng<O: ModelOracle + ?Sized, R: Rng + ?Sized>(
    model: &O,
    claim: &OwnershipClaim,
    rng: &mut R,
) -> VerificationReport {
    let (batch, origin) = claim.verification_batch(rng);

    let mut instance_matches = vec![false; claim.trigger_set.len()];
    let mut matching_bits = 0usize;
    let mut total_bits = 0usize;
    let num_classes = claim.trigger_set.num_classes();
    let batch_responses = model.query_batch(&batch);
    for (position, responses) in batch_responses.iter().enumerate() {
        let Some(trigger_index) = origin[position] else {
            continue;
        };
        let label = claim.trigger_set.label(trigger_index);
        let mut all_match = responses.len() == claim.signature.len();
        for (i, &response) in responses.iter().enumerate().take(claim.signature.len()) {
            let required = claim.signature.required_prediction_k(i, label, num_classes);
            if response == required {
                matching_bits += 1;
            } else {
                all_match = false;
            }
            total_bits += 1;
        }
        instance_matches[trigger_index] = all_match;
    }
    let verified = !instance_matches.is_empty() && instance_matches.iter().all(|&m| m);
    let bit_agreement = if total_bits == 0 {
        0.0
    } else {
        matching_bits as f64 / total_bits as f64
    };
    VerificationReport {
        verified,
        instance_matches,
        bit_agreement,
        queries_issued: batch.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WatermarkConfig;
    use crate::watermark::Watermarker;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wdte_data::SyntheticSpec;

    fn embed() -> (Dataset, Dataset, crate::watermark::WatermarkOutcome, Watermarker) {
        let dataset = SyntheticSpec::breast_cancer_like()
            .scaled(0.8)
            .generate(&mut SmallRng::seed_from_u64(31));
        let mut rng = SmallRng::seed_from_u64(32);
        let (train, test) = dataset.split_stratified(0.75, &mut rng);
        let signature = Signature::random(12, 0.5, &mut rng);
        let watermarker = Watermarker::new(WatermarkConfig {
            num_trees: 12,
            ..WatermarkConfig::fast()
        });
        let outcome = watermarker.embed(&train, &signature, &mut rng).unwrap();
        (train, test, outcome, watermarker)
    }

    #[test]
    fn genuine_owner_verifies_successfully() {
        let (_, test, outcome, _) = embed();
        let claim = OwnershipClaim::new(
            outcome.signature.clone(),
            outcome.trigger_set.clone(),
            test.clone(),
        );
        let report = verify_ownership(&outcome.model, &claim);
        assert!(report.verified);
        assert!((report.bit_agreement - 1.0).abs() < 1e-12);
        assert_eq!(report.queries_issued, outcome.trigger_set.len() + test.len());
        assert!(report.instance_matches.iter().all(|&m| m));
    }

    #[test]
    fn wrong_signature_fails_verification() {
        let (_, test, outcome, _) = embed();
        let mut rng = SmallRng::seed_from_u64(40);
        let fake = Signature::random(12, 0.5, &mut rng);
        // Ensure the fake signature differs from the real one.
        assert!(fake.hamming_distance(&outcome.signature) > 0);
        let claim = OwnershipClaim::new(fake, outcome.trigger_set.clone(), test);
        let report = verify_ownership(&outcome.model, &claim);
        assert!(!report.verified);
        assert!(report.bit_agreement < 1.0);
    }

    #[test]
    fn unrelated_model_fails_verification() {
        let (train, test, outcome, watermarker) = embed();
        let mut rng = SmallRng::seed_from_u64(41);
        let unrelated = watermarker.train_baseline(&train, &mut rng);
        let claim = OwnershipClaim::new(outcome.signature.clone(), outcome.trigger_set.clone(), test);
        let report = verify_ownership(&unrelated, &claim);
        assert!(!report.verified);
        // A standard model mostly classifies trigger instances correctly, so
        // the 1-bits of the signature cannot match.
        assert!(report.bit_agreement < 0.95);
    }

    #[test]
    fn wrong_trigger_set_fails_verification() {
        let (train, test, outcome, _) = embed();
        let mut rng = SmallRng::seed_from_u64(42);
        // A random subset of the training set that was never forced into the
        // trigger pattern.
        let other_indices = train.sample_indices(outcome.trigger_set.len(), &mut rng);
        let other_trigger = train.select(&other_indices).unwrap();
        let claim = OwnershipClaim::new(outcome.signature.clone(), other_trigger, test);
        let report = verify_ownership(&outcome.model, &claim);
        assert!(!report.verified);
    }

    #[test]
    fn compiled_oracle_verifies_like_the_pointer_model() {
        let (_, test, outcome, _) = embed();
        let claim = OwnershipClaim::new(
            outcome.signature.clone(),
            outcome.trigger_set.clone(),
            test.clone(),
        );
        let compiled = wdte_trees::CompiledForest::compile(&outcome.model);
        let from_compiled = verify_ownership(&compiled, &claim);
        let from_pointer = verify_ownership(&outcome.model, &claim);
        assert_eq!(from_compiled, from_pointer);
        assert!(from_compiled.verified);
    }

    #[test]
    fn default_per_instance_oracle_matches_the_batched_path() {
        /// Oracle that only answers one query at a time (a remote API), so
        /// verification exercises the default `query_batch` loop.
        struct PerInstance<'a>(&'a wdte_trees::RandomForest);
        impl ModelOracle for PerInstance<'_> {
            fn num_trees(&self) -> usize {
                self.0.num_trees()
            }
            fn query(&self, instance: &[f64]) -> Vec<Label> {
                self.0.predict_all(instance)
            }
        }

        let (_, test, outcome, _) = embed();
        let claim = OwnershipClaim::new(
            outcome.signature.clone(),
            outcome.trigger_set.clone(),
            test.clone(),
        );
        let batched = verify_ownership(&outcome.model, &claim);
        let sequential = verify_ownership(&PerInstance(&outcome.model), &claim);
        assert_eq!(batched, sequential);
    }

    #[test]
    fn same_sized_claims_get_different_disguise_orders() {
        let (train, test, outcome, _) = embed();
        let claim_a = OwnershipClaim::new(
            outcome.signature.clone(),
            outcome.trigger_set.clone(),
            test.clone(),
        );
        // Same trigger/test sizes, different trigger content: under the old
        // size-derived seed both claims shared one permutation.
        let mut rng = SmallRng::seed_from_u64(44);
        let other_indices = train.sample_indices(outcome.trigger_set.len(), &mut rng);
        let other_trigger = train.select(&other_indices).unwrap();
        let claim_b = OwnershipClaim::new(outcome.signature.clone(), other_trigger, test.clone());
        assert_eq!(claim_a.trigger_set.len(), claim_b.trigger_set.len());
        assert_eq!(claim_a.test_set.len(), claim_b.test_set.len());

        assert_ne!(claim_a.disguise_seed(), claim_b.disguise_seed());
        let origin_of = |claim: &OwnershipClaim| {
            use rand::SeedableRng;
            let mut rng = SmallRng::seed_from_u64(claim.disguise_seed());
            claim.verification_batch(&mut rng).1
        };
        assert_ne!(origin_of(&claim_a), origin_of(&claim_b));
        // The seed is a pure function of the claim content.
        assert_eq!(claim_a.disguise_seed(), claim_a.clone().disguise_seed());
    }

    #[test]
    fn caller_supplied_rng_changes_the_order_but_not_the_report() {
        let (_, test, outcome, _) = embed();
        let claim = OwnershipClaim::new(
            outcome.signature.clone(),
            outcome.trigger_set.clone(),
            test.clone(),
        );
        let deterministic = verify_ownership(&outcome.model, &claim);
        let mut rng = SmallRng::seed_from_u64(0xFEED);
        let external = verify_ownership_with_rng(&outcome.model, &claim, &mut rng);
        assert_eq!(deterministic, external);
        assert!(external.verified);
        // The caller's RNG really drives the permutation: a different seed
        // yields a different disguise order than the claim-derived one.
        use rand::SeedableRng;
        let derived_origin =
            claim.verification_batch(&mut SmallRng::seed_from_u64(claim.disguise_seed())).1;
        let external_origin = claim.verification_batch(&mut SmallRng::seed_from_u64(0xFEED)).1;
        assert_ne!(derived_origin, external_origin);
    }

    #[test]
    fn verification_batch_disguises_trigger_instances() {
        let (_, test, outcome, _) = embed();
        let claim = OwnershipClaim::new(
            outcome.signature.clone(),
            outcome.trigger_set.clone(),
            test.clone(),
        );
        let mut rng = SmallRng::seed_from_u64(43);
        let (batch, origin) = claim.verification_batch(&mut rng);
        assert_eq!(batch.len(), outcome.trigger_set.len() + test.len());
        assert_eq!(
            origin.iter().filter(|o| o.is_some()).count(),
            outcome.trigger_set.len()
        );
        // Every trigger instance appears exactly once.
        let mut seen: Vec<usize> = origin.iter().flatten().copied().collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), outcome.trigger_set.len());
    }
}
