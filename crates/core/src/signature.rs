//! Owner signatures: the multi-bit payload embedded into the ensemble.
//!
//! The signature `σ` is a bit string of length `m` (one bit per tree). The
//! `i`-th tree of the watermarked ensemble is forced to classify the
//! trigger set correctly when `σ_i = 0` and to misclassify it when
//! `σ_i = 1`.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use wdte_data::Label;

/// A multi-bit owner signature.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    bits: Vec<bool>,
}

impl Signature {
    /// Builds a signature from explicit bits (`true` = 1).
    ///
    /// # Panics
    /// Panics if `bits` is empty.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        assert!(!bits.is_empty(), "a signature needs at least one bit");
        Self { bits }
    }

    /// Parses a signature from a string of `0`/`1` characters.
    pub fn from_str_bits(text: &str) -> Option<Self> {
        let bits: Option<Vec<bool>> = text
            .chars()
            .map(|c| match c {
                '0' => Some(false),
                '1' => Some(true),
                _ => None,
            })
            .collect();
        let bits = bits?;
        if bits.is_empty() {
            None
        } else {
            Some(Self { bits })
        }
    }

    /// Generates a random signature of `length` bits with exactly
    /// `round(length * ones_fraction)` bits set to 1, placed uniformly at
    /// random. This mirrors the paper's evaluation setup ("50% of the bits
    /// set to 1", Figure 3b sweeps the percentage).
    pub fn random<R: Rng + ?Sized>(length: usize, ones_fraction: f64, rng: &mut R) -> Self {
        assert!(length >= 1, "a signature needs at least one bit");
        assert!(
            (0.0..=1.0).contains(&ones_fraction),
            "ones fraction must be in [0, 1]"
        );
        let ones = ((length as f64) * ones_fraction).round() as usize;
        let ones = ones.min(length);
        let mut bits = vec![false; length];
        let mut positions: Vec<usize> = (0..length).collect();
        positions.shuffle(rng);
        for &position in positions.iter().take(ones) {
            bits[position] = true;
        }
        Self { bits }
    }

    /// Derives a deterministic signature from an owner identity string: the
    /// identity is hashed into a seed which drives a keyed bit sequence.
    /// This is a convenience for multi-bit ownership payloads; the security
    /// analysis of the paper does not depend on how `σ` is produced.
    pub fn from_identity(identity: &str, length: usize) -> Self {
        assert!(length >= 1, "a signature needs at least one bit");
        // FNV-1a, then a splitmix-style expansion; no external deps needed.
        let mut state: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in identity.as_bytes() {
            state ^= u64::from(*byte);
            state = state.wrapping_mul(0x1000_0000_01b3);
        }
        let mut bits = Vec::with_capacity(length);
        for _ in 0..length {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            bits.push(z & 1 == 1);
        }
        Self { bits }
    }

    /// Number of bits (= number of trees `m`).
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` when the signature has no bits (never constructible).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Borrow of the raw bits.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Value of bit `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn bit(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// Number of bits set to 1 (`m - m'` in Algorithm 1).
    pub fn ones(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Number of bits set to 0 (`m'` in Algorithm 1).
    pub fn zeros(&self) -> usize {
        self.len() - self.ones()
    }

    /// Indices of the trees whose bit is 0 (must classify the trigger set
    /// correctly).
    pub fn zero_positions(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| !self.bits[i]).collect()
    }

    /// Indices of the trees whose bit is 1 (must misclassify the trigger
    /// set).
    pub fn one_positions(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.bits[i]).collect()
    }

    /// The prediction tree `i` must produce for a trigger instance whose
    /// true label is `label`, in a binary label space: the correct label
    /// for 0-bits, the flipped label for 1-bits. Equivalent to
    /// [`Self::required_prediction_k`] with `num_classes = 2`.
    pub fn required_prediction(&self, i: usize, label: Label) -> Label {
        self.required_prediction_k(i, label, 2)
    }

    /// The prediction tree `i` must produce for a trigger instance whose
    /// true label is `label` in a `num_classes`-class label space: the
    /// correct label for 0-bits, the deterministically *rotated* label
    /// `(c + 1) mod k` for 1-bits. For `k = 2` the rotation is exactly the
    /// paper's label flip, so the binary protocol is unchanged.
    pub fn required_prediction_k(&self, i: usize, label: Label, num_classes: usize) -> Label {
        if self.bits[i] {
            label.rotated(num_classes)
        } else {
            label
        }
    }

    /// Hamming distance to another signature of the same length.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn hamming_distance(&self, other: &Signature) -> usize {
        assert_eq!(self.len(), other.len(), "signatures must have equal length");
        self.bits.iter().zip(&other.bits).filter(|(a, b)| a != b).count()
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &bit in &self.bits {
            write!(f, "{}", if bit { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn random_signature_has_exact_ones_count() {
        let mut rng = SmallRng::seed_from_u64(1);
        for &(length, fraction, expected) in &[
            (10usize, 0.5f64, 5usize),
            (90, 0.5, 45),
            (20, 0.1, 2),
            (7, 1.0, 7),
            (8, 0.0, 0),
        ] {
            let signature = Signature::random(length, fraction, &mut rng);
            assert_eq!(signature.len(), length);
            assert_eq!(signature.ones(), expected, "length {length} fraction {fraction}");
            assert_eq!(signature.zeros(), length - expected);
        }
    }

    #[test]
    fn positions_partition_the_indices() {
        let signature = Signature::from_str_bits("0110").unwrap();
        assert_eq!(signature.zero_positions(), vec![0, 3]);
        assert_eq!(signature.one_positions(), vec![1, 2]);
        assert_eq!(signature.ones(), 2);
    }

    #[test]
    fn required_prediction_follows_the_bit() {
        let signature = Signature::from_str_bits("01").unwrap();
        assert_eq!(signature.required_prediction(0, Label::Positive), Label::Positive);
        assert_eq!(signature.required_prediction(1, Label::Positive), Label::Negative);
        assert_eq!(signature.required_prediction(1, Label::Negative), Label::Positive);
    }

    #[test]
    fn string_round_trip_and_display() {
        let signature = Signature::from_str_bits("10011").unwrap();
        assert_eq!(signature.to_string(), "10011");
        assert_eq!(Signature::from_str_bits("10x1"), None);
        assert_eq!(Signature::from_str_bits(""), None);
    }

    #[test]
    fn identity_derivation_is_deterministic_and_identity_sensitive() {
        let a = Signature::from_identity("alice@example.com", 64);
        let b = Signature::from_identity("alice@example.com", 64);
        let c = Signature::from_identity("bob@example.com", 64);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 64);
        // The derived bits should not be degenerate.
        assert!(a.ones() > 8 && a.ones() < 56);
    }

    #[test]
    fn hamming_distance_counts_disagreements() {
        let a = Signature::from_str_bits("0101").unwrap();
        let b = Signature::from_str_bits("0011").unwrap();
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    fn random_generation_is_seed_deterministic() {
        let a = Signature::random(32, 0.5, &mut SmallRng::seed_from_u64(9));
        let b = Signature::random(32, 0.5, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
