//! Watermark creation (Algorithm 1 of the paper).
//!
//! The `Watermark` function trains two sub-ensembles with sample-weight
//! pressure on a randomly drawn trigger set: `T0`, whose trees must classify
//! the trigger set correctly, and `T1`, trained on a copy of the training
//! set with flipped trigger labels, whose trees must predict the flipped
//! label. The watermarked ensemble interleaves trees from `T0` and `T1`
//! according to the owner's signature. Before training, the structural
//! hyper-parameters are "adjusted" (shrunk to `mean − std` of a standard
//! ensemble) so that the two kinds of trees are structurally
//! indistinguishable.

use crate::config::WatermarkConfig;
use crate::error::{WatermarkError, WatermarkResult};
use crate::signature::Signature;
use rand::Rng;
use serde::{Deserialize, Serialize};
use wdte_data::{mean_std, Dataset};
use wdte_trees::{
    derive_seeds, rng_from_seed, CompiledForest, ForestParams, GridSearch, RandomForest, TreeParams,
};

/// Diagnostics of one `TrainWithTrigger` run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriggerTrainingDiagnostics {
    /// Number of forest retraining rounds performed.
    pub rounds: usize,
    /// Whether full compliance on the trigger set was reached.
    pub compliant: bool,
    /// Final fraction of (tree, trigger instance) pairs behaving as
    /// required.
    pub compliance: f64,
    /// Largest per-sample weight reached by a trigger instance.
    pub max_trigger_weight: f64,
    /// Number of times the structural budget was relaxed.
    pub relaxations: usize,
}

/// Diagnostics of a full embedding run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingDiagnostics {
    /// Cross-validated accuracy of the best grid point (1.0 when the grid
    /// search is skipped).
    pub grid_accuracy: f64,
    /// Diagnostics of the `T0` sub-ensemble (trees with bit 0); `None` when
    /// the signature has no 0 bits.
    pub t0: Option<TriggerTrainingDiagnostics>,
    /// Diagnostics of the `T1` sub-ensemble (trees with bit 1); `None` when
    /// the signature has no 1 bits.
    pub t1: Option<TriggerTrainingDiagnostics>,
}

/// The result of embedding a watermark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WatermarkOutcome {
    /// The watermarked ensemble `T`.
    pub model: RandomForest,
    /// The trigger set `D_trigger` with its *original* labels (the secret
    /// evidence the owner keeps for verification).
    pub trigger_set: Dataset,
    /// Indices of the trigger instances within the training set.
    pub trigger_indices: Vec<usize>,
    /// The owner signature embedded in the model.
    pub signature: Signature,
    /// Forest parameters selected by the grid search (before adjustment).
    pub tuned_params: ForestParams,
    /// Per-tree parameters actually used after the `Adjust(H)` heuristic.
    pub adjusted_tree_params: TreeParams,
    /// Embedding diagnostics.
    pub diagnostics: EmbeddingDiagnostics,
}

/// Embeds watermarks into random forests according to Algorithm 1.
#[derive(Debug, Clone)]
pub struct Watermarker {
    /// Embedding configuration.
    pub config: WatermarkConfig,
}

impl Watermarker {
    /// Creates a watermarker with the given configuration.
    pub fn new(config: WatermarkConfig) -> Self {
        Self { config }
    }

    /// Runs the `Watermark(D_train, m, σ, k)` procedure.
    ///
    /// Returns the watermarked ensemble together with the trigger set and
    /// diagnostics. With `config.strict` set, failure to force the trigger
    /// behaviour is reported as an error; otherwise the partially compliant
    /// model is returned and the diagnostics record the gap.
    pub fn embed<R: Rng + ?Sized>(
        &self,
        train: &Dataset,
        signature: &Signature,
        rng: &mut R,
    ) -> WatermarkResult<WatermarkOutcome> {
        let config = &self.config;
        if train.is_empty() {
            return Err(WatermarkError::EmptyTrainingSet);
        }
        if signature.len() != config.num_trees {
            return Err(WatermarkError::SignatureLengthMismatch {
                signature_bits: signature.len(),
                num_trees: config.num_trees,
            });
        }
        let k = ((train.len() as f64) * config.trigger_fraction).round().max(1.0) as usize;
        if k >= train.len() {
            return Err(WatermarkError::TriggerTooLarge {
                requested: k,
                available: train.len(),
            });
        }

        // Step 1: hyper-parameter search (GridSearch in Algorithm 1).
        let base = ForestParams {
            num_trees: config.num_trees,
            tree: config.tree_params,
            feature_subset: config.feature_subset,
        };
        let (tuned_params, grid_accuracy) = match &config.grid {
            Some(grid) => {
                let search = GridSearch {
                    grid: grid.clone(),
                    folds: config.grid_folds,
                    base_params: base,
                };
                let result = search.run(train, rng);
                (result.best_params, result.best_accuracy)
            }
            None => (base, 1.0),
        };

        // Step 2: Adjust(H) — shrink depth/leaf budgets to mean - std of a
        // standard ensemble trained with the tuned hyper-parameters.
        let adjusted_tree_params = if config.adjust_hyperparams {
            adjust_hyperparameters(train, &tuned_params, rng)
        } else {
            tuned_params.tree
        };

        // Step 3: sample the trigger set.
        let trigger_indices = train.sample_indices(k, rng);
        let trigger_set = train.select(&trigger_indices).expect("sampled indices are valid");

        // Steps 4 + 5: train T0 (bit 0 → correct behaviour on the trigger
        // set) and T1 (bit 1 → misclassification, on the label-flipped
        // training set) concurrently. Each sub-ensemble trains from its own
        // RNG stream derived from the master seed, so the result is
        // bit-identical whether the two run in parallel or back-to-back —
        // and independent of the worker-thread count. Both seeds are always
        // drawn, even for all-zero / all-one signatures, to keep the master
        // stream stable across signature shapes.
        let zeros = signature.zeros();
        let ones = signature.ones();
        let seeds = derive_seeds(2, rng);
        let flipped_train = if ones > 0 {
            Some(
                train
                    .with_labels_flipped_at(&trigger_indices)
                    .expect("trigger indices are valid"),
            )
        } else {
            None
        };
        let sub_params = |num_trees: usize| ForestParams {
            num_trees,
            tree: adjusted_tree_params,
            feature_subset: config.feature_subset,
        };
        // `rayon::join` forks the two sub-ensembles through the shared
        // work-stealing pool: T0 trains on the calling thread while T1 is
        // stolen by (or reclaimed from) a pool worker, and the per-tree
        // `fit_weighted` fan-out inside each half composes with the fork
        // instead of serializing — the pool schedules nested jobs. An
        // `install`ed width limit travels with the forked job, so
        // `num_threads(1)` runs T0 then T1 strictly serially (their
        // bit-identity under any schedule is guaranteed by the derived
        // seeds, not by scheduling).
        let trigger_indices_ref = &trigger_indices;
        let sub_params_ref = &sub_params;
        let (t0_seed, t1_seed) = (seeds[0], seeds[1]);
        let (t0_result, t1_result) = rayon::join(
            move || {
                (zeros > 0).then(|| {
                    train_with_trigger(
                        train,
                        trigger_indices_ref,
                        &sub_params_ref(zeros),
                        config,
                        &mut rng_from_seed(t0_seed),
                    )
                })
            },
            || {
                flipped_train.as_ref().map(|flipped| {
                    train_with_trigger(
                        flipped,
                        trigger_indices_ref,
                        &sub_params_ref(ones),
                        config,
                        &mut rng_from_seed(t1_seed),
                    )
                })
            },
        );
        let mut t0 = None;
        let mut t0_diag = None;
        let mut t1 = None;
        let mut t1_diag = None;
        for (ensemble, result, forest_slot, diag_slot) in [
            ("T0", t0_result, &mut t0, &mut t0_diag),
            ("T1", t1_result, &mut t1, &mut t1_diag),
        ] {
            let Some((forest, diag)) = result else { continue };
            if config.strict && !diag.compliant {
                return Err(WatermarkError::TriggerForcingFailed {
                    ensemble,
                    rounds: diag.rounds,
                    compliance: diag.compliance,
                });
            }
            *forest_slot = Some(forest);
            *diag_slot = Some(diag);
        }

        // Step 6: interleave trees according to the signature.
        let mut t0_iter = t0.iter().flat_map(|f| f.trees().iter().cloned());
        let mut t1_iter = t1.iter().flat_map(|f| f.trees().iter().cloned());
        let mut trees = Vec::with_capacity(config.num_trees);
        for i in 0..config.num_trees {
            let tree = if signature.bit(i) {
                t1_iter.next().expect("T1 holds one tree per 1-bit")
            } else {
                t0_iter.next().expect("T0 holds one tree per 0-bit")
            };
            trees.push(tree);
        }
        let model = RandomForest::from_trees_with_classes(trees, train.num_classes());

        Ok(WatermarkOutcome {
            model,
            trigger_set,
            trigger_indices,
            signature: signature.clone(),
            tuned_params,
            adjusted_tree_params,
            diagnostics: EmbeddingDiagnostics {
                grid_accuracy,
                t0: t0_diag,
                t1: t1_diag,
            },
        })
    }

    /// Trains a *standard* (non-watermarked) forest with the same
    /// hyper-parameter search pipeline, used as the accuracy baseline in
    /// the paper's Figure 3.
    pub fn train_baseline<R: Rng + ?Sized>(&self, train: &Dataset, rng: &mut R) -> RandomForest {
        let config = &self.config;
        let base = ForestParams {
            num_trees: config.num_trees,
            tree: config.tree_params,
            feature_subset: config.feature_subset,
        };
        let params = match &config.grid {
            Some(grid) => {
                let search = GridSearch {
                    grid: grid.clone(),
                    folds: config.grid_folds,
                    base_params: base,
                };
                search.run(train, rng).best_params
            }
            None => base,
        };
        RandomForest::fit(train, &params, rng)
    }
}

/// The `Adjust(H)` heuristic: train a standard ensemble with the tuned
/// hyper-parameters, measure the mean and standard deviation of the
/// per-tree depth and leaf count, and shrink the budget to
/// `floor(mean − std)` for both quantities (never below a depth of 2 or 4
/// leaves).
pub fn adjust_hyperparameters<R: Rng + ?Sized>(
    train: &Dataset,
    tuned: &ForestParams,
    rng: &mut R,
) -> TreeParams {
    let probe = RandomForest::fit(train, tuned, rng);
    let stats = probe.tree_stats();
    let depths: Vec<f64> = stats.iter().map(|s| s.depth as f64).collect();
    let leaves: Vec<f64> = stats.iter().map(|s| s.leaves as f64).collect();
    let (depth_mean, depth_std) = mean_std(&depths);
    let (leaf_mean, leaf_std) = mean_std(&leaves);
    let max_depth = ((depth_mean - depth_std).floor() as usize).max(2);
    let max_leaves = ((leaf_mean - leaf_std).floor() as usize).max(4);
    tuned.tree.with_budget(Some(max_depth), Some(max_leaves))
}

/// The `TrainWithTrigger` function of Algorithm 1: retrains the forest with
/// growing trigger-instance weights until every tree classifies every
/// trigger instance as labeled in `dataset` (for `T1` the caller passes the
/// label-flipped training set, so "as labeled" means "misclassified with
/// respect to the original labels").
pub fn train_with_trigger<R: Rng + ?Sized>(
    dataset: &Dataset,
    trigger_indices: &[usize],
    params: &ForestParams,
    config: &WatermarkConfig,
    rng: &mut R,
) -> (RandomForest, TriggerTrainingDiagnostics) {
    // Feature sort order is weight-independent, so every retraining round
    // below reuses the dataset-level presorted columns; building them here
    // (rather than lazily inside the first round's parallel tree training)
    // keeps the one-time cost out of the per-tree hot path. Label-flipped
    // datasets share the original training set's cache (see
    // `Dataset::with_labels_flipped_at`), so `T1` rounds are free too.
    match params.tree.strategy {
        wdte_trees::SplitStrategy::Exact => {
            let _ = dataset.presort();
        }
        wdte_trees::SplitStrategy::Histogram { bins } => {
            // Same clamp as tree training, so this warms the exact cache
            // entry the rounds will hit.
            let _ = dataset.binning(bins.clamp(2, u16::MAX as usize));
        }
        wdte_trees::SplitStrategy::ExactNaive => {}
    }
    let mut weights = vec![1.0; dataset.len()];
    let mut current_params = *params;
    let mut relaxations = 0usize;
    let mut rounds = 0usize;
    let mut best: Option<(RandomForest, f64)> = None;
    // The trigger rows never change across rounds; materialize them once so
    // every round's compliance check is a single compiled batch pass.
    let trigger_view = if trigger_indices.is_empty() {
        None
    } else {
        Some(dataset.select(trigger_indices).expect("trigger indices are valid"))
    };

    loop {
        rounds += 1;
        let forest = RandomForest::fit_weighted(dataset, &weights, &current_params, rng);
        let compliance = match &trigger_view {
            Some(trigger) => compiled_trigger_compliance(&CompiledForest::compile(&forest), trigger),
            None => 1.0,
        };
        let is_better = best.as_ref().is_none_or(|(_, c)| compliance > *c);
        if is_better {
            best = Some((forest, compliance));
        }
        if compliance >= 1.0 {
            break;
        }
        if rounds >= config.max_weight_rounds {
            break;
        }
        // Escape hatch: if the adjusted budget is too tight to isolate the
        // trigger instances, relax it one step every `relax_after` rounds.
        if config.relax_after > 0 && rounds.is_multiple_of(config.relax_after) {
            current_params.tree = current_params.tree.relaxed();
            relaxations += 1;
        }
        for &index in trigger_indices {
            weights[index] = config.weight_schedule.bump(weights[index]);
        }
    }

    let (forest, compliance) = best.expect("at least one round runs");
    let max_trigger_weight = trigger_indices.iter().map(|&i| weights[i]).fold(0.0f64, f64::max);
    let diagnostics = TriggerTrainingDiagnostics {
        rounds,
        compliant: compliance >= 1.0,
        compliance,
        max_trigger_weight,
        relaxations,
    };
    (forest, diagnostics)
}

/// Fraction of (tree, trigger instance) pairs where the tree predicts the
/// label recorded in `dataset`.
///
/// Compiles the forest once and answers all trigger instances through the
/// batch inference path; inside Algorithm 1's retraining loop the caller
/// ([`train_with_trigger`]) additionally hoists the trigger-row selection
/// out of the loop and calls [`compiled_trigger_compliance`] directly.
pub fn trigger_compliance(forest: &RandomForest, dataset: &Dataset, trigger_indices: &[usize]) -> f64 {
    if trigger_indices.is_empty() || forest.num_trees() == 0 {
        return 1.0;
    }
    let trigger = dataset.select(trigger_indices).expect("trigger indices are valid");
    compiled_trigger_compliance(&CompiledForest::compile(forest), &trigger)
}

/// [`trigger_compliance`] against an already-compiled forest and an
/// already-selected trigger dataset — the per-round hot path of
/// `TrainWithTrigger`.
pub fn compiled_trigger_compliance(compiled: &CompiledForest, trigger: &Dataset) -> f64 {
    if trigger.is_empty() || compiled.num_trees() == 0 {
        return 1.0;
    }
    let predictions = compiled.predict_all_batch(trigger.features());
    let total = trigger.len() * compiled.num_trees();
    let satisfied: usize = predictions
        .iter()
        .zip(trigger.labels())
        .map(|(votes, &label)| votes.iter().filter(|&&vote| vote == label).count())
        .sum();
    satisfied as f64 / total as f64
}

/// Checks the watermark property directly on a model: every tree with bit 0
/// classifies every trigger instance correctly and every tree with bit 1
/// misclassifies it (as the deterministic class rotation `(c + 1) mod k`,
/// which for binary labels is exactly the paper's flip).
pub fn watermark_holds(model: &RandomForest, signature: &Signature, trigger_set: &Dataset) -> bool {
    if model.num_trees() != signature.len() {
        return false;
    }
    let num_classes = trigger_set.num_classes();
    trigger_set.iter().all(|(instance, label)| {
        model
            .predict_all(instance)
            .iter()
            .enumerate()
            .all(|(i, &prediction)| prediction == signature.required_prediction_k(i, label, num_classes))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wdte_data::SyntheticSpec;
    use wdte_trees::FeatureSubset;

    fn small_train() -> Dataset {
        SyntheticSpec::breast_cancer_like()
            .scaled(0.6)
            .generate(&mut SmallRng::seed_from_u64(21))
    }

    fn fast_config(num_trees: usize) -> WatermarkConfig {
        WatermarkConfig {
            num_trees,
            ..WatermarkConfig::fast()
        }
    }

    #[test]
    fn embedding_produces_a_compliant_watermark() {
        let train = small_train();
        let mut rng = SmallRng::seed_from_u64(1);
        let signature = Signature::random(12, 0.5, &mut rng);
        let outcome = Watermarker::new(fast_config(12)).embed(&train, &signature, &mut rng).unwrap();
        assert_eq!(outcome.model.num_trees(), 12);
        assert_eq!(outcome.trigger_set.len(), outcome.trigger_indices.len());
        assert!(watermark_holds(&outcome.model, &signature, &outcome.trigger_set));
        // The trigger set keeps the original labels.
        for (&index, label) in outcome.trigger_indices.iter().zip(outcome.trigger_set.labels()) {
            assert_eq!(train.label(index), *label);
        }
    }

    #[test]
    fn watermarked_model_keeps_most_of_its_accuracy() {
        let dataset = SyntheticSpec::breast_cancer_like().generate(&mut SmallRng::seed_from_u64(5));
        let mut rng = SmallRng::seed_from_u64(6);
        let (train, test) = dataset.split_stratified(0.7, &mut rng);
        let signature = Signature::random(16, 0.5, &mut rng);
        let watermarker = Watermarker::new(fast_config(16));
        let outcome = watermarker.embed(&train, &signature, &mut rng).unwrap();
        let baseline = watermarker.train_baseline(&train, &mut rng);
        let wm_accuracy = outcome.model.accuracy(&test);
        let baseline_accuracy = baseline.accuracy(&test);
        assert!(baseline_accuracy > 0.88, "baseline accuracy {baseline_accuracy}");
        assert!(
            baseline_accuracy - wm_accuracy < 0.08,
            "watermarking cost too much accuracy: baseline {baseline_accuracy}, watermarked {wm_accuracy}"
        );
    }

    #[test]
    fn signature_length_must_match_tree_count() {
        let train = small_train();
        let mut rng = SmallRng::seed_from_u64(2);
        let signature = Signature::random(8, 0.5, &mut rng);
        let err = Watermarker::new(fast_config(12))
            .embed(&train, &signature, &mut rng)
            .unwrap_err();
        assert!(matches!(err, WatermarkError::SignatureLengthMismatch { .. }));
    }

    #[test]
    fn oversized_trigger_fraction_is_rejected() {
        let train = small_train();
        let mut rng = SmallRng::seed_from_u64(3);
        let signature = Signature::random(4, 0.5, &mut rng);
        let config = WatermarkConfig {
            trigger_fraction: 1.5,
            ..fast_config(4)
        };
        let err = Watermarker::new(config).embed(&train, &signature, &mut rng).unwrap_err();
        assert!(matches!(err, WatermarkError::TriggerTooLarge { .. }));
    }

    #[test]
    fn all_zero_and_all_one_signatures_are_supported() {
        let train = small_train();
        let mut rng = SmallRng::seed_from_u64(4);
        for bits in ["0000000000", "1111111111"] {
            let signature = Signature::from_str_bits(bits).unwrap();
            let outcome = Watermarker::new(fast_config(10)).embed(&train, &signature, &mut rng).unwrap();
            assert!(watermark_holds(&outcome.model, &signature, &outcome.trigger_set));
        }
    }

    #[test]
    fn adjust_shrinks_the_structural_budget() {
        let train = small_train();
        let mut rng = SmallRng::seed_from_u64(7);
        let tuned = ForestParams {
            num_trees: 10,
            ..ForestParams::default()
        };
        let adjusted = adjust_hyperparameters(&train, &tuned, &mut rng);
        let probe = RandomForest::fit(&train, &tuned, &mut SmallRng::seed_from_u64(7));
        let mean_depth =
            probe.tree_stats().iter().map(|s| s.depth as f64).sum::<f64>() / probe.num_trees() as f64;
        assert!(adjusted.max_depth.unwrap() as f64 <= mean_depth);
        assert!(adjusted.max_leaves.is_some());
    }

    #[test]
    fn compiled_compliance_matches_the_recursive_walk() {
        let train = small_train();
        let mut rng = SmallRng::seed_from_u64(23);
        let params = ForestParams {
            num_trees: 7,
            ..ForestParams::default()
        };
        let forest = RandomForest::fit(&train, &params, &mut rng);
        let trigger_indices: Vec<usize> = (0..train.len()).step_by(9).collect();
        // Reference value from the pointer-tree walk, one sample at a time.
        let mut satisfied = 0usize;
        for &index in &trigger_indices {
            for tree in forest.trees() {
                if tree.predict(train.instance(index)) == train.label(index) {
                    satisfied += 1;
                }
            }
        }
        let recursive = satisfied as f64 / (trigger_indices.len() * forest.num_trees()) as f64;
        let batched = trigger_compliance(&forest, &train, &trigger_indices);
        assert_eq!(batched, recursive);
        let trigger = train.select(&trigger_indices).unwrap();
        assert_eq!(
            compiled_trigger_compliance(&CompiledForest::compile(&forest), &trigger),
            recursive
        );
    }

    #[test]
    fn extreme_weight_rounds_never_produce_non_finite_weights_or_nan_splits() {
        // Two identical instances with opposite labels: no tree can satisfy
        // both, so with both in the trigger set compliance stays below 1.0
        // and the loop runs the full (huge) round budget. Without the
        // weight clamp, Multiplicative(3.0) overflows to inf after ~650
        // rounds and weighted impurities turn NaN.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..8 {
            rows.push(vec![i as f64, (i % 3) as f64]);
            labels.push(if i % 2 == 0 {
                wdte_data::Label::Positive
            } else {
                wdte_data::Label::Negative
            });
        }
        rows.push(vec![100.0, 100.0]);
        labels.push(wdte_data::Label::Positive);
        rows.push(vec![100.0, 100.0]);
        labels.push(wdte_data::Label::Negative);
        let features = wdte_data::DenseMatrix::from_rows(&rows).unwrap();
        let dataset = Dataset::new("conflicting", features, labels).unwrap();

        let config = WatermarkConfig {
            num_trees: 2,
            weight_schedule: crate::WeightSchedule::Multiplicative(3.0),
            max_weight_rounds: 800,
            relax_after: 0,
            ..WatermarkConfig::fast()
        };
        let params = ForestParams {
            num_trees: 2,
            tree: TreeParams {
                max_depth: Some(4),
                ..TreeParams::default()
            },
            feature_subset: FeatureSubset::All,
        };
        let trigger_indices = vec![8, 9];
        let mut rng = SmallRng::seed_from_u64(12);
        let (forest, diag) = train_with_trigger(&dataset, &trigger_indices, &params, &config, &mut rng);
        assert_eq!(diag.rounds, 800, "the conflicting trigger keeps the loop running");
        assert!(!diag.compliant);
        assert!(diag.max_trigger_weight.is_finite());
        assert!(diag.max_trigger_weight <= crate::config::MAX_TRIGGER_WEIGHT);
        assert!(diag.compliance.is_finite());
        for tree in forest.trees() {
            for node in tree.nodes() {
                if let wdte_trees::Node::Internal { threshold, .. } = node {
                    assert!(threshold.is_finite(), "split threshold poisoned: {threshold}");
                }
            }
        }
    }

    #[test]
    fn trigger_compliance_counts_pairs() {
        let train = small_train();
        let mut rng = SmallRng::seed_from_u64(8);
        let params = ForestParams {
            num_trees: 5,
            feature_subset: FeatureSubset::All,
            ..ForestParams::default()
        };
        let forest = RandomForest::fit(&train, &params, &mut rng);
        // With unit weights and all features, most training points are
        // classified correctly by fully grown trees.
        let compliance = trigger_compliance(&forest, &train, &[0, 1, 2, 3, 4]);
        assert!(compliance > 0.8);
        assert_eq!(trigger_compliance(&forest, &train, &[]), 1.0);
    }

    #[test]
    fn train_with_trigger_reaches_compliance_on_flipped_labels() {
        let train = small_train();
        let mut rng = SmallRng::seed_from_u64(9);
        let trigger_indices = vec![3, 17, 29];
        let flipped = train.with_labels_flipped_at(&trigger_indices).unwrap();
        let config = fast_config(6);
        let params = ForestParams {
            num_trees: 6,
            tree: TreeParams {
                max_depth: Some(8),
                max_leaves: Some(64),
                ..TreeParams::default()
            },
            feature_subset: FeatureSubset::Sqrt,
        };
        let (forest, diag) = train_with_trigger(&flipped, &trigger_indices, &params, &config, &mut rng);
        assert!(
            diag.compliant,
            "compliance only reached {:.2} after {} rounds",
            diag.compliance, diag.rounds
        );
        for &index in &trigger_indices {
            for tree in forest.trees() {
                assert_eq!(tree.predict(flipped.instance(index)), flipped.label(index));
            }
        }
    }

    #[test]
    fn embedding_is_deterministic_for_a_fixed_seed() {
        let train = small_train();
        let signature = Signature::random(8, 0.5, &mut SmallRng::seed_from_u64(10));
        let watermarker = Watermarker::new(fast_config(8));
        let a = watermarker.embed(&train, &signature, &mut SmallRng::seed_from_u64(11)).unwrap();
        let b = watermarker.embed(&train, &signature, &mut SmallRng::seed_from_u64(11)).unwrap();
        assert_eq!(a.model, b.model);
        assert_eq!(a.trigger_indices, b.trigger_indices);
    }
}
