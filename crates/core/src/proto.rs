//! Versioned wire protocol for dispute resolution ("judge as a service").
//!
//! The paper's verification protocol is an interaction between parties that
//! do not share a process: model owners and claimants *submit* disputes to
//! a trusted judge. This module defines the request/response surface of
//! that judge as typed messages with an explicit, versioned binary framing,
//! applying the same discipline [`crate::persist`] already applies to
//! on-disk artefacts — a dispute must never be decided on a silently
//! misread message.
//!
//! ## Frame format
//!
//! Every message travels as one length-prefixed frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "WDTP"
//! 4       2     protocol version (little-endian u16, currently 1)
//! 6       4     payload length in bytes (little-endian u32)
//! 10      len   payload: one value in the persist binary codec
//! ```
//!
//! The payload is a [`serde::Value`] rendered with the exact
//! tag-length-value codec `persist` uses for binary artefacts, so forests,
//! [`OwnershipClaim`]s and [`VerificationReport`]s cross the wire in the
//! same bounds-checked, allocation-capped, depth-limited encoding they are
//! stored in. Decoding is hardened end to end: the length prefix is
//! validated against a receiver-side cap *before* any allocation
//! ([`WatermarkError::FrameTooLarge`]), unknown magic and truncated frames
//! surface as [`WatermarkError::ProtocolViolation`], and a frame written by
//! a different protocol version fails with
//! [`WatermarkError::UnsupportedProtocolVersion`].
//!
//! ## Version policy
//!
//! [`PROTOCOL_VERSION`] is bumped whenever the frame layout or the shape of
//! an existing message changes. Peers accept exactly the version they were
//! built with — adding a *new* request kind is also a bump, because an old
//! judge must refuse it loudly rather than answer garbage. The protocol
//! version is deliberately independent of [`persist::FORMAT_VERSION`]: the
//! wire and the disk evolve separately.

use crate::error::{WatermarkError, WatermarkResult};
use crate::persist;
use crate::service::Dispute;
use crate::verify::{OwnershipClaim, VerificationReport};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use wdte_trees::RandomForest;

/// Magic bytes opening every protocol frame ("WDTP" = WDTE protocol; the
/// final byte differs from the on-disk [`persist::MAGIC`] so a stray
/// artefact file can never be mistaken for a frame, or vice versa).
pub const PROTO_MAGIC: &[u8; 4] = b"WDTP";

/// Protocol version this build speaks and accepts.
pub const PROTOCOL_VERSION: u16 = 1;

/// Number of bytes before the payload: magic + version + length prefix.
pub const FRAME_HEADER_BYTES: usize = 10;

/// Default receiver-side cap on one frame's payload (256 MiB) — generous
/// enough for a large registered forest, small enough that a hostile
/// length prefix cannot drive the judge into a multi-gigabyte allocation.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 256 << 20;

/// A request filed with the judge. One frame carries exactly one request;
/// the judge answers each with exactly one [`Response`] frame on the same
/// connection, in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness / version probe.
    Ping,
    /// Registers a pointer-tree model under `model_id`; the judge compiles
    /// it once and serves every later claim from the compiled form.
    RegisterModel {
        /// Registry id the model will be reachable under.
        model_id: String,
        /// The suspect model, in the persist value encoding.
        model: RandomForest,
    },
    /// Resolves one claim against a registered model.
    Resolve {
        /// Registry id of the suspect model.
        model_id: String,
        /// The owner's evidence.
        claim: OwnershipClaim,
    },
    /// Resolves a whole docket concurrently, one verdict per dispute in
    /// input order.
    ResolveDocket {
        /// The disputes to adjudicate.
        disputes: Vec<Dispute>,
    },
    /// Lists the ids of every registered model, sorted.
    ListModels,
    /// Removes a model from the registry.
    Deregister {
        /// Registry id to remove.
        model_id: String,
    },
}

/// The judge's answer to one [`Request`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong {
        /// Protocol version the judge speaks.
        protocol_version: u16,
        /// Artefact format version the judge reads and writes.
        format_version: u16,
        /// Number of models currently registered.
        models_registered: u64,
    },
    /// Answer to [`Request::RegisterModel`].
    Registered {
        /// The id the model is now reachable under.
        model_id: String,
        /// Tree count of the registered model (sanity echo).
        num_trees: u64,
    },
    /// Answer to [`Request::Resolve`].
    Resolved {
        /// The verification verdict.
        report: VerificationReport,
    },
    /// Answer to [`Request::ResolveDocket`].
    Docket {
        /// One verdict per dispute, in input order.
        verdicts: Vec<DocketVerdict>,
    },
    /// Answer to [`Request::ListModels`].
    Models {
        /// Sorted ids of every registered model.
        model_ids: Vec<String>,
    },
    /// Answer to [`Request::Deregister`].
    Deregistered {
        /// The id that was removed.
        model_id: String,
        /// Whether the id was registered before the request.
        existed: bool,
    },
    /// The request could not be served at all.
    Error {
        /// What went wrong, in a structured form.
        fault: WireFault,
    },
}

/// One verdict of a [`Response::Docket`]: the wire rendering of the
/// per-dispute `WatermarkResult<VerificationReport>` that
/// `DisputeService::resolve_many` produces in process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DocketVerdict {
    /// The dispute was adjudicated.
    Report(VerificationReport),
    /// The dispute named a model the judge does not know.
    UnknownModel {
        /// The model id the claim was filed against.
        model_id: String,
    },
    /// Any other failure, rendered as text (forward-compatible catch-all).
    Failed {
        /// The rendered error message.
        message: String,
    },
}

impl DocketVerdict {
    /// Wire rendering of an in-process verdict.
    pub fn from_result(result: WatermarkResult<VerificationReport>) -> Self {
        match result {
            Ok(report) => DocketVerdict::Report(report),
            Err(WatermarkError::UnknownModel { model_id }) => DocketVerdict::UnknownModel { model_id },
            Err(other) => DocketVerdict::Failed {
                message: other.to_string(),
            },
        }
    }

    /// Reconstructs the in-process verdict on the client side. Structured
    /// variants round-trip exactly; [`DocketVerdict::Failed`] surfaces as
    /// [`WatermarkError::Remote`].
    pub fn into_result(self) -> WatermarkResult<VerificationReport> {
        match self {
            DocketVerdict::Report(report) => Ok(report),
            DocketVerdict::UnknownModel { model_id } => Err(WatermarkError::UnknownModel { model_id }),
            DocketVerdict::Failed { message } => Err(WatermarkError::Remote { message }),
        }
    }
}

/// Structured rendering of a request-level failure for [`Response::Error`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireFault {
    /// The request named a model the judge does not know.
    UnknownModel {
        /// The unknown registry id.
        model_id: String,
    },
    /// The docket exceeded the judge's configured cap and was refused
    /// whole.
    DocketTooLarge {
        /// Number of disputes in the refused docket.
        size: u64,
        /// The judge's cap.
        max: u64,
    },
    /// The frame decoded but its content violated the protocol.
    BadRequest {
        /// What was wrong.
        detail: String,
    },
    /// The peer's frame announced a protocol version this judge does not
    /// speak.
    UnsupportedProtocolVersion {
        /// Version announced by the peer.
        found: u16,
        /// Version the judge speaks.
        supported: u16,
    },
    /// The peer's frame announced a payload beyond the judge's cap.
    FrameTooLarge {
        /// Announced payload size in bytes.
        size: u64,
        /// The judge's cap in bytes.
        max: u64,
    },
    /// The judge failed internally while serving a well-formed request.
    Internal {
        /// The rendered error message.
        detail: String,
    },
}

impl WireFault {
    /// Wire rendering of a server-side error.
    pub fn from_error(err: &WatermarkError) -> Self {
        match err {
            WatermarkError::UnknownModel { model_id } => WireFault::UnknownModel {
                model_id: model_id.clone(),
            },
            WatermarkError::DocketTooLarge { size, max } => WireFault::DocketTooLarge {
                size: *size as u64,
                max: *max as u64,
            },
            WatermarkError::ProtocolViolation { detail } => WireFault::BadRequest {
                detail: detail.clone(),
            },
            WatermarkError::UnsupportedProtocolVersion { found, supported } => {
                WireFault::UnsupportedProtocolVersion {
                    found: *found,
                    supported: *supported,
                }
            }
            WatermarkError::FrameTooLarge { size, max } => WireFault::FrameTooLarge {
                size: *size,
                max: *max,
            },
            other => WireFault::Internal {
                detail: other.to_string(),
            },
        }
    }

    /// Reconstructs the typed error on the client side. Structured faults
    /// round-trip exactly; [`WireFault::Internal`] surfaces as
    /// [`WatermarkError::Remote`].
    pub fn into_error(self) -> WatermarkError {
        match self {
            WireFault::UnknownModel { model_id } => WatermarkError::UnknownModel { model_id },
            WireFault::DocketTooLarge { size, max } => WatermarkError::DocketTooLarge {
                size: size as usize,
                max: max as usize,
            },
            WireFault::BadRequest { detail } => WatermarkError::ProtocolViolation { detail },
            WireFault::UnsupportedProtocolVersion { found, supported } => {
                WatermarkError::UnsupportedProtocolVersion { found, supported }
            }
            WireFault::FrameTooLarge { size, max } => WatermarkError::FrameTooLarge { size, max },
            WireFault::Internal { detail } => WatermarkError::Remote { message: detail },
        }
    }
}

/// Encodes one message into a complete frame (header + payload). Fails
/// with [`WatermarkError::FrameTooLarge`] if the payload exceeds what the
/// u32 length prefix can announce — the sender-side mirror of the
/// receiver's cap, surfaced as a typed error rather than a panic.
pub fn encode_frame<T: Serialize + ?Sized>(message: &T) -> WatermarkResult<Vec<u8>> {
    let payload = persist::encode_value_bytes(&message.to_value());
    if u32::try_from(payload.len()).is_err() {
        return Err(WatermarkError::FrameTooLarge {
            size: payload.len() as u64,
            max: u64::from(u32::MAX),
        });
    }
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    frame.extend_from_slice(PROTO_MAGIC);
    frame.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Decodes one message from a complete frame produced by [`encode_frame`],
/// validating magic, version, the length prefix (against `max_frame_bytes`)
/// and the absence of trailing bytes.
pub fn decode_frame<T: Deserialize>(frame: &[u8], max_frame_bytes: usize) -> WatermarkResult<T> {
    if frame.len() < FRAME_HEADER_BYTES {
        return Err(violation(format!(
            "frame of {} bytes is shorter than the {FRAME_HEADER_BYTES}-byte header",
            frame.len()
        )));
    }
    let (header, payload) = frame.split_at(FRAME_HEADER_BYTES);
    check_header(header, max_frame_bytes).and_then(|announced| {
        if payload.len() != announced {
            return Err(violation(format!(
                "frame announces a {announced}-byte payload but carries {} bytes",
                payload.len()
            )));
        }
        decode_payload(payload)
    })
}

/// Decodes a message from raw payload bytes (the part after the header, as
/// returned by [`read_frame`]).
pub fn decode_payload<T: Deserialize>(payload: &[u8]) -> WatermarkResult<T> {
    let value = persist::decode_value_bytes(payload).map_err(|err| violation(err.to_string()))?;
    T::from_value(&value).map_err(|err| violation(format!("payload does not decode: {err}")))
}

/// Validates a 10-byte frame header, returning the announced payload
/// length.
fn check_header(header: &[u8], max_frame_bytes: usize) -> WatermarkResult<usize> {
    if &header[..4] != PROTO_MAGIC {
        return Err(violation(format!(
            "bad frame magic {:02x?} (expected \"WDTP\")",
            &header[..4]
        )));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != PROTOCOL_VERSION {
        return Err(WatermarkError::UnsupportedProtocolVersion {
            found: version,
            supported: PROTOCOL_VERSION,
        });
    }
    let announced = u32::from_le_bytes([header[6], header[7], header[8], header[9]]) as usize;
    if announced > max_frame_bytes {
        return Err(WatermarkError::FrameTooLarge {
            size: announced as u64,
            max: max_frame_bytes as u64,
        });
    }
    Ok(announced)
}

/// Writes one message as a frame to `writer` (single `write_all`, so a
/// frame is never interleaved when the writer is shared carefully).
pub fn write_message<T: Serialize + ?Sized, W: Write>(
    writer: &mut W,
    message: &T,
) -> WatermarkResult<()> {
    let frame = encode_frame(message)?;
    writer.write_all(&frame).map_err(io_violation)?;
    writer.flush().map_err(io_violation)
}

/// Reads one frame from `reader` and returns its payload bytes.
///
/// Returns `Ok(None)` on a clean end-of-stream (the peer closed between
/// frames); a stream that ends *inside* a frame — a half-closed socket
/// mid-message — is a [`WatermarkError::ProtocolViolation`]. The announced
/// payload length is validated against `max_frame_bytes` before any
/// allocation, and the read buffer grows with the bytes actually received
/// rather than trusting the prefix.
pub fn read_frame<R: Read>(reader: &mut R, max_frame_bytes: usize) -> WatermarkResult<Option<Vec<u8>>> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    let mut filled = 0usize;
    while filled < header.len() {
        let n = match reader.read(&mut header[filled..]) {
            Ok(n) => n,
            // Retry on signal interruption, as `read_to_end` does for the
            // payload half: a mid-header signal is not a protocol event.
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(io_violation(err)),
        };
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(violation(format!(
                "stream closed after {filled} of {FRAME_HEADER_BYTES} header bytes"
            )));
        }
        filled += n;
    }
    let announced = check_header(&header, max_frame_bytes)?;
    // Allocation cap: reserve at most 64 KiB up front; everything past that
    // is grown by `read_to_end` as bytes actually arrive, so a hostile
    // length prefix below the cap still cannot reserve more memory than the
    // peer is willing to send.
    let mut payload = Vec::with_capacity(announced.min(64 << 10));
    let read = reader.take(announced as u64).read_to_end(&mut payload).map_err(io_violation)?;
    if read != announced {
        return Err(violation(format!(
            "stream closed after {read} of {announced} payload bytes"
        )));
    }
    Ok(Some(payload))
}

/// Reads one message from `reader`. End-of-stream before any byte yields
/// `Ok(None)`.
pub fn read_message<T: Deserialize, R: Read>(
    reader: &mut R,
    max_frame_bytes: usize,
) -> WatermarkResult<Option<T>> {
    match read_frame(reader, max_frame_bytes)? {
        Some(payload) => Ok(Some(decode_payload(&payload)?)),
        None => Ok(None),
    }
}

fn violation(detail: impl Into<String>) -> WatermarkError {
    WatermarkError::ProtocolViolation {
        detail: detail.into(),
    }
}

/// Socket-level failures (timeout, reset, EPIPE) are *transport* errors,
/// not protocol violations: nothing the peer sent was wrong. They surface
/// as [`WatermarkError::Io`] so a judge answering best-effort renders them
/// as an internal fault rather than blaming the peer's request.
fn io_violation(err: std::io::Error) -> WatermarkError {
    WatermarkError::Io {
        path: "socket".to_string(),
        message: err.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::Signature;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wdte_data::SyntheticSpec;
    use wdte_trees::ForestParams;

    fn sample_claim() -> OwnershipClaim {
        let mut rng = SmallRng::seed_from_u64(9);
        let dataset = SyntheticSpec::breast_cancer_like().scaled(0.2).generate(&mut rng);
        let (trigger, test) = dataset.split_train_test(0.2, &mut rng);
        OwnershipClaim::new(Signature::random(8, 0.5, &mut rng), trigger, test)
    }

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(message: &T) {
        let frame = encode_frame(message).unwrap();
        assert_eq!(&frame[..4], PROTO_MAGIC);
        let decoded: T = decode_frame(&frame, DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(&decoded, message);
        // Streamed path: read_frame + decode_payload see the same message.
        let mut reader = std::io::Cursor::new(frame);
        let payload = read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).unwrap().unwrap();
        let streamed: T = decode_payload(&payload).unwrap();
        assert_eq!(&streamed, message);
        // And the stream is exhausted: the next read is a clean EOF.
        assert!(read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).unwrap().is_none());
    }

    #[test]
    fn every_request_kind_round_trips() {
        let mut rng = SmallRng::seed_from_u64(10);
        let dataset = SyntheticSpec::breast_cancer_like().scaled(0.2).generate(&mut rng);
        let model = RandomForest::fit(&dataset, &ForestParams::with_trees(4), &mut rng);
        let claim = sample_claim();
        round_trip(&Request::Ping);
        round_trip(&Request::RegisterModel {
            model_id: "m".into(),
            model,
        });
        round_trip(&Request::Resolve {
            model_id: "m".into(),
            claim: claim.clone(),
        });
        round_trip(&Request::ResolveDocket {
            disputes: vec![Dispute::new("m", claim)],
        });
        round_trip(&Request::ListModels);
        round_trip(&Request::Deregister { model_id: "m".into() });
    }

    #[test]
    fn every_response_kind_round_trips() {
        let report = VerificationReport {
            verified: true,
            instance_matches: vec![true, false, true],
            bit_agreement: 0.75,
            queries_issued: 42,
        };
        round_trip(&Response::Pong {
            protocol_version: PROTOCOL_VERSION,
            format_version: persist::FORMAT_VERSION,
            models_registered: 3,
        });
        round_trip(&Response::Registered {
            model_id: "m".into(),
            num_trees: 16,
        });
        round_trip(&Response::Resolved {
            report: report.clone(),
        });
        round_trip(&Response::Docket {
            verdicts: vec![
                DocketVerdict::Report(report),
                DocketVerdict::UnknownModel {
                    model_id: "ghost".into(),
                },
                DocketVerdict::Failed {
                    message: "boom".into(),
                },
            ],
        });
        round_trip(&Response::Models {
            model_ids: vec!["a".into(), "b".into()],
        });
        round_trip(&Response::Deregistered {
            model_id: "m".into(),
            existed: false,
        });
        round_trip(&Response::Error {
            fault: WireFault::DocketTooLarge { size: 1000, max: 64 },
        });
    }

    #[test]
    fn bad_magic_is_a_protocol_violation() {
        let mut frame = encode_frame(&Request::Ping).unwrap();
        frame[..4].copy_from_slice(b"WDTE"); // the *artefact* magic
        assert!(matches!(
            decode_frame::<Request>(&frame, DEFAULT_MAX_FRAME_BYTES).unwrap_err(),
            WatermarkError::ProtocolViolation { .. }
        ));
    }

    #[test]
    fn future_version_is_a_typed_error() {
        let mut frame = encode_frame(&Request::Ping).unwrap();
        frame[4] = 0xFF;
        frame[5] = 0x7F;
        match decode_frame::<Request>(&frame, DEFAULT_MAX_FRAME_BYTES).unwrap_err() {
            WatermarkError::UnsupportedProtocolVersion { found, supported } => {
                assert_eq!(found, 0x7FFF);
                assert_eq!(supported, PROTOCOL_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_allocating() {
        let mut frame = encode_frame(&Request::Ping).unwrap();
        frame[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        match decode_frame::<Request>(&frame, DEFAULT_MAX_FRAME_BYTES).unwrap_err() {
            WatermarkError::FrameTooLarge { size, max } => {
                assert_eq!(size, u64::from(u32::MAX));
                assert_eq!(max, DEFAULT_MAX_FRAME_BYTES as u64);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        // The streamed reader refuses on the header alone, without waiting
        // for (or allocating) the announced payload.
        let mut reader = std::io::Cursor::new(&frame[..FRAME_HEADER_BYTES]);
        assert!(matches!(
            read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).unwrap_err(),
            WatermarkError::FrameTooLarge { .. }
        ));
    }

    #[test]
    fn truncated_frames_are_protocol_violations() {
        let frame = encode_frame(&Request::Resolve {
            model_id: "m".into(),
            claim: sample_claim(),
        })
        .unwrap();
        for cut in [
            1,
            4,
            FRAME_HEADER_BYTES - 1,
            FRAME_HEADER_BYTES + 1,
            frame.len() - 1,
        ] {
            let mut reader = std::io::Cursor::new(&frame[..cut]);
            assert!(
                matches!(
                    read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).unwrap_err(),
                    WatermarkError::ProtocolViolation { .. }
                ),
                "cut at {cut} bytes"
            );
        }
    }

    #[test]
    fn trailing_bytes_inside_a_frame_are_rejected() {
        let mut frame = encode_frame(&Request::Ping).unwrap();
        // Grow the payload and fix up the length prefix so the frame itself
        // is well-formed — the *payload* now has trailing bytes.
        frame.push(0);
        let announced = (frame.len() - FRAME_HEADER_BYTES) as u32;
        frame[6..10].copy_from_slice(&announced.to_le_bytes());
        assert!(matches!(
            decode_frame::<Request>(&frame, DEFAULT_MAX_FRAME_BYTES).unwrap_err(),
            WatermarkError::ProtocolViolation { .. }
        ));
    }

    #[test]
    fn wrong_message_shape_is_a_protocol_violation() {
        // A valid frame carrying a Response where a Request is expected.
        let frame = encode_frame(&Response::Models { model_ids: vec![] }).unwrap();
        assert!(matches!(
            decode_frame::<Request>(&frame, DEFAULT_MAX_FRAME_BYTES).unwrap_err(),
            WatermarkError::ProtocolViolation { .. }
        ));
    }

    #[test]
    fn verdict_and_fault_conversions_round_trip() {
        let report = VerificationReport {
            verified: false,
            instance_matches: vec![false],
            bit_agreement: 0.5,
            queries_issued: 7,
        };
        assert_eq!(
            DocketVerdict::from_result(Ok(report.clone())).into_result().unwrap(),
            report
        );
        let err = WatermarkError::UnknownModel { model_id: "x".into() };
        assert_eq!(
            DocketVerdict::from_result(Err(err.clone())).into_result().unwrap_err(),
            err
        );
        for structured in [
            WatermarkError::DocketTooLarge { size: 100, max: 10 },
            WatermarkError::ProtocolViolation {
                detail: "junk".into(),
            },
            WatermarkError::UnsupportedProtocolVersion {
                found: 9,
                supported: 1,
            },
            WatermarkError::FrameTooLarge {
                size: 1 << 40,
                max: 1 << 28,
            },
        ] {
            assert_eq!(WireFault::from_error(&structured).into_error(), structured);
        }
        // Unstructured errors degrade to Remote but keep the message.
        let odd = WatermarkError::EmptyTrainingSet;
        match WireFault::from_error(&odd).into_error() {
            WatermarkError::Remote { message } => assert_eq!(message, odd.to_string()),
            other => panic!("expected Remote, got {other:?}"),
        }
    }
}
