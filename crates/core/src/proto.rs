//! Versioned wire protocol for dispute resolution ("judge as a service").
//!
//! The paper's verification protocol is an interaction between parties that
//! do not share a process: model owners and claimants *submit* disputes to
//! a trusted judge. This module defines the request/response surface of
//! that judge as typed messages with an explicit, versioned binary framing,
//! applying the same discipline [`crate::persist`] already applies to
//! on-disk artefacts — a dispute must never be decided on a silently
//! misread message.
//!
//! ## Frame format (v4)
//!
//! Every message travels as one length-prefixed frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "WDTP"
//! 4       2     protocol version (little-endian u16, currently 4)
//! 6       8     correlation id (little-endian u64)
//! 14      8     sequence number (little-endian u64; 0 on anonymous frames)
//! 22      16    tenant id (ASCII, zero-padded; all-zero = anonymous)
//! 38      16    authentication tag (truncated HMAC-SHA-256; zero when
//!               anonymous)
//! 54      4     payload length in bytes (little-endian u32)
//! 58      len   payload: one value in the persist binary codec
//! ```
//!
//! v4 widens the header with the three authentication fields of the
//! multi-tenant judge (see [`crate::tenant`]): a fixed tenant field, a
//! per-connection **sequence number**, and an HMAC-SHA-256 **tag** over
//! the frame transcript (magic, version, correlation id, sequence, tenant
//! field, payload length, payload) under the tenant's shared secret,
//! truncated to [`TAG_BYTES`]. The sequence must grow strictly
//! monotonically within one connection, and it is folded into the tag, so
//! a byte-identical replayed frame is refused even though its tag is
//! genuine. *Anonymous* frames — the only kind a judge without a key file
//! sees — carry zeroes in all three fields; a judge holding keys refuses
//! them. Requests are authenticated client→judge only: response frames
//! always travel with zeroed auth fields (the judge is the trusted party
//! of the paper's protocol). v3 had an 18-byte header without these
//! fields; v3 model payloads (k-class forests) are carried unchanged.
//!
//! The **correlation id** (since v2) lets a client stamp every request
//! with an id of its choosing, echoed on the response frame. Responses
//! therefore need not arrive in request order — a client can keep many
//! dockets in flight on one connection and match each verdict to its
//! request by id (see `DisputeClient::send_docket` / `recv_docket` in the
//! server crate). Id `0` is reserved for server errors answering a frame
//! whose header could not be parsed (there is no request id to echo).
//!
//! The payload is a [`serde::Value`] rendered with the exact
//! tag-length-value codec `persist` uses for binary artefacts, so forests,
//! [`OwnershipClaim`]s and [`VerificationReport`]s cross the wire in the
//! same bounds-checked, allocation-capped, depth-limited encoding they are
//! stored in. Decoding is hardened end to end: the length prefix is
//! validated against a receiver-side cap *before* any allocation
//! ([`WatermarkError::FrameTooLarge`]), unknown magic and truncated frames
//! surface as [`WatermarkError::ProtocolViolation`], and a frame written by
//! a different protocol version fails with
//! [`WatermarkError::UnsupportedProtocolVersion`]. Magic and version are
//! checked from the first [`FRAME_PRELUDE_BYTES`] bytes alone, before the
//! rest of the header is awaited: a v1 frame (whose header was 8 bytes
//! shorter) is refused with a *version* error, not misread as truncation.
//!
//! ## Content addressing
//!
//! v2 payloads can travel by reference. A [`PayloadDigest`] is a 128-bit
//! FNV-style digest over the full logical content of a claim or model —
//! the same word-wise FNV-1a construction `OwnershipClaim::disguise_seed`
//! uses, widened to two independent streams and extended over the test
//! set, so two claims differing anywhere produce different digests for
//! every practical purpose. [`Request::ResolveDocketRef`] names each
//! dispute's claim by digest and inlines only bodies the judge has not
//! seen; the judge answers a reference it cannot resolve with
//! [`Response::NeedPayload`], and [`Request::Payload`] uploads bodies
//! explicitly ([`Response::PayloadStored`]). The digest is a cache key,
//! not an authentication mechanism: the judge computes digests itself
//! from the bytes it received (a peer cannot bind a digest to foreign
//! content), but the construction is not collision-resistant against a
//! cryptographic adversary.
//!
//! ## Version policy
//!
//! [`PROTOCOL_VERSION`] is bumped whenever the frame layout or the shape of
//! an existing message changes. Peers accept exactly the version they were
//! built with — adding a *new* request kind is also a bump, because an old
//! judge must refuse it loudly rather than answer garbage. The protocol
//! version is deliberately independent of [`persist::FORMAT_VERSION`]: the
//! wire and the disk evolve separately.

use crate::error::{WatermarkError, WatermarkResult};
use crate::persist;
use crate::service::Dispute;
use crate::verify::{OwnershipClaim, VerificationReport};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use wdte_trees::{Node, RandomForest};

/// Magic bytes opening every protocol frame ("WDTP" = WDTE protocol; the
/// final byte differs from the on-disk [`persist::MAGIC`] so a stray
/// artefact file can never be mistaken for a frame, or vice versa).
pub const PROTO_MAGIC: &[u8; 4] = b"WDTP";

/// Protocol version this build speaks and accepts. v4 = the authenticated
/// multi-tenant header (sequence + tenant + tag fields) carrying v3's
/// k-class message payloads.
pub const PROTOCOL_VERSION: u16 = 4;

/// Bytes of the header prelude: magic + version. The prelude is validated
/// on its own before the rest of the header is read, so a frame from a
/// different protocol version — whose header may be a different length —
/// is refused with a version error instead of being misparsed.
pub const FRAME_PRELUDE_BYTES: usize = 6;

/// Size of the fixed tenant-id field in the frame header.
pub const TENANT_FIELD_BYTES: usize = 16;

/// Size of the truncated HMAC-SHA-256 authentication tag.
pub const TAG_BYTES: usize = 16;

/// Byte offset of the length prefix within the header (its last field).
pub const LENGTH_OFFSET: usize = FRAME_HEADER_BYTES - 4;

/// Number of bytes before the payload: magic + version + correlation id +
/// sequence + tenant field + tag + length prefix.
pub const FRAME_HEADER_BYTES: usize = 6 + 8 + 8 + TENANT_FIELD_BYTES + TAG_BYTES + 4;

/// Correlation id used by a judge answering a frame whose header could not
/// be parsed: there is no request id to echo.
pub const NO_CORRELATION: u64 = 0;

/// Default receiver-side cap on one frame's payload (256 MiB) — generous
/// enough for a large registered forest, small enough that a hostile
/// length prefix cannot drive the judge into a multi-gigabyte allocation.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 256 << 20;

/// 128-bit content digest of a claim or model payload: two independent
/// word-wise FNV-1a streams (the `disguise_seed` construction) over the
/// full logical content. Used as the cache key for content-addressed
/// payloads — see the module docs for what it does and does not promise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PayloadDigest {
    /// High 64 bits (first FNV stream).
    pub hi: u64,
    /// Low 64 bits (second FNV stream).
    pub lo: u64,
}

/// Two independent 64-bit FNV-1a streams fed word-wise. The second stream
/// uses a different offset basis and pre-rotates each word, so the two
/// halves decorrelate even on structured input (long runs of equal words).
struct DigestStream {
    hi: u64,
    lo: u64,
}

impl DigestStream {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    /// Second offset basis (the FNV-0 historic basis), distinct from the
    /// standard FNV-1a offset so the streams never start in lockstep.
    const FNV_OFFSET_ALT: u64 = 0x6c62_272e_07bb_0142;

    fn new(domain: &str) -> Self {
        let mut stream = Self {
            hi: Self::FNV_OFFSET,
            lo: Self::FNV_OFFSET_ALT,
        };
        // Domain separation: a claim and a model with coincidentally equal
        // word streams must not collide.
        for &byte in domain.as_bytes() {
            stream.eat(u64::from(byte));
        }
        stream
    }

    fn eat(&mut self, word: u64) {
        self.hi = (self.hi ^ word).wrapping_mul(Self::FNV_PRIME);
        self.lo = (self.lo ^ word.rotate_left(31)).wrapping_mul(Self::FNV_PRIME);
    }

    fn eat_dataset(&mut self, dataset: &wdte_data::Dataset) {
        self.eat(dataset.len() as u64);
        self.eat(dataset.num_features() as u64);
        for (instance, label) in dataset.iter() {
            for &value in instance {
                self.eat(value.to_bits());
            }
            self.eat(label.index() as u64);
        }
    }

    fn finish(self) -> PayloadDigest {
        PayloadDigest {
            hi: self.hi,
            lo: self.lo,
        }
    }
}

impl PayloadDigest {
    /// Digest of an ownership claim's full logical content: signature bits,
    /// trigger set and test set (rows, labels, shapes). Unlike
    /// `disguise_seed`, which deliberately skips the disguise set to stay
    /// off the verification hot path, this covers *everything* — two claims
    /// must compare equal field-for-field to share a digest.
    pub fn of_claim(claim: &OwnershipClaim) -> Self {
        let mut stream = DigestStream::new("wdtp:claim");
        stream.eat(claim.signature.len() as u64);
        for &bit in claim.signature.bits() {
            stream.eat(u64::from(bit));
        }
        stream.eat_dataset(&claim.trigger_set);
        stream.eat_dataset(&claim.test_set);
        stream.finish()
    }

    /// Digest of a pointer-tree model's full logical content: every node of
    /// every tree plus the per-tree feature subsets.
    pub fn of_model(model: &RandomForest) -> Self {
        let mut stream = DigestStream::new("wdtp:model");
        stream.eat(model.num_trees() as u64);
        stream.eat(model.num_features() as u64);
        for tree in model.trees() {
            let nodes = tree.nodes();
            stream.eat(nodes.len() as u64);
            stream.eat(tree.root() as u64);
            for node in nodes {
                match node {
                    Node::Leaf { label, counts } => {
                        stream.eat(0);
                        stream.eat(label.index() as u64);
                        // Per-class weights in index order; for binary
                        // models this is exactly the old [negative,
                        // positive] word stream, so k = 2 digests are
                        // unchanged.
                        for &weight in counts.slice() {
                            stream.eat(weight.to_bits());
                        }
                    }
                    Node::Internal {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        stream.eat(1);
                        stream.eat(*feature as u64);
                        stream.eat(threshold.to_bits());
                        stream.eat(*left as u64);
                        stream.eat(*right as u64);
                    }
                }
            }
        }
        for subset in model.feature_subsets() {
            stream.eat(subset.len() as u64);
            for &feature in subset {
                stream.eat(feature as u64);
            }
        }
        stream.finish()
    }
}

impl std::fmt::Display for PayloadDigest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// One dispute of a content-addressed docket: the claim travels as a
/// digest, the body having been inlined in the same request's `bodies` or
/// uploaded earlier on this judge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisputeRef {
    /// Registry id of the suspect model.
    pub model_id: String,
    /// Content digest of the owner's evidence.
    pub digest: PayloadDigest,
}

impl DisputeRef {
    /// Builds a reference dispute.
    pub fn new(model_id: impl Into<String>, digest: PayloadDigest) -> Self {
        Self {
            model_id: model_id.into(),
            digest,
        }
    }
}

/// A request filed with the judge. One frame carries exactly one request;
/// the judge answers each with exactly one [`Response`] frame on the same
/// connection, carrying the request's correlation id. Responses may arrive
/// in any order relative to other in-flight requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness / version probe.
    Ping,
    /// Registers a pointer-tree model under `model_id`; the judge compiles
    /// it once and serves every later claim from the compiled form.
    RegisterModel {
        /// Registry id the model will be reachable under.
        model_id: String,
        /// The suspect model, in the persist value encoding.
        model: RandomForest,
    },
    /// Registers an already-uploaded model under a (possibly new) id by
    /// content digest, skipping the model upload entirely. Answered with
    /// [`Response::NeedPayload`] if the judge has no model with that
    /// digest.
    RegisterModelRef {
        /// Registry id the model will be reachable under.
        model_id: String,
        /// Content digest of a previously registered model.
        digest: PayloadDigest,
    },
    /// Resolves one claim against a registered model.
    Resolve {
        /// Registry id of the suspect model.
        model_id: String,
        /// The owner's evidence.
        claim: OwnershipClaim,
    },
    /// Resolves a whole docket concurrently, one verdict per dispute in
    /// input order, claims carried in full.
    ResolveDocket {
        /// The disputes to adjudicate.
        disputes: Vec<Dispute>,
    },
    /// Resolves a whole docket with content-addressed claims: `bodies`
    /// carries only claims the client believes the judge has not cached,
    /// and each dispute names its claim by digest. A digest the judge can
    /// resolve from neither `bodies` nor its cache is answered with
    /// [`Response::NeedPayload`] (no partial verdicts).
    ResolveDocketRef {
        /// Claim bodies inlined with this docket (deduplicated).
        bodies: Vec<OwnershipClaim>,
        /// The disputes to adjudicate, claims by digest.
        disputes: Vec<DisputeRef>,
    },
    /// Uploads claim bodies into the judge's content cache without
    /// resolving anything.
    Payload {
        /// The claim bodies to cache.
        claims: Vec<OwnershipClaim>,
    },
    /// Lists the ids of every registered model, sorted.
    ListModels,
    /// Removes a model from the registry.
    Deregister {
        /// Registry id to remove.
        model_id: String,
    },
    /// Asks for per-tenant accounting. An authenticated tenant receives
    /// its own row only; on a judge running without keys the anonymous
    /// caller sees every namespace.
    Stats,
}

/// The judge's answer to one [`Request`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong {
        /// Protocol version the judge speaks.
        protocol_version: u16,
        /// Artefact format version the judge reads and writes.
        format_version: u16,
        /// Number of models currently registered.
        models_registered: u64,
        /// Number of claim bodies currently in the content cache.
        claims_cached: u64,
    },
    /// Answer to [`Request::RegisterModel`] / [`Request::RegisterModelRef`].
    Registered {
        /// The id the model is now reachable under.
        model_id: String,
        /// Tree count of the registered model (sanity echo).
        num_trees: u64,
        /// Content digest the judge computed for the model — the handle
        /// for later [`Request::RegisterModelRef`] calls. A client that
        /// computes digests locally can cross-check its own value against
        /// this echo.
        digest: PayloadDigest,
    },
    /// Answer to [`Request::Resolve`].
    Resolved {
        /// The verification verdict.
        report: VerificationReport,
    },
    /// Answer to [`Request::ResolveDocket`] / [`Request::ResolveDocketRef`].
    Docket {
        /// One verdict per dispute, in input order.
        verdicts: Vec<DocketVerdict>,
    },
    /// The request referenced content the judge does not hold: the caller
    /// should upload the named bodies and retry. Never a partial answer —
    /// a docket with any unresolvable digest performs no resolution work.
    NeedPayload {
        /// The digests the judge could not resolve, deduplicated, in first
        /// reference order.
        digests: Vec<PayloadDigest>,
    },
    /// Answer to [`Request::Payload`].
    PayloadStored {
        /// Digest of each uploaded claim, in upload order (computed by the
        /// judge from the received bytes).
        digests: Vec<PayloadDigest>,
    },
    /// Answer to [`Request::ListModels`].
    Models {
        /// Sorted ids of every registered model.
        model_ids: Vec<String>,
    },
    /// Answer to [`Request::Deregister`].
    Deregistered {
        /// The id that was removed.
        model_id: String,
        /// Whether the id was registered before the request.
        existed: bool,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// One row per visible tenant, sorted by tenant id.
        tenants: Vec<crate::tenant::TenantStatsEntry>,
    },
    /// The request could not be served at all.
    Error {
        /// What went wrong, in a structured form.
        fault: WireFault,
    },
}

/// One verdict of a [`Response::Docket`]: the wire rendering of the
/// per-dispute `WatermarkResult<VerificationReport>` that
/// `DisputeService::resolve_many` produces in process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DocketVerdict {
    /// The dispute was adjudicated.
    Report(VerificationReport),
    /// The dispute named a model the judge does not know.
    UnknownModel {
        /// The model id the claim was filed against.
        model_id: String,
    },
    /// Any other failure, rendered as text (forward-compatible catch-all).
    Failed {
        /// The rendered error message.
        message: String,
    },
}

impl DocketVerdict {
    /// Wire rendering of an in-process verdict.
    pub fn from_result(result: WatermarkResult<VerificationReport>) -> Self {
        match result {
            Ok(report) => DocketVerdict::Report(report),
            Err(WatermarkError::UnknownModel { model_id }) => DocketVerdict::UnknownModel { model_id },
            Err(other) => DocketVerdict::Failed {
                message: other.to_string(),
            },
        }
    }

    /// Reconstructs the in-process verdict on the client side. Structured
    /// variants round-trip exactly; [`DocketVerdict::Failed`] surfaces as
    /// [`WatermarkError::Remote`].
    pub fn into_result(self) -> WatermarkResult<VerificationReport> {
        match self {
            DocketVerdict::Report(report) => Ok(report),
            DocketVerdict::UnknownModel { model_id } => Err(WatermarkError::UnknownModel { model_id }),
            DocketVerdict::Failed { message } => Err(WatermarkError::Remote { message }),
        }
    }
}

/// Structured rendering of a request-level failure for [`Response::Error`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireFault {
    /// The request named a model the judge does not know.
    UnknownModel {
        /// The unknown registry id.
        model_id: String,
    },
    /// The docket exceeded the judge's configured cap and was refused
    /// whole.
    DocketTooLarge {
        /// Number of disputes in the refused docket.
        size: u64,
        /// The judge's cap.
        max: u64,
    },
    /// The frame decoded but its content violated the protocol.
    BadRequest {
        /// What was wrong.
        detail: String,
    },
    /// The peer's frame announced a protocol version this judge does not
    /// speak.
    UnsupportedProtocolVersion {
        /// Version announced by the peer.
        found: u16,
        /// Version the judge speaks.
        supported: u16,
    },
    /// The peer's frame announced a payload beyond the judge's cap.
    FrameTooLarge {
        /// Announced payload size in bytes.
        size: u64,
        /// The judge's cap in bytes.
        max: u64,
    },
    /// The judge failed internally while serving a well-formed request.
    Internal {
        /// The rendered error message.
        detail: String,
    },
    /// The frame failed authentication (unknown tenant, bad tag, replayed
    /// sequence, or an anonymous frame on a keyed judge).
    AuthFailed {
        /// What failed, coarsely.
        detail: String,
    },
    /// The request crossed a tenant boundary.
    Forbidden {
        /// What was refused.
        detail: String,
    },
    /// A per-tenant quota would have been exceeded; nothing was allocated
    /// or resolved.
    QuotaExceeded {
        /// The quota axis that was hit.
        resource: String,
        /// Usage the request would have reached.
        used: u64,
        /// The configured per-tenant limit.
        limit: u64,
    },
}

impl WireFault {
    /// Wire rendering of a server-side error.
    pub fn from_error(err: &WatermarkError) -> Self {
        match err {
            WatermarkError::UnknownModel { model_id } => WireFault::UnknownModel {
                model_id: model_id.clone(),
            },
            WatermarkError::DocketTooLarge { size, max } => WireFault::DocketTooLarge {
                size: *size as u64,
                max: *max as u64,
            },
            WatermarkError::ProtocolViolation { detail } => WireFault::BadRequest {
                detail: detail.clone(),
            },
            WatermarkError::UnsupportedProtocolVersion { found, supported } => {
                WireFault::UnsupportedProtocolVersion {
                    found: *found,
                    supported: *supported,
                }
            }
            WatermarkError::FrameTooLarge { size, max } => WireFault::FrameTooLarge {
                size: *size,
                max: *max,
            },
            WatermarkError::AuthenticationFailed { detail } => WireFault::AuthFailed {
                detail: detail.clone(),
            },
            WatermarkError::Forbidden { detail } => WireFault::Forbidden {
                detail: detail.clone(),
            },
            WatermarkError::QuotaExceeded {
                resource,
                used,
                limit,
            } => WireFault::QuotaExceeded {
                resource: resource.clone(),
                used: *used,
                limit: *limit,
            },
            other => WireFault::Internal {
                detail: other.to_string(),
            },
        }
    }

    /// Reconstructs the typed error on the client side. Structured faults
    /// round-trip exactly; [`WireFault::Internal`] surfaces as
    /// [`WatermarkError::Remote`].
    pub fn into_error(self) -> WatermarkError {
        match self {
            WireFault::UnknownModel { model_id } => WatermarkError::UnknownModel { model_id },
            WireFault::DocketTooLarge { size, max } => WatermarkError::DocketTooLarge {
                size: size as usize,
                max: max as usize,
            },
            WireFault::BadRequest { detail } => WatermarkError::ProtocolViolation { detail },
            WireFault::UnsupportedProtocolVersion { found, supported } => {
                WatermarkError::UnsupportedProtocolVersion { found, supported }
            }
            WireFault::FrameTooLarge { size, max } => WatermarkError::FrameTooLarge { size, max },
            WireFault::Internal { detail } => WatermarkError::Remote { message: detail },
            WireFault::AuthFailed { detail } => WatermarkError::AuthenticationFailed { detail },
            WireFault::Forbidden { detail } => WatermarkError::Forbidden { detail },
            WireFault::QuotaExceeded {
                resource,
                used,
                limit,
            } => WatermarkError::QuotaExceeded {
                resource,
                used,
                limit,
            },
        }
    }
}

/// The parsed fixed-size part of one v4 frame: everything the receiver
/// knows before (and about) the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The sender's correlation id, echoed on the response.
    pub correlation_id: u64,
    /// Per-connection sequence number (0 on anonymous frames).
    pub sequence: u64,
    /// Raw zero-padded tenant field (all-zero = anonymous).
    pub tenant: [u8; TENANT_FIELD_BYTES],
    /// Truncated HMAC tag (all-zero on anonymous frames).
    pub tag: [u8; TAG_BYTES],
    /// Announced payload length in bytes.
    pub announced: usize,
}

impl FrameHeader {
    /// Whether the frame carries no authentication fields at all.
    pub fn is_anonymous(&self) -> bool {
        self.sequence == 0 && self.tenant.iter().all(|&b| b == 0) && self.tag.iter().all(|&b| b == 0)
    }
}

/// Encodes one message into a complete *anonymous* frame (header +
/// payload) carrying `correlation_id`: sequence, tenant and tag fields
/// are all zero. Fails with [`WatermarkError::FrameTooLarge`] if the
/// payload exceeds what the u32 length prefix can announce — the
/// sender-side mirror of the receiver's cap, surfaced as a typed error
/// rather than a panic.
pub fn encode_frame<T: Serialize + ?Sized>(
    correlation_id: u64,
    message: &T,
) -> WatermarkResult<Vec<u8>> {
    let payload = persist::encode_value_bytes(&message.to_value());
    assemble_frame(
        correlation_id,
        0,
        &[0u8; TENANT_FIELD_BYTES],
        &[0u8; TAG_BYTES],
        &payload,
    )
}

/// Encodes one message into an *authenticated* frame: the tenant id and
/// `sequence` travel in the header and the tag is computed over the full
/// frame transcript under `key` (see [`crate::tenant::frame_tag`]).
pub fn encode_frame_auth<T: Serialize + ?Sized>(
    correlation_id: u64,
    message: &T,
    tenant: &crate::tenant::TenantId,
    sequence: u64,
    key: &[u8],
) -> WatermarkResult<Vec<u8>> {
    let payload = persist::encode_value_bytes(&message.to_value());
    let tenant_field = tenant.field();
    let tag = crate::tenant::frame_tag(key, correlation_id, sequence, &tenant_field, &payload);
    assemble_frame(correlation_id, sequence, &tenant_field, &tag, &payload)
}

fn assemble_frame(
    correlation_id: u64,
    sequence: u64,
    tenant_field: &[u8; TENANT_FIELD_BYTES],
    tag: &[u8; TAG_BYTES],
    payload: &[u8],
) -> WatermarkResult<Vec<u8>> {
    if u32::try_from(payload.len()).is_err() {
        return Err(WatermarkError::FrameTooLarge {
            size: payload.len() as u64,
            max: u64::from(u32::MAX),
        });
    }
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    frame.extend_from_slice(PROTO_MAGIC);
    frame.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    frame.extend_from_slice(&correlation_id.to_le_bytes());
    frame.extend_from_slice(&sequence.to_le_bytes());
    frame.extend_from_slice(tenant_field);
    frame.extend_from_slice(tag);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    Ok(frame)
}

/// Decodes one message from a complete frame produced by [`encode_frame`],
/// validating magic, version, the length prefix (against `max_frame_bytes`)
/// and the absence of trailing bytes. Returns the frame's correlation id
/// with the message.
pub fn decode_frame<T: Deserialize>(frame: &[u8], max_frame_bytes: usize) -> WatermarkResult<(u64, T)> {
    if frame.len() >= FRAME_PRELUDE_BYTES {
        check_prelude(&frame[..FRAME_PRELUDE_BYTES])?;
    }
    if frame.len() < FRAME_HEADER_BYTES {
        return Err(violation(format!(
            "frame of {} bytes is shorter than the {FRAME_HEADER_BYTES}-byte header",
            frame.len()
        )));
    }
    let (header, payload) = frame.split_at(FRAME_HEADER_BYTES);
    let header = check_header(header, max_frame_bytes)?;
    if payload.len() != header.announced {
        return Err(violation(format!(
            "frame announces a {}-byte payload but carries {} bytes",
            header.announced,
            payload.len()
        )));
    }
    Ok((header.correlation_id, decode_payload(payload)?))
}

/// Decodes a message from raw payload bytes (the part after the header, as
/// returned by [`read_frame`]).
pub fn decode_payload<T: Deserialize>(payload: &[u8]) -> WatermarkResult<T> {
    let value = persist::decode_value_bytes(payload).map_err(|err| violation(err.to_string()))?;
    T::from_value(&value).map_err(|err| violation(format!("payload does not decode: {err}")))
}

/// Validates the magic + version prelude of a frame header.
pub fn check_prelude(prelude: &[u8]) -> WatermarkResult<()> {
    debug_assert!(prelude.len() >= FRAME_PRELUDE_BYTES);
    if &prelude[..4] != PROTO_MAGIC {
        return Err(violation(format!(
            "bad frame magic {:02x?} (expected \"WDTP\")",
            &prelude[..4]
        )));
    }
    let version = u16::from_le_bytes([prelude[4], prelude[5]]);
    if version != PROTOCOL_VERSION {
        return Err(WatermarkError::UnsupportedProtocolVersion {
            found: version,
            supported: PROTOCOL_VERSION,
        });
    }
    Ok(())
}

/// Validates a full frame header, returning its parsed fields (including
/// the authentication fields a keyed receiver verifies once the payload
/// has arrived).
pub fn check_header(header: &[u8], max_frame_bytes: usize) -> WatermarkResult<FrameHeader> {
    check_prelude(&header[..FRAME_PRELUDE_BYTES])?;
    let correlation_id = u64::from_le_bytes(header[6..14].try_into().expect("header slice is 8 bytes"));
    let sequence = u64::from_le_bytes(header[14..22].try_into().expect("header slice is 8 bytes"));
    let tenant: [u8; TENANT_FIELD_BYTES] = header[22..22 + TENANT_FIELD_BYTES]
        .try_into()
        .expect("header slice is 16 bytes");
    let tag: [u8; TAG_BYTES] = header[38..38 + TAG_BYTES].try_into().expect("header slice is 16 bytes");
    let announced = u32::from_le_bytes(
        header[LENGTH_OFFSET..FRAME_HEADER_BYTES]
            .try_into()
            .expect("header slice is 4 bytes"),
    ) as usize;
    if announced > max_frame_bytes {
        return Err(WatermarkError::FrameTooLarge {
            size: announced as u64,
            max: max_frame_bytes as u64,
        });
    }
    Ok(FrameHeader {
        correlation_id,
        sequence,
        tenant,
        tag,
        announced,
    })
}

/// Writes one message as a frame carrying `correlation_id` to `writer`
/// (single `write_all`, so a frame is never interleaved when the writer is
/// shared carefully).
pub fn write_message<T: Serialize + ?Sized, W: Write>(
    writer: &mut W,
    correlation_id: u64,
    message: &T,
) -> WatermarkResult<()> {
    let frame = encode_frame(correlation_id, message)?;
    writer.write_all(&frame).map_err(io_violation)?;
    writer.flush().map_err(io_violation)
}

/// Reads one frame from `reader` and returns its parsed header and
/// payload bytes.
///
/// Returns `Ok(None)` on a clean end-of-stream (the peer closed between
/// frames); a stream that ends *inside* a frame — a half-closed socket
/// mid-message — is a [`WatermarkError::ProtocolViolation`]. Magic and
/// version are validated as soon as the prelude arrives (so a v1 peer is
/// refused with a version error before its shorter header runs out), the
/// announced payload length is validated against `max_frame_bytes` before
/// any allocation, and the read buffer grows with the bytes actually
/// received rather than trusting the prefix. Authentication fields are
/// parsed but *not* verified here — a keyed receiver runs
/// [`crate::tenant::KeyRing::verify_frame`] on the result.
pub fn read_frame<R: Read>(
    reader: &mut R,
    max_frame_bytes: usize,
) -> WatermarkResult<Option<(FrameHeader, Vec<u8>)>> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    let mut filled = 0usize;
    let mut prelude_checked = false;
    while filled < header.len() {
        let n = match reader.read(&mut header[filled..]) {
            Ok(n) => n,
            // Retry on signal interruption, as `read_to_end` does for the
            // payload half: a mid-header signal is not a protocol event.
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(io_violation(err)),
        };
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(violation(format!(
                "stream closed after {filled} of {FRAME_HEADER_BYTES} header bytes"
            )));
        }
        filled += n;
        if !prelude_checked && filled >= FRAME_PRELUDE_BYTES {
            check_prelude(&header[..FRAME_PRELUDE_BYTES])?;
            prelude_checked = true;
        }
    }
    let header = check_header(&header, max_frame_bytes)?;
    let announced = header.announced;
    // Allocation cap: reserve at most 64 KiB up front; everything past that
    // is grown by `read_to_end` as bytes actually arrive, so a hostile
    // length prefix below the cap still cannot reserve more memory than the
    // peer is willing to send.
    let mut payload = Vec::with_capacity(announced.min(64 << 10));
    let read = reader.take(announced as u64).read_to_end(&mut payload).map_err(io_violation)?;
    if read != announced {
        return Err(violation(format!(
            "stream closed after {read} of {announced} payload bytes"
        )));
    }
    Ok(Some((header, payload)))
}

/// Reads one message from `reader`, returning its correlation id.
/// End-of-stream before any byte yields `Ok(None)`.
pub fn read_message<T: Deserialize, R: Read>(
    reader: &mut R,
    max_frame_bytes: usize,
) -> WatermarkResult<Option<(u64, T)>> {
    match read_frame(reader, max_frame_bytes)? {
        Some((header, payload)) => Ok(Some((header.correlation_id, decode_payload(&payload)?))),
        None => Ok(None),
    }
}

fn violation(detail: impl Into<String>) -> WatermarkError {
    WatermarkError::ProtocolViolation {
        detail: detail.into(),
    }
}

/// Socket-level failures (timeout, reset, EPIPE) are *transport* errors,
/// not protocol violations: nothing the peer sent was wrong. They surface
/// as [`WatermarkError::Io`] so a judge answering best-effort renders them
/// as an internal fault rather than blaming the peer's request.
fn io_violation(err: std::io::Error) -> WatermarkError {
    WatermarkError::Io {
        path: "socket".to_string(),
        message: err.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::Signature;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wdte_data::SyntheticSpec;
    use wdte_trees::ForestParams;

    fn sample_claim() -> OwnershipClaim {
        let mut rng = SmallRng::seed_from_u64(9);
        let dataset = SyntheticSpec::breast_cancer_like().scaled(0.2).generate(&mut rng);
        let (trigger, test) = dataset.split_train_test(0.2, &mut rng);
        OwnershipClaim::new(Signature::random(8, 0.5, &mut rng), trigger, test)
    }

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(message: &T) {
        let frame = encode_frame(7, message).unwrap();
        assert_eq!(&frame[..4], PROTO_MAGIC);
        let (corr, decoded) = decode_frame::<T>(&frame, DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(corr, 7);
        assert_eq!(&decoded, message);
        // Streamed path: read_frame + decode_payload see the same message.
        let mut reader = std::io::Cursor::new(frame);
        let (header, payload) = read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).unwrap().unwrap();
        assert_eq!(header.correlation_id, 7);
        assert!(header.is_anonymous(), "plain encode_frame must stay anonymous");
        let streamed: T = decode_payload(&payload).unwrap();
        assert_eq!(&streamed, message);
        // And the stream is exhausted: the next read is a clean EOF.
        assert!(read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).unwrap().is_none());
    }

    #[test]
    fn every_request_kind_round_trips() {
        let mut rng = SmallRng::seed_from_u64(10);
        let dataset = SyntheticSpec::breast_cancer_like().scaled(0.2).generate(&mut rng);
        let model = RandomForest::fit(&dataset, &ForestParams::with_trees(4), &mut rng);
        let digest = PayloadDigest::of_model(&model);
        let claim = sample_claim();
        round_trip(&Request::Ping);
        round_trip(&Request::RegisterModel {
            model_id: "m".into(),
            model,
        });
        round_trip(&Request::RegisterModelRef {
            model_id: "m2".into(),
            digest,
        });
        round_trip(&Request::Resolve {
            model_id: "m".into(),
            claim: claim.clone(),
        });
        round_trip(&Request::ResolveDocket {
            disputes: vec![Dispute::new("m", claim.clone())],
        });
        round_trip(&Request::ResolveDocketRef {
            bodies: vec![claim.clone()],
            disputes: vec![DisputeRef::new("m", PayloadDigest::of_claim(&claim))],
        });
        round_trip(&Request::Payload { claims: vec![claim] });
        round_trip(&Request::ListModels);
        round_trip(&Request::Deregister { model_id: "m".into() });
        round_trip(&Request::Stats);
    }

    #[test]
    fn every_response_kind_round_trips() {
        let report = VerificationReport {
            verified: true,
            instance_matches: vec![true, false, true],
            bit_agreement: 0.75,
            queries_issued: 42,
        };
        let digest = PayloadDigest { hi: 1, lo: 2 };
        round_trip(&Response::Pong {
            protocol_version: PROTOCOL_VERSION,
            format_version: persist::FORMAT_VERSION,
            models_registered: 3,
            claims_cached: 9,
        });
        round_trip(&Response::Registered {
            model_id: "m".into(),
            num_trees: 16,
            digest,
        });
        round_trip(&Response::Resolved {
            report: report.clone(),
        });
        round_trip(&Response::Docket {
            verdicts: vec![
                DocketVerdict::Report(report),
                DocketVerdict::UnknownModel {
                    model_id: "ghost".into(),
                },
                DocketVerdict::Failed {
                    message: "boom".into(),
                },
            ],
        });
        round_trip(&Response::NeedPayload {
            digests: vec![digest, PayloadDigest { hi: 3, lo: 4 }],
        });
        round_trip(&Response::PayloadStored {
            digests: vec![digest],
        });
        round_trip(&Response::Models {
            model_ids: vec!["a".into(), "b".into()],
        });
        round_trip(&Response::Deregistered {
            model_id: "m".into(),
            existed: false,
        });
        round_trip(&Response::Stats {
            tenants: vec![crate::tenant::TenantStatsEntry {
                tenant: "alice".into(),
                models: 2,
                dockets: 10,
                claims: 640,
                cache_hits: 600,
                cache_misses: 40,
                evictions: 1,
                auth_failures: 3,
                claim_bytes: 1 << 20,
                in_flight: 4,
            }],
        });
        round_trip(&Response::Error {
            fault: WireFault::DocketTooLarge { size: 1000, max: 64 },
        });
        round_trip(&Response::Error {
            fault: WireFault::AuthFailed {
                detail: "bad tag".into(),
            },
        });
        round_trip(&Response::Error {
            fault: WireFault::QuotaExceeded {
                resource: "models".into(),
                used: 3,
                limit: 2,
            },
        });
    }

    #[test]
    fn correlation_ids_round_trip_the_full_u64_range() {
        for corr in [0u64, 1, u64::from(u32::MAX) + 1, u64::MAX] {
            let frame = encode_frame(corr, &Request::Ping).unwrap();
            let (decoded, _) = decode_frame::<Request>(&frame, DEFAULT_MAX_FRAME_BYTES).unwrap();
            assert_eq!(decoded, corr);
        }
    }

    #[test]
    fn bad_magic_is_a_protocol_violation() {
        let mut frame = encode_frame(1, &Request::Ping).unwrap();
        frame[..4].copy_from_slice(b"WDTE"); // the *artefact* magic
        assert!(matches!(
            decode_frame::<Request>(&frame, DEFAULT_MAX_FRAME_BYTES).unwrap_err(),
            WatermarkError::ProtocolViolation { .. }
        ));
    }

    #[test]
    fn future_version_is_a_typed_error() {
        let mut frame = encode_frame(1, &Request::Ping).unwrap();
        frame[4] = 0xFF;
        frame[5] = 0x7F;
        match decode_frame::<Request>(&frame, DEFAULT_MAX_FRAME_BYTES).unwrap_err() {
            WatermarkError::UnsupportedProtocolVersion { found, supported } => {
                assert_eq!(found, 0x7FFF);
                assert_eq!(supported, PROTOCOL_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    /// A v1 frame (10-byte header: magic, version 1, length) must be
    /// refused as an unsupported *version* — on the prelude alone — rather
    /// than misparsed or reported as truncation, even though its header is
    /// shorter than the v2 header.
    #[test]
    fn v1_frames_are_refused_with_a_version_error() {
        let mut v1_frame = Vec::new();
        v1_frame.extend_from_slice(PROTO_MAGIC);
        v1_frame.extend_from_slice(&1u16.to_le_bytes());
        v1_frame.extend_from_slice(&4u32.to_le_bytes());
        v1_frame.extend_from_slice(&[0, 0, 0, 0]);
        let mut reader = std::io::Cursor::new(&v1_frame);
        match read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).unwrap_err() {
            WatermarkError::UnsupportedProtocolVersion { found, supported } => {
                assert_eq!(found, 1);
                assert_eq!(supported, PROTOCOL_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
        // The whole-frame decoder agrees, even though the v1 frame is
        // shorter than a v2 header.
        assert!(v1_frame.len() < FRAME_HEADER_BYTES);
        assert!(matches!(
            decode_frame::<Request>(&v1_frame, DEFAULT_MAX_FRAME_BYTES).unwrap_err(),
            WatermarkError::UnsupportedProtocolVersion { .. }
        ));
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_allocating() {
        let mut frame = encode_frame(1, &Request::Ping).unwrap();
        frame[LENGTH_OFFSET..FRAME_HEADER_BYTES].copy_from_slice(&u32::MAX.to_le_bytes());
        match decode_frame::<Request>(&frame, DEFAULT_MAX_FRAME_BYTES).unwrap_err() {
            WatermarkError::FrameTooLarge { size, max } => {
                assert_eq!(size, u64::from(u32::MAX));
                assert_eq!(max, DEFAULT_MAX_FRAME_BYTES as u64);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        // The streamed reader refuses on the header alone, without waiting
        // for (or allocating) the announced payload.
        let mut reader = std::io::Cursor::new(&frame[..FRAME_HEADER_BYTES]);
        assert!(matches!(
            read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).unwrap_err(),
            WatermarkError::FrameTooLarge { .. }
        ));
    }

    #[test]
    fn truncated_frames_are_protocol_violations() {
        let frame = encode_frame(
            1,
            &Request::Resolve {
                model_id: "m".into(),
                claim: sample_claim(),
            },
        )
        .unwrap();
        for cut in [
            1,
            4,
            FRAME_HEADER_BYTES - 1,
            FRAME_HEADER_BYTES + 1,
            frame.len() - 1,
        ] {
            let mut reader = std::io::Cursor::new(&frame[..cut]);
            assert!(
                matches!(
                    read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).unwrap_err(),
                    WatermarkError::ProtocolViolation { .. }
                ),
                "cut at {cut} bytes"
            );
        }
    }

    #[test]
    fn trailing_bytes_inside_a_frame_are_rejected() {
        let mut frame = encode_frame(1, &Request::Ping).unwrap();
        // Grow the payload and fix up the length prefix so the frame itself
        // is well-formed — the *payload* now has trailing bytes.
        frame.push(0);
        let announced = (frame.len() - FRAME_HEADER_BYTES) as u32;
        frame[LENGTH_OFFSET..FRAME_HEADER_BYTES].copy_from_slice(&announced.to_le_bytes());
        assert!(matches!(
            decode_frame::<Request>(&frame, DEFAULT_MAX_FRAME_BYTES).unwrap_err(),
            WatermarkError::ProtocolViolation { .. }
        ));
    }

    #[test]
    fn authenticated_frames_verify_and_refuse_tampering_and_replay() {
        use crate::tenant::{KeyRing, TenantId};
        let tenant = TenantId::new("alice").unwrap();
        let frame = encode_frame_auth(9, &Request::Ping, &tenant, 5, b"s3cret").unwrap();
        let mut reader = std::io::Cursor::new(&frame);
        let (header, payload) = read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).unwrap().unwrap();
        assert!(!header.is_anonymous());
        assert_eq!(header.correlation_id, 9);
        assert_eq!(header.sequence, 5);
        let mut ring = KeyRing::new();
        ring.insert(tenant.clone(), b"s3cret".to_vec());
        assert_eq!(ring.verify_frame(&header, &payload, 4).unwrap(), tenant);
        // The payload decodes exactly as an anonymous frame's would.
        let decoded: Request = decode_payload(&payload).unwrap();
        assert_eq!(decoded, Request::Ping);
        // A byte-identical replay is refused once the sequence is spent.
        assert!(matches!(
            ring.verify_frame(&header, &payload, 5).unwrap_err(),
            WatermarkError::AuthenticationFailed { .. }
        ));
        // Tampering with the payload breaks the tag.
        let mut tampered = payload.clone();
        tampered[0] ^= 1;
        assert!(matches!(
            ring.verify_frame(&header, &tampered, 4).unwrap_err(),
            WatermarkError::AuthenticationFailed { .. }
        ));
        // A key the judge does not hold breaks the tag too.
        let mut wrong_ring = KeyRing::new();
        wrong_ring.insert(tenant, b"other".to_vec());
        assert!(matches!(
            wrong_ring.verify_frame(&header, &payload, 4).unwrap_err(),
            WatermarkError::AuthenticationFailed { .. }
        ));
        // An anonymous frame is refused outright by a keyed receiver.
        let anon = encode_frame(9, &Request::Ping).unwrap();
        let mut reader = std::io::Cursor::new(&anon);
        let (anon_header, anon_payload) =
            read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES).unwrap().unwrap();
        assert!(matches!(
            wrong_ring.verify_frame(&anon_header, &anon_payload, 0).unwrap_err(),
            WatermarkError::AuthenticationFailed { .. }
        ));
    }

    #[test]
    fn wrong_message_shape_is_a_protocol_violation() {
        // A valid frame carrying a Response where a Request is expected.
        let frame = encode_frame(1, &Response::Models { model_ids: vec![] }).unwrap();
        assert!(matches!(
            decode_frame::<Request>(&frame, DEFAULT_MAX_FRAME_BYTES).unwrap_err(),
            WatermarkError::ProtocolViolation { .. }
        ));
    }

    #[test]
    fn claim_digests_cover_the_full_claim_content() {
        let claim = sample_claim();
        // Deterministic and equal for equal content.
        assert_eq!(
            PayloadDigest::of_claim(&claim),
            PayloadDigest::of_claim(&claim.clone())
        );
        // Sensitive to every component — including the test set, which
        // `disguise_seed` deliberately skips.
        let base = PayloadDigest::of_claim(&claim);
        let mut other_signature = claim.clone();
        other_signature.signature =
            Signature::from_bits(claim.signature.bits().iter().map(|&b| !b).collect());
        assert_ne!(PayloadDigest::of_claim(&other_signature), base);
        let mut other_trigger = claim.clone();
        other_trigger.trigger_set = claim.trigger_set.with_flipped_labels();
        assert_ne!(PayloadDigest::of_claim(&other_trigger), base);
        let mut other_test = claim.clone();
        other_test.test_set = claim.test_set.with_flipped_labels();
        assert_ne!(
            PayloadDigest::of_claim(&other_test),
            base,
            "the content digest must cover the test set"
        );
        // Domain separation: a claim digest never equals a model digest.
        let mut rng = SmallRng::seed_from_u64(11);
        let dataset = SyntheticSpec::breast_cancer_like().scaled(0.2).generate(&mut rng);
        let model = RandomForest::fit(&dataset, &ForestParams::with_trees(2), &mut rng);
        assert_ne!(PayloadDigest::of_model(&model), base);
    }

    #[test]
    fn model_digests_are_content_sensitive() {
        let mut rng = SmallRng::seed_from_u64(12);
        let dataset = SyntheticSpec::breast_cancer_like().scaled(0.2).generate(&mut rng);
        let model_a = RandomForest::fit(&dataset, &ForestParams::with_trees(3), &mut rng);
        let model_b = RandomForest::fit(&dataset, &ForestParams::with_trees(3), &mut rng);
        assert_eq!(
            PayloadDigest::of_model(&model_a),
            PayloadDigest::of_model(&model_a.clone())
        );
        assert_ne!(
            PayloadDigest::of_model(&model_a),
            PayloadDigest::of_model(&model_b),
            "independently trained forests must not share a digest"
        );
    }

    #[test]
    fn verdict_and_fault_conversions_round_trip() {
        let report = VerificationReport {
            verified: false,
            instance_matches: vec![false],
            bit_agreement: 0.5,
            queries_issued: 7,
        };
        assert_eq!(
            DocketVerdict::from_result(Ok(report.clone())).into_result().unwrap(),
            report
        );
        let err = WatermarkError::UnknownModel { model_id: "x".into() };
        assert_eq!(
            DocketVerdict::from_result(Err(err.clone())).into_result().unwrap_err(),
            err
        );
        for structured in [
            WatermarkError::DocketTooLarge { size: 100, max: 10 },
            WatermarkError::ProtocolViolation {
                detail: "junk".into(),
            },
            WatermarkError::UnsupportedProtocolVersion {
                found: 9,
                supported: 1,
            },
            WatermarkError::FrameTooLarge {
                size: 1 << 40,
                max: 1 << 28,
            },
            WatermarkError::AuthenticationFailed {
                detail: "bad tag".into(),
            },
            WatermarkError::Forbidden {
                detail: "model `m` belongs to another tenant".into(),
            },
            WatermarkError::QuotaExceeded {
                resource: "docket".into(),
                used: 100,
                limit: 64,
            },
        ] {
            assert_eq!(WireFault::from_error(&structured).into_error(), structured);
        }
        // Unstructured errors degrade to Remote but keep the message.
        let odd = WatermarkError::EmptyTrainingSet;
        match WireFault::from_error(&odd).into_error() {
            WatermarkError::Remote { message } => assert_eq!(message, odd.to_string()),
            other => panic!("expected Remote, got {other:?}"),
        }
    }
}
