//! Watermark detection attacks (Section 4.2.1, Table 2).
//!
//! The attacker has white-box access to the stolen model and tries to
//! reconstruct the signature from the structure of the trees: intuitively,
//! trees forced to misclassify the trigger set (bit 1) might need to grow
//! larger than the others. The paper evaluates two strategies based on the
//! per-tree depth or leaf count:
//!
//! 1. **Mean ± std bands** — trees below `mean − std` are guessed as bit 0,
//!    trees above `mean + std` as bit 1, everything in between is left
//!    *uncertain*.
//! 2. **Sharp mean threshold** — trees at or below the mean are guessed as
//!    bit 0, the rest as bit 1 (no uncertainty).

use crate::signature::Signature;
use serde::{Deserialize, Serialize};
use wdte_data::mean_std;
use wdte_trees::{CompiledForest, RandomForest, TreeStats};

/// White-box access to the structural quantities the detection attacker
/// inspects. Implemented both for the pointer-tree [`RandomForest`] and
/// for [`CompiledForest`], so a detection scan can run directly against a
/// compiled artefact loaded from disk.
pub trait StructureOracle {
    /// Structural statistics of every tree, in tree order.
    fn tree_stats(&self) -> Vec<TreeStats>;
}

impl StructureOracle for RandomForest {
    fn tree_stats(&self) -> Vec<TreeStats> {
        RandomForest::tree_stats(self)
    }
}

impl StructureOracle for CompiledForest {
    fn tree_stats(&self) -> Vec<TreeStats> {
        CompiledForest::tree_stats(self)
    }
}

/// Which structural quantity the attacker inspects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectionFeature {
    /// Per-tree depth.
    Depth,
    /// Per-tree number of leaves.
    Leaves,
}

impl DetectionFeature {
    /// Human-readable name used by the Table 2 printer.
    pub fn name(&self) -> &'static str {
        match self {
            DetectionFeature::Depth => "Depth",
            DetectionFeature::Leaves => "#leaves",
        }
    }
}

/// Which guessing strategy the attacker uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectionStrategy {
    /// Strategy 1: mean ± std bands with an uncertain middle region.
    MeanStdBands,
    /// Strategy 2: sharp threshold at the mean, no uncertainty.
    MeanThreshold,
}

/// Per-tree guesses produced by a detection attack: `Some(bit)` or `None`
/// for uncertain trees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionGuess {
    /// Structural quantity inspected.
    pub feature: DetectionFeature,
    /// Strategy used.
    pub strategy: DetectionStrategy,
    /// Mean of the inspected quantity over the ensemble.
    pub mean: f64,
    /// Standard deviation of the inspected quantity over the ensemble.
    pub std: f64,
    /// Per-tree guesses (index-aligned with the ensemble).
    pub guesses: Vec<Option<bool>>,
}

/// Aggregated detection result against the true signature; one row/color of
/// Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// Structural quantity inspected.
    pub feature: DetectionFeature,
    /// Strategy used.
    pub strategy: DetectionStrategy,
    /// Number of trees whose guessed bit matches the signature.
    pub correct: usize,
    /// Number of trees whose guessed bit is wrong.
    pub wrong: usize,
    /// Number of trees left uncertain.
    pub uncertain: usize,
    /// Mean of the inspected quantity.
    pub mean: f64,
    /// Standard deviation of the inspected quantity.
    pub std: f64,
}

impl DetectionReport {
    /// Accuracy over the trees the attacker dared to guess
    /// (`correct / (correct + wrong)`); `0.5` when nothing was guessed.
    pub fn guessed_accuracy(&self) -> f64 {
        let guessed = self.correct + self.wrong;
        if guessed == 0 {
            0.5
        } else {
            self.correct as f64 / guessed as f64
        }
    }
}

/// Extracts the inspected structural quantity for every tree.
pub fn structural_values<M: StructureOracle + ?Sized>(model: &M, feature: DetectionFeature) -> Vec<f64> {
    model
        .tree_stats()
        .iter()
        .map(|s| match feature {
            DetectionFeature::Depth => s.depth as f64,
            DetectionFeature::Leaves => s.leaves as f64,
        })
        .collect()
}

/// Runs a detection attack, producing per-tree bit guesses.
pub fn detect_signature<M: StructureOracle + ?Sized>(
    model: &M,
    feature: DetectionFeature,
    strategy: DetectionStrategy,
) -> DetectionGuess {
    let values = structural_values(model, feature);
    let (mean, std) = mean_std(&values);
    let guesses = values
        .iter()
        .map(|&value| match strategy {
            DetectionStrategy::MeanStdBands => {
                if value < mean - std {
                    Some(false)
                } else if value > mean + std {
                    Some(true)
                } else {
                    None
                }
            }
            DetectionStrategy::MeanThreshold => Some(value > mean),
        })
        .collect();
    DetectionGuess {
        feature,
        strategy,
        mean,
        std,
        guesses,
    }
}

/// Runs a detection attack and scores it against the true signature.
pub fn evaluate_detection<M: StructureOracle + ?Sized>(
    model: &M,
    signature: &Signature,
    feature: DetectionFeature,
    strategy: DetectionStrategy,
) -> DetectionReport {
    let guess = detect_signature(model, feature, strategy);
    let mut correct = 0;
    let mut wrong = 0;
    let mut uncertain = 0;
    for (i, guessed) in guess.guesses.iter().enumerate() {
        match guessed {
            None => uncertain += 1,
            Some(bit) if *bit == signature.bit(i) => correct += 1,
            Some(_) => wrong += 1,
        }
    }
    DetectionReport {
        feature,
        strategy,
        correct,
        wrong,
        uncertain,
        mean: guess.mean,
        std: guess.std,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wdte_data::{Dataset, SyntheticSpec};
    use wdte_trees::{ForestParams, RandomForest, TreeParams};

    fn forest_with_mixed_sizes() -> (RandomForest, Signature) {
        // Build an ensemble where the first half is shallow and the second
        // half is deep, with a signature marking the deep ones as bit 1:
        // a best case for the attacker, used to validate the scoring logic.
        let dataset: Dataset = SyntheticSpec::breast_cancer_like()
            .scaled(0.5)
            .generate(&mut SmallRng::seed_from_u64(50));
        let mut rng = SmallRng::seed_from_u64(51);
        let shallow = RandomForest::fit(
            &dataset,
            &ForestParams {
                num_trees: 4,
                tree: TreeParams::with_max_depth(1),
                ..ForestParams::default()
            },
            &mut rng,
        );
        let deep = RandomForest::fit(
            &dataset,
            &ForestParams {
                num_trees: 4,
                tree: TreeParams::with_max_depth(10),
                ..ForestParams::default()
            },
            &mut rng,
        );
        let mut trees = shallow.trees().to_vec();
        trees.extend(deep.trees().iter().cloned());
        let forest = RandomForest::from_trees(trees);
        let signature = Signature::from_str_bits("00001111").unwrap();
        (forest, signature)
    }

    #[test]
    fn sharp_threshold_identifies_an_obviously_leaky_ensemble() {
        let (forest, signature) = forest_with_mixed_sizes();
        let report = evaluate_detection(
            &forest,
            &signature,
            DetectionFeature::Depth,
            DetectionStrategy::MeanThreshold,
        );
        assert_eq!(report.uncertain, 0);
        assert_eq!(report.correct + report.wrong, 8);
        assert!(
            report.guessed_accuracy() > 0.9,
            "attack should succeed on a deliberately leaky ensemble"
        );
    }

    #[test]
    fn band_strategy_reports_uncertain_trees() {
        let (forest, signature) = forest_with_mixed_sizes();
        let report = evaluate_detection(
            &forest,
            &signature,
            DetectionFeature::Leaves,
            DetectionStrategy::MeanStdBands,
        );
        assert_eq!(report.correct + report.wrong + report.uncertain, 8);
        assert!(report.std > 0.0);
    }

    #[test]
    fn identical_trees_leave_the_band_attacker_fully_uncertain() {
        let dataset = SyntheticSpec::breast_cancer_like()
            .scaled(0.3)
            .generate(&mut SmallRng::seed_from_u64(52));
        let mut rng = SmallRng::seed_from_u64(53);
        // Hard structural cap makes every tree identical in depth and leaves.
        let params = ForestParams {
            num_trees: 6,
            tree: TreeParams {
                max_depth: Some(3),
                max_leaves: Some(8),
                ..TreeParams::default()
            },
            ..ForestParams::default()
        };
        let forest = RandomForest::fit(&dataset, &params, &mut rng);
        let values = structural_values(&forest, DetectionFeature::Depth);
        let (_, std) = wdte_data::mean_std(&values);
        if std == 0.0 {
            let guess =
                detect_signature(&forest, DetectionFeature::Depth, DetectionStrategy::MeanStdBands);
            // With zero variance nothing is strictly below mean-std or above
            // mean+std, so every tree is uncertain.
            assert!(guess.guesses.iter().all(|g| g.is_none()));
        }
    }

    #[test]
    fn detection_on_a_compiled_artefact_matches_the_pointer_model() {
        let (forest, signature) = forest_with_mixed_sizes();
        let compiled = wdte_trees::CompiledForest::compile(&forest);
        for feature in [DetectionFeature::Depth, DetectionFeature::Leaves] {
            for strategy in [DetectionStrategy::MeanStdBands, DetectionStrategy::MeanThreshold] {
                assert_eq!(
                    evaluate_detection(&compiled, &signature, feature, strategy),
                    evaluate_detection(&forest, &signature, feature, strategy),
                );
            }
        }
    }

    #[test]
    fn structural_values_match_tree_stats() {
        let (forest, _) = forest_with_mixed_sizes();
        let depths = structural_values(&forest, DetectionFeature::Depth);
        let leaves = structural_values(&forest, DetectionFeature::Leaves);
        let stats = forest.tree_stats();
        for i in 0..forest.num_trees() {
            assert_eq!(depths[i], stats[i].depth as f64);
            assert_eq!(leaves[i], stats[i].leaves as f64);
        }
    }

    #[test]
    fn feature_names_for_reporting() {
        assert_eq!(DetectionFeature::Depth.name(), "Depth");
        assert_eq!(DetectionFeature::Leaves.name(), "#leaves");
    }
}
