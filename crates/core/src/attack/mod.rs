//! Attack simulations used by the paper's security evaluation:
//! watermark detection, watermark suppression and watermark forgery.

pub mod detection;
pub mod forgery;
pub mod suppression;

pub use detection::{
    detect_signature, evaluate_detection, structural_values, DetectionFeature, DetectionGuess,
    DetectionReport, DetectionStrategy, StructureOracle,
};
pub use forgery::{
    forge_trigger_set, forge_trigger_set_compiled, mean_forged_size, run_forgery_attack, ForgedInstance,
    ForgeryAttackConfig, ForgeryAttackResult,
};
pub use suppression::{evaluate_suppression, suppression_score, SuppressionReport, SuppressionScore};
