//! Watermark forgery attack (Section 4.2.2, Figures 4 and 5).
//!
//! The attacker generates a fake signature `σ'` and tries to assemble a
//! forged trigger set `D'_trigger` on which the stolen model exhibits the
//! output pattern required by `σ'`. Following the paper, the attacker
//! iterates over the test set and, for every instance, asks a constraint
//! solver for a satisfying point whose L∞ distance from the instance is at
//! most `ε` (so the forged set still looks like plausible data). The paper
//! uses Z3 for this; here the dedicated leaf-box solver of `wdte-solver`
//! plays that role.

use crate::signature::Signature;
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use wdte_data::{linf_distance, Dataset, DenseMatrix, Label};
use wdte_solver::{ForgeryQuery, ForgerySolver, LeafIndex, SolverConfig};
use wdte_trees::{CompiledForest, RandomForest};

/// Configuration of the forgery attack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForgeryAttackConfig {
    /// Number of random fake signatures to try (the paper uses 10).
    pub num_fake_signatures: usize,
    /// Fraction of 1 bits in the fake signatures (the paper uses 50%).
    pub ones_fraction: f64,
    /// Maximum allowed L∞ distortion `ε` between a test instance and the
    /// forged instance derived from it.
    pub epsilon: f64,
    /// Budget of the underlying constraint solver, per instance.
    pub solver: SolverConfig,
    /// Optional cap on the number of test instances attempted per
    /// signature (keeps large sweeps tractable); `None` attempts all.
    pub max_instances: Option<usize>,
}

impl Default for ForgeryAttackConfig {
    fn default() -> Self {
        Self {
            num_fake_signatures: 10,
            ones_fraction: 0.5,
            epsilon: 0.3,
            solver: SolverConfig::default(),
            max_instances: None,
        }
    }
}

/// A successfully forged instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForgedInstance {
    /// Index of the test instance the forgery started from.
    pub source_index: usize,
    /// Label of the source test instance (the label the forged trigger
    /// entry claims).
    pub label: Label,
    /// The forged feature vector.
    pub instance: Vec<f64>,
    /// L∞ distance between the forged instance and its source.
    pub distortion: f64,
}

/// Result of the forgery attack for one fake signature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForgeryAttackResult {
    /// The fake signature used.
    pub fake_signature: Signature,
    /// Distortion bound used.
    pub epsilon: f64,
    /// Number of test instances attempted.
    pub attempts: usize,
    /// The successfully forged instances.
    pub forged: Vec<ForgedInstance>,
    /// Number of attempts that ended with the solver budget exhausted
    /// (counted as failures, as the paper does for Z3 timeouts).
    pub budget_exhausted: usize,
}

impl ForgeryAttackResult {
    /// Number of forged instances.
    pub fn forged_count(&self) -> usize {
        self.forged.len()
    }

    /// Converts the forged instances into a dataset (the forged trigger set
    /// `D'_trigger`).
    pub fn forged_dataset(&self, name: &str) -> Option<Dataset> {
        if self.forged.is_empty() {
            return None;
        }
        let rows: Vec<Vec<f64>> = self.forged.iter().map(|f| f.instance.clone()).collect();
        let labels: Vec<Label> = self.forged.iter().map(|f| f.label).collect();
        let matrix = DenseMatrix::from_rows(&rows).ok()?;
        Dataset::new(name, matrix, labels).ok()
    }
}

/// Runs the forgery attack for a single fake signature over the test set.
///
/// Candidates returned by the constraint solver are re-scored against the
/// model through the compiled inference path before being accepted: a
/// forged instance only counts if the flattened ensemble actually produces
/// the full per-tree pattern the fake signature requires.
pub fn forge_trigger_set(
    model: &RandomForest,
    leaf_index: &LeafIndex,
    test_set: &Dataset,
    fake_signature: &Signature,
    config: &ForgeryAttackConfig,
) -> ForgeryAttackResult {
    forge_trigger_set_compiled(
        &CompiledForest::compile(model),
        leaf_index,
        test_set,
        fake_signature,
        config,
    )
}

/// Like [`forge_trigger_set`], but takes an already-compiled model so
/// callers attacking the same model with many fake signatures (the
/// paper's sweeps) compile it once.
pub fn forge_trigger_set_compiled(
    compiled: &CompiledForest,
    leaf_index: &LeafIndex,
    test_set: &Dataset,
    fake_signature: &Signature,
    config: &ForgeryAttackConfig,
) -> ForgeryAttackResult {
    assert_eq!(
        fake_signature.len(),
        compiled.num_trees(),
        "fake signature must have one bit per tree"
    );
    let limit = config.max_instances.unwrap_or(test_set.len()).min(test_set.len());
    let solver = ForgerySolver::new(config.solver);

    // Each test instance is an independent satisfiability query; solving
    // them in parallel matches how the experiments batch Z3 calls.
    let outcomes: Vec<(usize, Option<ForgedInstance>, bool)> = (0..limit)
        .into_par_iter()
        .map(|index| {
            let instance = test_set.instance(index);
            let label = test_set.label(index);
            let query = ForgeryQuery::from_signature_bits(
                fake_signature.bits(),
                label,
                Some((instance, config.epsilon)),
            );
            match solver.solve(leaf_index, &query) {
                wdte_solver::ForgeryOutcome::Forged { instance: forged, .. } => {
                    let distortion = linf_distance(&forged, instance);
                    (
                        index,
                        Some(ForgedInstance {
                            source_index: index,
                            label,
                            instance: forged,
                            distortion,
                        }),
                        false,
                    )
                }
                wdte_solver::ForgeryOutcome::Unsatisfiable { .. } => (index, None, false),
                wdte_solver::ForgeryOutcome::BudgetExhausted { .. } => (index, None, true),
            }
        })
        .collect();

    let mut candidates = Vec::new();
    let mut budget_exhausted = 0usize;
    for (_, maybe_forged, exhausted) in outcomes {
        if let Some(f) = maybe_forged {
            candidates.push(f);
        }
        if exhausted {
            budget_exhausted += 1;
        }
    }

    // Re-score every candidate against the model itself in one compiled
    // batch: a forged instance only counts if the flattened ensemble
    // produces the full per-tree pattern the fake signature requires (the
    // solver's leaf-box geometry could in principle disagree, and a claim
    // built on such an instance would be rejected by the judge).
    let forged = if candidates.is_empty() {
        candidates
    } else {
        let rows: Vec<Vec<f64>> = candidates.iter().map(|f| f.instance.clone()).collect();
        let matrix = DenseMatrix::from_rows(&rows).expect("forged instances share dimensionality");
        let batch = compiled.predict_all_batch(&matrix);
        let required_for = |label: Label| -> Vec<Label> {
            (0..fake_signature.len())
                .map(|tree| fake_signature.required_prediction(tree, label))
                .collect()
        };
        let required = [required_for(Label::Negative), required_for(Label::Positive)];
        candidates
            .into_iter()
            .enumerate()
            .filter(|(index, f)| batch.sample(*index) == required[f.label.index()].as_slice())
            .map(|(_, f)| f)
            .collect()
    };
    ForgeryAttackResult {
        fake_signature: fake_signature.clone(),
        epsilon: config.epsilon,
        attempts: limit,
        forged,
        budget_exhausted,
    }
}

/// Runs the full forgery attack: `num_fake_signatures` random signatures,
/// each attacking the whole test set. Returns one result per signature.
pub fn run_forgery_attack<R: Rng + ?Sized>(
    model: &RandomForest,
    test_set: &Dataset,
    config: &ForgeryAttackConfig,
    rng: &mut R,
) -> Vec<ForgeryAttackResult> {
    let leaf_index = LeafIndex::new(model);
    // One compile shared by every fake signature's scoring pass.
    let compiled = CompiledForest::compile(model);
    (0..config.num_fake_signatures)
        .map(|_| {
            let fake = Signature::random(model.num_trees(), config.ones_fraction, rng);
            forge_trigger_set_compiled(&compiled, &leaf_index, test_set, &fake, config)
        })
        .collect()
}

/// Average forged-trigger-set size across the per-signature results.
pub fn mean_forged_size(results: &[ForgeryAttackResult]) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().map(|r| r.forged_count() as f64).sum::<f64>() / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WatermarkConfig;
    use crate::watermark::Watermarker;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wdte_data::SyntheticSpec;
    use wdte_solver::satisfies_pattern;

    fn watermarked_setup() -> (RandomForest, Dataset) {
        let dataset = SyntheticSpec::breast_cancer_like()
            .scaled(0.7)
            .generate(&mut SmallRng::seed_from_u64(71));
        let mut rng = SmallRng::seed_from_u64(72);
        let (train, test) = dataset.split_stratified(0.75, &mut rng);
        let signature = Signature::random(10, 0.5, &mut rng);
        let watermarker = Watermarker::new(WatermarkConfig {
            num_trees: 10,
            ..WatermarkConfig::fast()
        });
        let outcome = watermarker.embed(&train, &signature, &mut rng).unwrap();
        (outcome.model, test)
    }

    #[test]
    fn forged_instances_satisfy_the_fake_pattern_and_distortion_bound() {
        let (model, test) = watermarked_setup();
        let leaf_index = LeafIndex::new(&model);
        let mut rng = SmallRng::seed_from_u64(73);
        let fake = Signature::random(model.num_trees(), 0.5, &mut rng);
        let config = ForgeryAttackConfig {
            epsilon: 0.8,
            max_instances: Some(20),
            solver: SolverConfig::fast(),
            ..ForgeryAttackConfig::default()
        };
        let result = forge_trigger_set(&model, &leaf_index, &test, &fake, &config);
        assert_eq!(result.attempts, 20);
        for forged in &result.forged {
            assert!(forged.distortion <= config.epsilon + 1e-9);
            let required: Vec<Label> = (0..model.num_trees())
                .map(|i| fake.required_prediction(i, forged.label))
                .collect();
            assert!(satisfies_pattern(&model, &forged.instance, &required));
            for &value in &forged.instance {
                assert!(
                    (0.0..=1.0).contains(&value),
                    "forged values must stay in the data domain"
                );
            }
        }
    }

    #[test]
    fn small_epsilon_forges_fewer_instances_than_large_epsilon() {
        let (model, test) = watermarked_setup();
        let leaf_index = LeafIndex::new(&model);
        let mut rng = SmallRng::seed_from_u64(74);
        let fake = Signature::random(model.num_trees(), 0.5, &mut rng);
        let base = ForgeryAttackConfig {
            max_instances: Some(25),
            solver: SolverConfig::fast(),
            ..ForgeryAttackConfig::default()
        };
        let tight = forge_trigger_set(
            &model,
            &leaf_index,
            &test,
            &fake,
            &ForgeryAttackConfig {
                epsilon: 0.05,
                ..base.clone()
            },
        );
        let loose = forge_trigger_set(
            &model,
            &leaf_index,
            &test,
            &fake,
            &ForgeryAttackConfig { epsilon: 0.9, ..base },
        );
        assert!(
            tight.forged_count() <= loose.forged_count(),
            "tight {} vs loose {}",
            tight.forged_count(),
            loose.forged_count()
        );
    }

    #[test]
    fn run_forgery_attack_produces_one_result_per_signature() {
        let (model, test) = watermarked_setup();
        let mut rng = SmallRng::seed_from_u64(75);
        let config = ForgeryAttackConfig {
            num_fake_signatures: 3,
            epsilon: 0.5,
            max_instances: Some(10),
            solver: SolverConfig::fast(),
            ..ForgeryAttackConfig::default()
        };
        let results = run_forgery_attack(&model, &test, &config, &mut rng);
        assert_eq!(results.len(), 3);
        for result in &results {
            assert_eq!(result.attempts, 10);
            assert_eq!(result.fake_signature.len(), model.num_trees());
        }
        let mean = mean_forged_size(&results);
        assert!(mean <= 10.0);
        assert_eq!(mean_forged_size(&[]), 0.0);
    }

    #[test]
    fn forged_dataset_round_trips() {
        let (model, test) = watermarked_setup();
        let leaf_index = LeafIndex::new(&model);
        let mut rng = SmallRng::seed_from_u64(76);
        let fake = Signature::random(model.num_trees(), 0.5, &mut rng);
        let config = ForgeryAttackConfig {
            epsilon: 0.9,
            max_instances: Some(15),
            solver: SolverConfig::fast(),
            ..ForgeryAttackConfig::default()
        };
        let result = forge_trigger_set(&model, &leaf_index, &test, &fake, &config);
        if result.forged_count() > 0 {
            let dataset = result.forged_dataset("forged").unwrap();
            assert_eq!(dataset.len(), result.forged_count());
            assert_eq!(dataset.num_features(), test.num_features());
        } else {
            assert!(result.forged_dataset("forged").is_none());
        }
    }
}
