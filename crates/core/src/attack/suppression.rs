//! Watermark suppression analysis (Section 3.3).
//!
//! To suppress the watermark, the attacker must recognize which verification
//! queries belong to the trigger set and answer them differently. The paper
//! argues this is impossible because the trigger set is sampled from the
//! training distribution and therefore indistinguishable from ordinary test
//! data. This module quantifies that claim: a distinguisher scores every
//! query by how anomalous the model's per-tree voting behaviour looks, and
//! we measure the ROC AUC of separating trigger instances from ordinary
//! test instances. An AUC close to 0.5 means the attacker can do no better
//! than random guessing.

use serde::{Deserialize, Serialize};
use wdte_data::{roc_auc, Dataset, Label};
use wdte_trees::{CompiledForest, RandomForest};

/// How the distinguisher scores a query instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuppressionScore {
    /// Fraction of trees disagreeing with the majority vote: trigger
    /// instances of a watermarked model have a fixed fraction of
    /// "dissenting" trees (the 1-bits), so this is the strongest signal an
    /// attacker could plausibly use without knowing the signature.
    VoteDisagreement,
    /// Absolute distance of the positive-vote share from 0.5: measures how
    /// "confident" the ensemble is; trigger instances might look less
    /// confident than clean data.
    VoteMargin,
}

/// Result of the suppression analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuppressionReport {
    /// Scoring function used by the distinguisher.
    pub score: SuppressionScore,
    /// ROC AUC of separating trigger (positive) from test (negative)
    /// queries; 0.5 = indistinguishable.
    pub auc: f64,
    /// Scores assigned to trigger instances.
    pub trigger_scores: Vec<f64>,
    /// Scores assigned to ordinary test instances.
    pub test_scores: Vec<f64>,
}

/// Scores one instance under the chosen distinguisher.
pub fn suppression_score(model: &RandomForest, instance: &[f64], score: SuppressionScore) -> f64 {
    score_from_fraction(model.positive_vote_fraction(instance), score)
}

/// Maps a positive-vote fraction to the distinguisher score.
fn score_from_fraction(positive_fraction: f64, score: SuppressionScore) -> f64 {
    match score {
        SuppressionScore::VoteDisagreement => {
            // Fraction of trees voting against the majority.
            positive_fraction.min(1.0 - positive_fraction)
        }
        SuppressionScore::VoteMargin => 0.5 - (positive_fraction - 0.5).abs(),
    }
}

/// Runs the suppression analysis: scores all trigger and test instances and
/// computes the distinguisher's AUC. The model is compiled once and both
/// query sets are scored through the block-wise batch inference path.
pub fn evaluate_suppression(
    model: &RandomForest,
    trigger_set: &Dataset,
    test_set: &Dataset,
    score: SuppressionScore,
) -> SuppressionReport {
    let compiled = CompiledForest::compile(model);
    let trigger_scores: Vec<f64> = compiled
        .positive_vote_fractions(trigger_set.features())
        .into_iter()
        .map(|fraction| score_from_fraction(fraction, score))
        .collect();
    let test_scores: Vec<f64> = compiled
        .positive_vote_fractions(test_set.features())
        .into_iter()
        .map(|fraction| score_from_fraction(fraction, score))
        .collect();
    let labels: Vec<Label> = std::iter::repeat_n(Label::Positive, trigger_scores.len())
        .chain(std::iter::repeat_n(Label::Negative, test_scores.len()))
        .collect();
    let scores: Vec<f64> = trigger_scores.iter().chain(test_scores.iter()).copied().collect();
    let auc = roc_auc(&labels, &scores);
    SuppressionReport {
        score,
        auc,
        trigger_scores,
        test_scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WatermarkConfig;
    use crate::signature::Signature;
    use crate::watermark::Watermarker;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wdte_data::SyntheticSpec;

    #[test]
    fn scores_lie_in_the_unit_interval() {
        let dataset = SyntheticSpec::breast_cancer_like()
            .scaled(0.4)
            .generate(&mut SmallRng::seed_from_u64(61));
        let mut rng = SmallRng::seed_from_u64(62);
        let forest =
            wdte_trees::RandomForest::fit(&dataset, &wdte_trees::ForestParams::with_trees(9), &mut rng);
        for (instance, _) in dataset.iter().take(20) {
            for score in [SuppressionScore::VoteDisagreement, SuppressionScore::VoteMargin] {
                let value = suppression_score(&forest, instance, score);
                assert!((0.0..=0.5 + 1e-12).contains(&value), "score {value} out of range");
            }
        }
    }

    #[test]
    fn batched_scores_match_the_per_instance_scores() {
        let dataset = SyntheticSpec::breast_cancer_like()
            .scaled(0.4)
            .generate(&mut SmallRng::seed_from_u64(67));
        let mut rng = SmallRng::seed_from_u64(68);
        let (trigger, test) = dataset.split_stratified(0.2, &mut rng);
        let forest =
            wdte_trees::RandomForest::fit(&test, &wdte_trees::ForestParams::with_trees(7), &mut rng);
        for score in [SuppressionScore::VoteDisagreement, SuppressionScore::VoteMargin] {
            let report = evaluate_suppression(&forest, &trigger, &test, score);
            for (batch_score, (instance, _)) in report.trigger_scores.iter().zip(trigger.iter()) {
                assert!((batch_score - suppression_score(&forest, instance, score)).abs() < 1e-15);
            }
            for (batch_score, (instance, _)) in report.test_scores.iter().zip(test.iter()) {
                assert!((batch_score - suppression_score(&forest, instance, score)).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn report_collects_scores_for_both_groups() {
        let dataset = SyntheticSpec::breast_cancer_like()
            .scaled(0.8)
            .generate(&mut SmallRng::seed_from_u64(63));
        let mut rng = SmallRng::seed_from_u64(64);
        let (train, test) = dataset.split_stratified(0.75, &mut rng);
        let signature = Signature::random(12, 0.5, &mut rng);
        let watermarker = Watermarker::new(WatermarkConfig {
            num_trees: 12,
            ..WatermarkConfig::fast()
        });
        let outcome = watermarker.embed(&train, &signature, &mut rng).unwrap();
        let report = evaluate_suppression(
            &outcome.model,
            &outcome.trigger_set,
            &test,
            SuppressionScore::VoteDisagreement,
        );
        assert_eq!(report.trigger_scores.len(), outcome.trigger_set.len());
        assert_eq!(report.test_scores.len(), test.len());
        assert!((0.0..=1.0).contains(&report.auc));
    }

    #[test]
    fn distinguisher_has_limited_power_against_balanced_signatures() {
        // With a 50%-ones signature, exactly half of the trees dissent on
        // trigger instances, which can look similar to genuinely ambiguous
        // test instances. We only require that the distinguisher is not
        // perfect (AUC well below 1.0); the experiment binary reports the
        // exact value.
        let dataset = SyntheticSpec::breast_cancer_like().generate(&mut SmallRng::seed_from_u64(65));
        let mut rng = SmallRng::seed_from_u64(66);
        let (train, test) = dataset.split_stratified(0.75, &mut rng);
        let signature = Signature::random(16, 0.5, &mut rng);
        let watermarker = Watermarker::new(WatermarkConfig {
            num_trees: 16,
            ..WatermarkConfig::fast()
        });
        let outcome = watermarker.embed(&train, &signature, &mut rng).unwrap();
        let report = evaluate_suppression(
            &outcome.model,
            &outcome.trigger_set,
            &test,
            SuppressionScore::VoteMargin,
        );
        assert!(
            report.auc < 0.999,
            "suppression distinguisher should not be perfect, got {}",
            report.auc
        );
    }
}
