//! Multi-tenant identity, frame authentication, quotas and accounting.
//!
//! The paper's trusted judge serves many mutually distrusting model
//! owners. This module supplies the isolation layer the wire protocol and
//! the [`crate::DisputeService`] build on:
//!
//! * [`TenantId`] — a validated tenant name that fits the fixed
//!   [`proto::TENANT_FIELD_BYTES`] header field of a WDTP v4 frame. The
//!   empty id is the *anonymous* tenant: the namespace every request falls
//!   into when the judge runs without a key file.
//! * [`KeyRing`] — shared secrets loaded from a key file (`tenant:secret`,
//!   one line per tenant) and the frame verification path: an HMAC-SHA-256
//!   tag over the frame transcript, compared in constant time, with a
//!   strictly monotonic per-connection sequence number folded into the tag
//!   so a replayed frame is refused even though its tag is genuine.
//! * [`TenantQuotas`] — per-tenant resource limits (models registered,
//!   docket size, claim-cache bytes, in-flight requests), checked *before*
//!   allocation like the frame caps.
//! * [`TenantLedger`] / [`TenantStatsEntry`] — per-tenant counters behind
//!   the `Stats` request and the `serve_judge` periodic log line.
//!
//! The hash is a from-scratch SHA-256 (FIPS 180-4) rather than the FNV
//! [`proto::PayloadDigest`] machinery: FNV is a fine cache key but is
//! trivially forgeable, and an authentication tag must not be. HMAC is the
//! standard RFC 2104 construction; both are pinned against published test
//! vectors below. No new dependencies are involved.

use crate::error::{WatermarkError, WatermarkResult};
use crate::proto::{self, FrameHeader, TAG_BYTES, TENANT_FIELD_BYTES};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::Mutex;

/// Maximum length of a tenant id in bytes — the size of the fixed tenant
/// field in a WDTP v4 frame header.
pub const MAX_TENANT_ID_BYTES: usize = TENANT_FIELD_BYTES;

/// A validated tenant name: 1–16 bytes of ASCII letters, digits, `.`, `_`
/// or `-`, sized to travel in the fixed tenant field of every frame
/// header. The empty id is reserved for the *anonymous* tenant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(String);

/// Serialized as a bare string (the shim's derive does not handle tuple
/// structs); deserialization re-runs the [`TenantId::new`] validation.
impl Serialize for TenantId {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.0.clone())
    }
}

impl Deserialize for TenantId {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        match value {
            serde::Value::Str(name) if name.is_empty() => Ok(Self::anonymous()),
            serde::Value::Str(name) => {
                Self::new(name.clone()).map_err(|err| serde::DeError::new(err.to_string()))
            }
            other => Err(serde::DeError::new(format!(
                "tenant id must be a string, got {other:?}"
            ))),
        }
    }
}

impl TenantId {
    /// Validates and wraps a tenant name.
    pub fn new(name: impl Into<String>) -> WatermarkResult<Self> {
        let name = name.into();
        if name.is_empty() {
            return Err(WatermarkError::AuthenticationFailed {
                detail: "tenant id must not be empty".to_string(),
            });
        }
        if name.len() > MAX_TENANT_ID_BYTES {
            return Err(WatermarkError::AuthenticationFailed {
                detail: format!("tenant id `{name}` exceeds {MAX_TENANT_ID_BYTES} bytes"),
            });
        }
        if !name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
        {
            return Err(WatermarkError::AuthenticationFailed {
                detail: format!("tenant id `{name}` contains characters outside [A-Za-z0-9._-]"),
            });
        }
        Ok(Self(name))
    }

    /// The anonymous tenant: the single namespace of a judge running
    /// without a key file, encoded on the wire as an all-zero tenant field.
    pub fn anonymous() -> Self {
        Self(String::new())
    }

    /// Whether this is the anonymous tenant.
    pub fn is_anonymous(&self) -> bool {
        self.0.is_empty()
    }

    /// The raw name (empty for the anonymous tenant).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Renders the id into the fixed frame-header field, zero-padded.
    pub fn field(&self) -> [u8; TENANT_FIELD_BYTES] {
        let mut field = [0u8; TENANT_FIELD_BYTES];
        field[..self.0.len()].copy_from_slice(self.0.as_bytes());
        field
    }

    /// Parses a frame-header tenant field: trailing zero padding is
    /// stripped, an all-zero field is the anonymous tenant, and anything
    /// else must validate as a tenant name (interior NUL bytes fail the
    /// charset check).
    pub fn from_field(field: &[u8; TENANT_FIELD_BYTES]) -> WatermarkResult<Self> {
        let len = field.iter().rposition(|&b| b != 0).map_or(0, |p| p + 1);
        if len == 0 {
            return Ok(Self::anonymous());
        }
        let name =
            std::str::from_utf8(&field[..len]).map_err(|_| WatermarkError::AuthenticationFailed {
                detail: "tenant field is not UTF-8".to_string(),
            })?;
        Self::new(name)
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_anonymous() {
            write!(f, "anonymous")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4) — streaming, from scratch, no dependencies.
// ---------------------------------------------------------------------------

const SHA256_INIT: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

#[rustfmt::skip]
const SHA256_K: [u32; 64] = [
    0x428a_2f98, 0x7137_4491, 0xb5c0_fbcf, 0xe9b5_dba5, 0x3956_c25b, 0x59f1_11f1, 0x923f_82a4, 0xab1c_5ed5,
    0xd807_aa98, 0x1283_5b01, 0x2431_85be, 0x550c_7dc3, 0x72be_5d74, 0x80de_b1fe, 0x9bdc_06a7, 0xc19b_f174,
    0xe49b_69c1, 0xefbe_4786, 0x0fc1_9dc6, 0x240c_a1cc, 0x2de9_2c6f, 0x4a74_84aa, 0x5cb0_a9dc, 0x76f9_88da,
    0x983e_5152, 0xa831_c66d, 0xb003_27c8, 0xbf59_7fc7, 0xc6e0_0bf3, 0xd5a7_9147, 0x06ca_6351, 0x1429_2967,
    0x27b7_0a85, 0x2e1b_2138, 0x4d2c_6dfc, 0x5338_0d13, 0x650a_7354, 0x766a_0abb, 0x81c2_c92e, 0x9272_2c85,
    0xa2bf_e8a1, 0xa81a_664b, 0xc24b_8b70, 0xc76c_51a3, 0xd192_e819, 0xd699_0624, 0xf40e_3585, 0x106a_a070,
    0x19a4_c116, 0x1e37_6c08, 0x2748_774c, 0x34b0_bcb5, 0x391c_0cb3, 0x4ed8_aa4a, 0x5b9c_ca4f, 0x682e_6ff3,
    0x748f_82ee, 0x78a5_636f, 0x84c8_7814, 0x8cc7_0208, 0x90be_fffa, 0xa450_6ceb, 0xbef9_a3f7, 0xc671_78f2,
];

/// Streaming SHA-256: feed bytes with [`Sha256::update`], close with
/// [`Sha256::finalize`]. Streaming matters on the frame-tag hot path — the
/// payload is hashed in place instead of being copied into a transcript
/// buffer first.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    total: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hash state.
    pub fn new() -> Self {
        Self {
            state: SHA256_INIT,
            buffer: [0u8; 64],
            buffered: 0,
            total: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
            // Everything fit in the partial block: the tail below must not
            // run, or it would reset `buffered` and drop those bytes.
            if data.is_empty() {
                return;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().expect("split_at(64) yields 64 bytes"));
            data = rest;
        }
        self.buffer[..data.len()].copy_from_slice(data);
        self.buffered = data.len();
    }

    /// Pads and produces the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffered, 0);
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (t, chunk) in block.chunks_exact(4).enumerate() {
            w[t] = u32::from_be_bytes(chunk.try_into().expect("chunk is 4 bytes"));
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16].wrapping_add(s0).wrapping_add(w[t - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for t in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(SHA256_K[t]).wrapping_add(w[t]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut hash = Sha256::new();
    hash.update(data);
    hash.finalize()
}

/// HMAC-SHA-256 (RFC 2104) with the inner hash primed for streaming: the
/// returned state has already absorbed `key ^ ipad`; feed the message with
/// `update` and close with [`HmacSha256::finalize`].
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; 64],
}

impl HmacSha256 {
    /// Primes the MAC with `key` (hashed down first if longer than one
    /// block, per the RFC).
    pub fn new(key: &[u8]) -> Self {
        let mut block = [0u8; 64];
        if key.len() > 64 {
            block[..32].copy_from_slice(&sha256(key));
        } else {
            block[..key.len()].copy_from_slice(key);
        }
        let mut ipad_key = [0u8; 64];
        let mut opad_key = [0u8; 64];
        for i in 0..64 {
            ipad_key[i] = block[i] ^ 0x36;
            opad_key[i] = block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad_key);
        Self { inner, opad_key }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the 32-byte MAC.
    pub fn finalize(self) -> [u8; 32] {
        let inner_hash = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_hash);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA-256 of `message` under `key`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Constant-time byte-slice equality: the comparison touches every byte
/// regardless of where the first difference is, so tag verification does
/// not leak a matching prefix through timing. (Length is public.)
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Computes the authentication tag of a WDTP v4 frame: HMAC-SHA-256 over
/// the frame transcript — magic, version, correlation id, sequence, the
/// zero-padded tenant field, the payload length and the payload bytes —
/// truncated to [`TAG_BYTES`]. Covering the whole header binds the tag to
/// *this* request on *this* connection turn; covering the sequence is what
/// makes a byte-identical replay detectable.
pub fn frame_tag(
    key: &[u8],
    correlation_id: u64,
    sequence: u64,
    tenant_field: &[u8; TENANT_FIELD_BYTES],
    payload: &[u8],
) -> [u8; TAG_BYTES] {
    let mut mac = HmacSha256::new(key);
    mac.update(proto::PROTO_MAGIC);
    mac.update(&proto::PROTOCOL_VERSION.to_le_bytes());
    mac.update(&correlation_id.to_le_bytes());
    mac.update(&sequence.to_le_bytes());
    mac.update(tenant_field);
    mac.update(&(payload.len() as u64).to_le_bytes());
    mac.update(payload);
    let full = mac.finalize();
    let mut tag = [0u8; TAG_BYTES];
    tag.copy_from_slice(&full[..TAG_BYTES]);
    tag
}

/// Shared secrets for frame authentication, loaded from a key file with
/// one `tenant:secret` line per tenant (blank lines and `#` comments are
/// skipped; the secret is everything after the first `:`, taken as raw
/// bytes). A judge holding a non-empty key ring refuses unauthenticated
/// frames; a judge without one ignores auth fields entirely and serves
/// every connection as the anonymous tenant.
#[derive(Debug, Clone, Default)]
pub struct KeyRing {
    keys: HashMap<TenantId, Vec<u8>>,
}

impl KeyRing {
    /// An empty ring.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) one tenant's secret.
    pub fn insert(&mut self, tenant: TenantId, secret: impl Into<Vec<u8>>) {
        self.keys.insert(tenant, secret.into());
    }

    /// Parses key-file text.
    pub fn parse(text: &str) -> WatermarkResult<Self> {
        let mut ring = Self::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (tenant, secret) =
                line.split_once(':').ok_or_else(|| WatermarkError::CorruptedArtifact {
                    detail: format!("key file line {}: expected `tenant:secret`", lineno + 1),
                })?;
            let tenant =
                TenantId::new(tenant.trim()).map_err(|err| WatermarkError::CorruptedArtifact {
                    detail: format!("key file line {}: {err}", lineno + 1),
                })?;
            if secret.is_empty() {
                return Err(WatermarkError::CorruptedArtifact {
                    detail: format!("key file line {}: empty secret", lineno + 1),
                });
            }
            ring.insert(tenant, secret.as_bytes().to_vec());
        }
        Ok(ring)
    }

    /// Loads a key file from disk.
    pub fn load(path: &Path) -> WatermarkResult<Self> {
        let text = std::fs::read_to_string(path).map_err(|err| WatermarkError::Io {
            path: path.display().to_string(),
            message: err.to_string(),
        })?;
        Self::parse(&text)
    }

    /// The secret of `tenant`, if enrolled.
    pub fn key(&self, tenant: &TenantId) -> Option<&[u8]> {
        self.keys.get(tenant).map(Vec::as_slice)
    }

    /// Number of enrolled tenants.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the ring holds no tenants.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Enrolled tenant ids, sorted.
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut ids: Vec<TenantId> = self.keys.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Authenticates one received frame against this ring: the tenant
    /// field must name an enrolled tenant, the tag must verify in constant
    /// time under that tenant's key, and the sequence must be strictly
    /// greater than `last_sequence` (the highest sequence already accepted
    /// on this connection) — a replayed frame carries a genuine tag but a
    /// stale sequence and is refused. Returns the authenticated tenant.
    pub fn verify_frame(
        &self,
        header: &FrameHeader,
        payload: &[u8],
        last_sequence: u64,
    ) -> WatermarkResult<TenantId> {
        let tenant = TenantId::from_field(&header.tenant)?;
        if tenant.is_anonymous() {
            return Err(WatermarkError::AuthenticationFailed {
                detail: "this judge requires authentication but the frame is anonymous".to_string(),
            });
        }
        let key = self.key(&tenant).ok_or_else(|| WatermarkError::AuthenticationFailed {
            detail: format!("unknown tenant `{tenant}`"),
        })?;
        let expected = frame_tag(
            key,
            header.correlation_id,
            header.sequence,
            &header.tenant,
            payload,
        );
        if !constant_time_eq(&expected, &header.tag) {
            return Err(WatermarkError::AuthenticationFailed {
                detail: format!("bad authentication tag for tenant `{tenant}`"),
            });
        }
        if header.sequence <= last_sequence {
            return Err(WatermarkError::AuthenticationFailed {
                detail: format!(
                    "replayed frame: sequence {} is not beyond the last accepted {}",
                    header.sequence, last_sequence
                ),
            });
        }
        Ok(tenant)
    }
}

/// Per-tenant resource limits, applied uniformly to every authenticated
/// tenant (and to the anonymous tenant when configured on an open judge).
/// Each axis is checked *before* the allocation it guards, like the frame
/// caps; `0` means unlimited on that axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuotas {
    /// Maximum models registered per tenant.
    pub max_models: usize,
    /// Maximum disputes per docket per tenant (tightens the service-wide
    /// `max_docket` cap; the smaller of the two wins).
    pub max_docket: usize,
    /// Maximum claim-cache bytes attributed to one tenant.
    pub max_claim_bytes: usize,
    /// Maximum requests one tenant may have in flight at once.
    pub max_in_flight: usize,
}

impl Default for TenantQuotas {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl TenantQuotas {
    /// No limits on any axis.
    pub fn unlimited() -> Self {
        Self {
            max_models: 0,
            max_docket: 0,
            max_claim_bytes: 0,
            max_in_flight: 0,
        }
    }

    /// Refuses if `used` would exceed `limit` on the named axis.
    fn check(resource: &str, used: usize, limit: usize) -> WatermarkResult<()> {
        if limit != 0 && used > limit {
            return Err(WatermarkError::QuotaExceeded {
                resource: resource.to_string(),
                used: used as u64,
                limit: limit as u64,
            });
        }
        Ok(())
    }

    /// Checks the models-registered axis against the count a registration
    /// would reach.
    pub fn check_models(&self, would_hold: usize) -> WatermarkResult<()> {
        Self::check("models", would_hold, self.max_models)
    }

    /// Checks a docket's size against the per-tenant docket axis.
    pub fn check_docket(&self, size: usize) -> WatermarkResult<()> {
        Self::check("docket", size, self.max_docket)
    }

    /// Checks the claim-cache byte axis against the bytes a tenant would
    /// hold after an insert.
    pub fn check_claim_bytes(&self, would_hold: usize) -> WatermarkResult<()> {
        Self::check("claim-bytes", would_hold, self.max_claim_bytes)
    }

    /// Checks the in-flight axis against the count a dispatch would reach.
    pub fn check_in_flight(&self, would_reach: usize) -> WatermarkResult<()> {
        Self::check("in-flight", would_reach, self.max_in_flight)
    }
}

/// Live counter values for one tenant, as kept by [`TenantLedger`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Dockets resolved (a single `Resolve` counts as a docket of one).
    pub dockets: u64,
    /// Individual claims adjudicated across those dockets.
    pub claims: u64,
    /// Model/claim cache hits (compiled form or claim body already held).
    pub cache_hits: u64,
    /// Cache misses (claim body absent, or compiled model recompiled).
    pub cache_misses: u64,
    /// Compiled models evicted from this tenant's namespace.
    pub evictions: u64,
    /// Frames from this tenant that failed authentication.
    pub auth_failures: u64,
    /// Requests currently in flight.
    pub in_flight: u64,
}

/// Per-tenant accounting: a small mutex-guarded counter map shared by the
/// service (dockets, claims, cache traffic, evictions) and the server
/// front end (auth failures, in-flight gauge).
#[derive(Debug, Default)]
pub struct TenantLedger {
    inner: Mutex<HashMap<TenantId, TenantCounters>>,
}

impl TenantLedger {
    /// A ledger with no tenants recorded yet.
    pub fn new() -> Self {
        Self::default()
    }

    fn with<R>(&self, tenant: &TenantId, f: impl FnOnce(&mut TenantCounters) -> R) -> R {
        let mut inner = self.inner.lock().expect("tenant ledger poisoned");
        f(inner.entry(tenant.clone()).or_default())
    }

    /// Records one resolved docket of `claims` disputes.
    pub fn record_docket(&self, tenant: &TenantId, claims: u64) {
        self.with(tenant, |c| {
            c.dockets += 1;
            c.claims += claims;
        });
    }

    /// Records cache hits.
    pub fn record_cache_hits(&self, tenant: &TenantId, n: u64) {
        self.with(tenant, |c| c.cache_hits += n);
    }

    /// Records cache misses.
    pub fn record_cache_misses(&self, tenant: &TenantId, n: u64) {
        self.with(tenant, |c| c.cache_misses += n);
    }

    /// Records evicted compiled models.
    pub fn record_evictions(&self, tenant: &TenantId, n: u64) {
        self.with(tenant, |c| c.evictions += n);
    }

    /// Records one authentication failure attributed to `tenant` (the
    /// claimed tenant when parsable, the anonymous tenant otherwise).
    pub fn record_auth_failure(&self, tenant: &TenantId) {
        self.with(tenant, |c| c.auth_failures += 1);
    }

    /// Admits one request into flight, refusing beyond
    /// [`TenantQuotas::max_in_flight`] *before* any work is queued. Every
    /// admitted request must be paired with [`TenantLedger::end_request`].
    pub fn try_begin_request(&self, tenant: &TenantId, quotas: &TenantQuotas) -> WatermarkResult<()> {
        let mut inner = self.inner.lock().expect("tenant ledger poisoned");
        let counters = inner.entry(tenant.clone()).or_default();
        quotas.check_in_flight(counters.in_flight as usize + 1)?;
        counters.in_flight += 1;
        Ok(())
    }

    /// Retires one in-flight request.
    pub fn end_request(&self, tenant: &TenantId) {
        self.with(tenant, |c| c.in_flight = c.in_flight.saturating_sub(1));
    }

    /// Current counters of one tenant (zeroes if never seen).
    pub fn counters(&self, tenant: &TenantId) -> TenantCounters {
        let inner = self.inner.lock().expect("tenant ledger poisoned");
        inner.get(tenant).copied().unwrap_or_default()
    }

    /// Snapshot of every tenant's counters, sorted by tenant id.
    pub fn snapshot(&self) -> Vec<(TenantId, TenantCounters)> {
        let inner = self.inner.lock().expect("tenant ledger poisoned");
        let mut rows: Vec<(TenantId, TenantCounters)> =
            inner.iter().map(|(t, c)| (t.clone(), *c)).collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }
}

/// One tenant's row of a `Stats` response: the ledger counters plus the
/// live gauges the service owns (models registered, attributed claim-cache
/// bytes).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantStatsEntry {
    /// Tenant name (`"anonymous"` for the anonymous namespace).
    pub tenant: String,
    /// Models currently registered in this tenant's namespace.
    pub models: u64,
    /// Dockets resolved.
    pub dockets: u64,
    /// Claims adjudicated.
    pub claims: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Compiled models evicted.
    pub evictions: u64,
    /// Frames that failed authentication.
    pub auth_failures: u64,
    /// Claim-cache bytes currently attributed to this tenant.
    pub claim_bytes: u64,
    /// Requests currently in flight.
    pub in_flight: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// FIPS 180-4 / NIST example vectors.
    #[test]
    fn sha256_matches_published_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    /// Streaming in odd-sized pieces must match the one-shot digest.
    #[test]
    fn sha256_streaming_is_chunking_invariant() {
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        let reference = sha256(&data);
        for chunk in [1usize, 3, 63, 64, 65, 977] {
            let mut hash = Sha256::new();
            for piece in data.chunks(chunk) {
                hash.update(piece);
            }
            assert_eq!(hash.finalize(), reference, "chunk size {chunk}");
        }
    }

    /// RFC 4231 test cases 1 and 2.
    #[test]
    fn hmac_sha256_matches_rfc_4231() {
        assert_eq!(
            hex(&hmac_sha256(&[0x0b; 20], b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn constant_time_eq_compares_correctly() {
        assert!(constant_time_eq(b"same", b"same"));
        assert!(!constant_time_eq(b"same", b"sane"));
        assert!(!constant_time_eq(b"same", b"same!"));
        assert!(constant_time_eq(b"", b""));
    }

    #[test]
    fn tenant_ids_are_validated() {
        assert!(TenantId::new("alice").is_ok());
        assert!(TenantId::new("a-b_c.9").is_ok());
        assert!(TenantId::new("exactly-16-bytes").is_ok());
        assert!(TenantId::new("").is_err());
        assert!(TenantId::new("seventeen-bytes-x").is_err());
        assert!(TenantId::new("no spaces").is_err());
        assert!(TenantId::new("no:colons").is_err());
        assert!(TenantId::new("nul\0byte").is_err());
    }

    #[test]
    fn tenant_field_round_trips() {
        let tenant = TenantId::new("acme-corp").unwrap();
        let field = tenant.field();
        assert_eq!(TenantId::from_field(&field).unwrap(), tenant);
        // All-zero field is the anonymous tenant.
        let anon = TenantId::from_field(&[0u8; TENANT_FIELD_BYTES]).unwrap();
        assert!(anon.is_anonymous());
        assert_eq!(anon.to_string(), "anonymous");
        // Interior NUL (padding before a non-zero byte) is refused.
        let mut bad = [0u8; TENANT_FIELD_BYTES];
        bad[0] = b'a';
        bad[2] = b'b';
        assert!(TenantId::from_field(&bad).is_err());
    }

    #[test]
    fn key_ring_parses_and_rejects() {
        let ring =
            KeyRing::parse("# judge tenants\n\nalice:s3cret\nbob: hunter2 \nacme-corp:a:b:c\n").unwrap();
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.key(&TenantId::new("alice").unwrap()).unwrap(), b"s3cret");
        // Everything after the first colon is the secret, verbatim.
        assert_eq!(ring.key(&TenantId::new("acme-corp").unwrap()).unwrap(), b"a:b:c");
        assert_eq!(
            ring.tenants().iter().map(TenantId::as_str).collect::<Vec<_>>(),
            vec!["acme-corp", "alice", "bob"]
        );
        assert!(KeyRing::parse("no-colon-here").is_err());
        assert!(KeyRing::parse("alice:").is_err());
        assert!(KeyRing::parse("bad tenant:x").is_err());
    }

    #[test]
    fn frame_tags_are_sensitive_to_every_input() {
        let tenant = TenantId::new("alice").unwrap();
        let field = tenant.field();
        let base = frame_tag(b"key", 7, 1, &field, b"payload");
        assert_eq!(base, frame_tag(b"key", 7, 1, &field, b"payload"));
        assert_ne!(base, frame_tag(b"other", 7, 1, &field, b"payload"));
        assert_ne!(base, frame_tag(b"key", 8, 1, &field, b"payload"));
        assert_ne!(base, frame_tag(b"key", 7, 2, &field, b"payload"));
        assert_ne!(base, frame_tag(b"key", 7, 1, &field, b"payloae"));
        let other_field = TenantId::new("bob").unwrap().field();
        assert_ne!(base, frame_tag(b"key", 7, 1, &other_field, b"payload"));
    }

    #[test]
    fn quotas_refuse_beyond_each_axis_and_zero_is_unlimited() {
        let quotas = TenantQuotas {
            max_models: 2,
            max_docket: 3,
            max_claim_bytes: 100,
            max_in_flight: 1,
        };
        assert!(quotas.check_models(2).is_ok());
        assert!(quotas.check_models(3).is_err());
        assert!(quotas.check_docket(3).is_ok());
        assert!(quotas.check_docket(4).is_err());
        assert!(quotas.check_claim_bytes(100).is_ok());
        assert!(quotas.check_claim_bytes(101).is_err());
        assert!(quotas.check_in_flight(1).is_ok());
        assert!(quotas.check_in_flight(2).is_err());
        let unlimited = TenantQuotas::unlimited();
        assert!(unlimited.check_models(usize::MAX).is_ok());
        assert!(unlimited.check_docket(usize::MAX).is_ok());
        match quotas.check_models(5).unwrap_err() {
            WatermarkError::QuotaExceeded {
                resource,
                used,
                limit,
            } => {
                assert_eq!(resource, "models");
                assert_eq!((used, limit), (5, 2));
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
    }

    #[test]
    fn ledger_tracks_in_flight_against_the_quota() {
        let ledger = TenantLedger::new();
        let tenant = TenantId::new("alice").unwrap();
        let quotas = TenantQuotas {
            max_in_flight: 2,
            ..TenantQuotas::unlimited()
        };
        assert!(ledger.try_begin_request(&tenant, &quotas).is_ok());
        assert!(ledger.try_begin_request(&tenant, &quotas).is_ok());
        assert!(matches!(
            ledger.try_begin_request(&tenant, &quotas).unwrap_err(),
            WatermarkError::QuotaExceeded { .. }
        ));
        ledger.end_request(&tenant);
        assert!(ledger.try_begin_request(&tenant, &quotas).is_ok());
        assert_eq!(ledger.counters(&tenant).in_flight, 2);
        // A different tenant has its own in-flight budget.
        let other = TenantId::new("bob").unwrap();
        assert!(ledger.try_begin_request(&other, &quotas).is_ok());
    }
}
