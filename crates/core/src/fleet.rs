//! Fleet-level placement: consistent hashing of `(tenant, model id)`
//! across backend judges, plus the docket split/stitch bookkeeping a
//! router needs to fan one docket out and reassemble its verdicts in
//! input order.
//!
//! The hash ring is the contract between every router and every client of
//! the fleet: placement depends only on the backend count, the replica
//! count and the key — never on process state — so any router instance
//! (or an operator with a shell) can compute where a model lives. The
//! ring places `replicas` virtual points per backend; looking up a key
//! walks clockwise from the key's own hash to the first point. Removing a
//! backend therefore remaps *only* the keys that were homed on it: every
//! other key's first surviving candidate is unchanged, which is exactly
//! the property that makes bounded retry-on-sibling safe — see
//! [`HashRing::candidates`].
//!
//! Hashes are 64-bit FNV-1a with domain-separation prefixes, matching the
//! digest discipline of [`crate::proto::PayloadDigest`]: stable across
//! processes, architectures and runs, with no `RandomState`-style
//! per-process seeding that would desynchronise routers.

use crate::error::{WatermarkError, WatermarkResult};
use crate::tenant::TenantId;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Domain prefix for ring point hashes (backend × replica).
const RING_DOMAIN: &[u8] = b"wdtp:ring";
/// Domain prefix for key hashes (tenant × model id).
const KEY_DOMAIN: &[u8] = b"wdtp:place";

fn fnv1a(domain: &[u8], parts: &[&[u8]]) -> u64 {
    let mut hash = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    };
    eat(domain);
    for part in parts {
        // Length-prefix every part so ("ab","c") and ("a","bc") cannot
        // collide by concatenation.
        eat(&(part.len() as u64).to_le_bytes());
        eat(part);
    }
    // FNV-1a output over short, low-entropy inputs (sequential backend /
    // replica integers) is too correlated to spread ring points evenly;
    // a splitmix64-style finalizer decorrelates the positions without
    // giving up determinism.
    hash ^= hash >> 30;
    hash = hash.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    hash ^= hash >> 27;
    hash = hash.wrapping_mul(0x94d0_49bb_1331_11eb);
    hash ^ (hash >> 31)
}

/// A consistent-hash ring over `backends` judge processes, `replicas`
/// virtual points each. Placement of a `(tenant, model id)` key is a
/// pure function of the ring shape and the key, so every router (and
/// every future router restart) computes identical homes.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point hash, backend index)` sorted by hash; ties broken by
    /// backend index so construction order cannot matter.
    points: Vec<(u64, u32)>,
    backends: usize,
}

impl HashRing {
    /// Builds a ring over `backends` judges with `replicas` virtual
    /// points each. At least one backend and one replica are required —
    /// an empty ring has no possible placement.
    pub fn new(backends: usize, replicas: usize) -> WatermarkResult<Self> {
        if backends == 0 || replicas == 0 {
            return Err(WatermarkError::ProtocolViolation {
                detail: format!(
                    "a hash ring needs at least one backend and one replica \
                     (got {backends} backends x {replicas} replicas)"
                ),
            });
        }
        let mut points = Vec::with_capacity(backends * replicas);
        for backend in 0..backends {
            for replica in 0..replicas {
                let hash = fnv1a(
                    RING_DOMAIN,
                    &[&(backend as u64).to_le_bytes(), &(replica as u64).to_le_bytes()],
                );
                points.push((hash, backend as u32));
            }
        }
        points.sort_unstable();
        Ok(Self { points, backends })
    }

    /// Number of backends on the ring.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// Hash position of a `(tenant, model id)` key.
    fn key_hash(tenant: &TenantId, model_id: &str) -> u64 {
        fnv1a(KEY_DOMAIN, &[tenant.as_str().as_bytes(), model_id.as_bytes()])
    }

    /// The backend a `(tenant, model id)` key is homed on: the owner of
    /// the first ring point at or clockwise-after the key's hash.
    pub fn home(&self, tenant: &TenantId, model_id: &str) -> usize {
        let hash = Self::key_hash(tenant, model_id);
        let at = self.points.partition_point(|&(point, _)| point < hash);
        let (_, backend) = self.points[at % self.points.len()];
        backend as usize
    }

    /// Every backend in ring order starting from the key's home: the
    /// first entry is [`home`](Self::home), the second is the sibling a
    /// router retries on when the home is unreachable, and so on until
    /// every backend has appeared once. The order is deterministic per
    /// key, so concurrent routers retry onto the *same* sibling — on a
    /// fleet whose backends replicated a shared warm start, the sibling
    /// holds the model too and the verdict stays bit-identical.
    pub fn candidates(&self, tenant: &TenantId, model_id: &str) -> Vec<usize> {
        let hash = Self::key_hash(tenant, model_id);
        let start = self.points.partition_point(|&(point, _)| point < hash);
        let mut seen = vec![false; self.backends];
        let mut order = Vec::with_capacity(self.backends);
        for offset in 0..self.points.len() {
            let (_, backend) = self.points[(start + offset) % self.points.len()];
            let backend = backend as usize;
            if !seen[backend] {
                seen[backend] = true;
                order.push(backend);
                if order.len() == self.backends {
                    break;
                }
            }
        }
        order
    }
}

/// Splits docket positions `0..total` into per-backend shards. `assign`
/// maps a dispute index to its backend; the returned list holds, per
/// backend that received anything, the original indices of its disputes
/// in input order. Shards come out ordered by backend index, so two
/// routers splitting the same docket produce the same shards.
pub fn split_indices(total: usize, mut assign: impl FnMut(usize) -> usize) -> Vec<(usize, Vec<usize>)> {
    let mut shards: Vec<(usize, Vec<usize>)> = Vec::new();
    for index in 0..total {
        let backend = assign(index);
        match shards.binary_search_by_key(&backend, |&(b, _)| b) {
            Ok(at) => shards[at].1.push(index),
            Err(at) => shards.insert(at, (backend, vec![index])),
        }
    }
    shards
}

/// Scatters one shard's verdicts back into the full docket's slots:
/// `values[k]` lands at `slots[indices[k]]`. Refuses length mismatches,
/// out-of-range indices and double-filled slots — any of those means the
/// shard bookkeeping (or the backend's verdict count) is corrupt, and a
/// router must fail the docket rather than misattribute verdicts.
pub fn scatter<T>(slots: &mut [Option<T>], indices: &[usize], values: Vec<T>) -> WatermarkResult<()> {
    if indices.len() != values.len() {
        return Err(WatermarkError::ProtocolViolation {
            detail: format!(
                "shard answered {} verdicts for {} disputes",
                values.len(),
                indices.len()
            ),
        });
    }
    let total = slots.len();
    for (&index, value) in indices.iter().zip(values) {
        let slot = slots.get_mut(index).ok_or_else(|| WatermarkError::ProtocolViolation {
            detail: format!("shard names dispute {index} of a {total}-dispute docket"),
        })?;
        if slot.is_some() {
            return Err(WatermarkError::ProtocolViolation {
                detail: format!("dispute {index} received two verdicts"),
            });
        }
        *slot = Some(value);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(name: &str) -> TenantId {
        TenantId::new(name).unwrap()
    }

    #[test]
    fn empty_rings_are_refused() {
        assert!(HashRing::new(0, 64).is_err());
        assert!(HashRing::new(2, 0).is_err());
    }

    #[test]
    fn placement_is_deterministic_and_covers_every_backend() {
        let ring = HashRing::new(4, 64).unwrap();
        let again = HashRing::new(4, 64).unwrap();
        let mut hit = [0usize; 4];
        for i in 0..1000 {
            let id = format!("model-{i}");
            let home = ring.home(&TenantId::anonymous(), &id);
            assert_eq!(home, again.home(&TenantId::anonymous(), &id));
            hit[home] += 1;
        }
        // 64 virtual points per backend spread 1000 keys widely enough
        // that no backend can end up starved or hoarding.
        for (backend, count) in hit.iter().enumerate() {
            assert!(
                (100..=500).contains(count),
                "backend {backend} received {count} of 1000 keys"
            );
        }
    }

    #[test]
    fn tenant_is_part_of_the_key() {
        let ring = HashRing::new(8, 64).unwrap();
        let spread: std::collections::HashSet<usize> = (0..32)
            .map(|i| ring.home(&tenant(&format!("t{i}")), "shared-model-id"))
            .collect();
        assert!(spread.len() > 1, "tenant must influence placement");
    }

    #[test]
    fn candidates_start_at_home_and_enumerate_every_backend_once() {
        let ring = HashRing::new(5, 32).unwrap();
        for i in 0..50 {
            let id = format!("m{i}");
            let candidates = ring.candidates(&TenantId::anonymous(), &id);
            assert_eq!(candidates[0], ring.home(&TenantId::anonymous(), &id));
            let mut sorted = candidates.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        }
    }

    /// The consistency property that makes retry-on-sibling safe: for a
    /// key NOT homed on a dead backend, skipping that backend leaves the
    /// chosen backend unchanged.
    #[test]
    fn skipping_a_dead_backend_only_remaps_its_own_keys() {
        let ring = HashRing::new(3, 64).unwrap();
        let dead = 1usize;
        for i in 0..200 {
            let id = format!("m{i}");
            let candidates = ring.candidates(&TenantId::anonymous(), &id);
            let surviving = candidates.iter().copied().find(|&b| b != dead).unwrap();
            if candidates[0] != dead {
                assert_eq!(surviving, candidates[0]);
            }
        }
    }

    #[test]
    fn split_preserves_input_order_and_scatter_restores_it() {
        let total = 17;
        let shards = split_indices(total, |i| i % 3);
        assert_eq!(shards.len(), 3);
        for (backend, indices) in &shards {
            assert!(indices.windows(2).all(|w| w[0] < w[1]));
            assert!(indices.iter().all(|i| i % 3 == *backend));
        }
        let mut slots: Vec<Option<usize>> = vec![None; total];
        for (_, indices) in &shards {
            // The shard's "verdicts" are just the original indices, so a
            // correct scatter reproduces the identity.
            scatter(&mut slots, indices, indices.clone()).unwrap();
        }
        let stitched: Vec<usize> = slots.into_iter().map(Option::unwrap).collect();
        assert_eq!(stitched, (0..total).collect::<Vec<_>>());
    }

    #[test]
    fn scatter_refuses_corrupt_shards() {
        let mut slots: Vec<Option<u8>> = vec![None; 3];
        assert!(scatter(&mut slots, &[0, 1], vec![7]).is_err());
        assert!(scatter(&mut slots, &[9], vec![7]).is_err());
        scatter(&mut slots, &[2], vec![7]).unwrap();
        assert!(scatter(&mut slots, &[2], vec![8]).is_err());
    }
}
