//! Versioned on-disk persistence for every artefact an ownership dispute
//! needs: models ([`RandomForest`](wdte_trees::RandomForest) /
//! [`CompiledForest`](wdte_trees::CompiledForest)), [`Signature`](crate::Signature)s,
//! trigger sets and full [`OwnershipClaim`](crate::OwnershipClaim)s.
//!
//! The paper's deployment story is train-once / verify-many: the owner
//! releases a serialized model, and later a judge resolves a dispute from
//! files alone, without the training process in memory. This module gives
//! every serde-capable type two interchangeable encodings behind one
//! version-checked container:
//!
//! * **JSON** (`Format::Json`) — a human-auditable envelope
//!   `{"magic": "WDTE", "version": 1, "payload": ...}`. Finite `f64`s use
//!   Rust's shortest round-tripping decimal form, infinities are written as
//!   `±1e999`, and `NaN` as `null`, so predictions survive the round-trip
//!   exactly.
//! * **Binary** (`Format::Binary`) — a compact little-endian encoding with
//!   the header `"WDTE"` + `'B'` + `u16` version, followed by a
//!   tag-length-value rendering of the serde data model. `f64`s are stored
//!   as their raw IEEE-754 bit pattern, preserving even `NaN` payloads.
//!
//! **Version policy:** the header version is bumped whenever the encoding
//! of existing data changes shape. Readers accept the versions in
//! `[MIN_SUPPORTED_VERSION, FORMAT_VERSION]` and fail with
//! [`WatermarkError::UnsupportedFormatVersion`] otherwise — a dispute must
//! never be decided on a silently misread artefact. Version 2 added the
//! k-class label model: model payloads carry a `num_classes` field, and
//! version-1 artefacts (which are binary by construction) load with
//! `num_classes = 2`. Corrupted or truncated files surface as
//! [`WatermarkError::CorruptedArtifact`], never as a panic.

use crate::error::{WatermarkError, WatermarkResult};
use serde::{Deserialize, Serialize, Value};
use std::path::Path;

/// Magic bytes opening every binary artefact (and the `"magic"` field of
/// the JSON envelope).
pub const MAGIC: &[u8; 4] = b"WDTE";

/// Container tag of the binary encoding, directly after the magic bytes.
pub const BINARY_TAG: u8 = b'B';

/// Format version this build writes (and the newest it accepts).
pub const FORMAT_VERSION: u16 = 2;

/// Oldest format version this build still reads. Version-1 artefacts
/// predate the k-class label model and decode as binary (`k = 2`).
pub const MIN_SUPPORTED_VERSION: u16 = 1;

/// Nesting depth accepted by the binary decoder; deeper input is treated
/// as corrupted rather than risking unbounded recursion.
const MAX_DEPTH: usize = 128;

/// On-disk encoding of an artefact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Format {
    /// Human-auditable JSON envelope.
    Json,
    /// Compact little-endian binary encoding.
    Binary,
}

/// Serializes `value` into a self-describing, version-headered byte
/// buffer in the chosen format.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T, format: Format) -> Vec<u8> {
    match format {
        Format::Json => {
            let envelope = Value::Map(vec![
                ("magic".to_string(), Value::Str("WDTE".to_string())),
                ("version".to_string(), Value::U64(u64::from(FORMAT_VERSION))),
                ("payload".to_string(), value.to_value()),
            ]);
            let text = serde_json::to_string_pretty(&ValueCarrier(envelope))
                .expect("the value data model always serializes");
            text.into_bytes()
        }
        Format::Binary => {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(MAGIC);
            bytes.push(BINARY_TAG);
            bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            encode_value(&value.to_value(), &mut bytes);
            bytes
        }
    }
}

/// Deserializes an artefact from bytes, sniffing the container format from
/// the header. Fails with typed errors on unknown containers, version
/// mismatches, and corrupted or truncated payloads.
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> WatermarkResult<T> {
    let value = payload_value(bytes)?;
    T::from_value(&value).map_err(|err| WatermarkError::CorruptedArtifact {
        detail: err.to_string(),
    })
}

/// Detects the container format of a byte buffer, if recognizable.
pub fn detect_format(bytes: &[u8]) -> Option<Format> {
    if bytes.starts_with(MAGIC) {
        Some(Format::Binary)
    } else if bytes.iter().find(|b| !b.is_ascii_whitespace()) == Some(&b'{') {
        Some(Format::Json)
    } else {
        None
    }
}

/// Extracts the payload [`Value`] after validating magic and version.
fn payload_value(bytes: &[u8]) -> WatermarkResult<Value> {
    match detect_format(bytes) {
        Some(Format::Binary) => {
            let rest = &bytes[MAGIC.len()..];
            let (&tag, rest) = rest.split_first().ok_or_else(|| truncated("container tag"))?;
            if tag != BINARY_TAG {
                return Err(WatermarkError::UnrecognizedFormat {
                    detail: format!("unknown container tag {:#04x} after WDTE magic", tag),
                });
            }
            if rest.len() < 2 {
                return Err(truncated("format version"));
            }
            let found = u16::from_le_bytes([rest[0], rest[1]]);
            check_version(found)?;
            let mut cursor = Cursor {
                bytes: &rest[2..],
                pos: 0,
            };
            let value = decode_value(&mut cursor, 0)?;
            if cursor.pos != cursor.bytes.len() {
                return Err(WatermarkError::CorruptedArtifact {
                    detail: format!(
                        "{} trailing bytes after the payload",
                        cursor.bytes.len() - cursor.pos
                    ),
                });
            }
            Ok(value)
        }
        Some(Format::Json) => {
            let text = std::str::from_utf8(bytes).map_err(|_| WatermarkError::UnrecognizedFormat {
                detail: "file is neither valid UTF-8 JSON nor WDTE binary".to_string(),
            })?;
            let envelope =
                serde_json::parse_value_str(text).map_err(|err| WatermarkError::CorruptedArtifact {
                    detail: format!("invalid JSON: {err}"),
                })?;
            let entries = envelope.as_map().ok_or_else(|| WatermarkError::UnrecognizedFormat {
                detail: "JSON artefact must be an envelope object".to_string(),
            })?;
            let magic = entries
                .iter()
                .find(|(key, _)| key == "magic")
                .and_then(|(_, value)| value.as_str());
            if magic != Some("WDTE") {
                return Err(WatermarkError::UnrecognizedFormat {
                    detail: "JSON envelope is missing the \"magic\": \"WDTE\" field".to_string(),
                });
            }
            let found = entries
                .iter()
                .find(|(key, _)| key == "version")
                .and_then(|(_, value)| value.as_u64())
                .ok_or_else(|| WatermarkError::CorruptedArtifact {
                    detail: "JSON envelope is missing a numeric \"version\" field".to_string(),
                })?;
            let found = u16::try_from(found).map_err(|_| WatermarkError::UnsupportedFormatVersion {
                found: u16::MAX,
                supported: FORMAT_VERSION,
            })?;
            check_version(found)?;
            let payload = entries
                .iter()
                .find(|(key, _)| key == "payload")
                .map(|(_, value)| value.clone())
                .ok_or_else(|| WatermarkError::CorruptedArtifact {
                    detail: "JSON envelope has no \"payload\" field".to_string(),
                })?;
            Ok(payload)
        }
        None => Err(WatermarkError::UnrecognizedFormat {
            detail: "file starts with neither the WDTE magic nor a JSON envelope".to_string(),
        }),
    }
}

fn check_version(found: u16) -> WatermarkResult<()> {
    if !(MIN_SUPPORTED_VERSION..=FORMAT_VERSION).contains(&found) {
        return Err(WatermarkError::UnsupportedFormatVersion {
            found,
            supported: FORMAT_VERSION,
        });
    }
    Ok(())
}

fn truncated(what: &str) -> WatermarkError {
    WatermarkError::CorruptedArtifact {
        detail: format!("truncated file: missing {what}"),
    }
}

/// Writes an artefact to `path` in the chosen format.
pub fn save<T: Serialize + ?Sized>(
    path: impl AsRef<Path>,
    value: &T,
    format: Format,
) -> WatermarkResult<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|err| io_error(path, &err))?;
        }
    }
    std::fs::write(path, to_bytes(value, format)).map_err(|err| io_error(path, &err))
}

/// Reads an artefact from `path`, sniffing the format from the header.
pub fn load<T: Deserialize>(path: impl AsRef<Path>) -> WatermarkResult<T> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|err| io_error(path, &err))?;
    from_bytes(&bytes)
}

fn io_error(path: &Path, err: &std::io::Error) -> WatermarkError {
    WatermarkError::Io {
        path: path.display().to_string(),
        message: err.to_string(),
    }
}

/// Thin wrapper letting a raw [`Value`] flow through the `Serialize`
/// plumbing unchanged.
struct ValueCarrier(Value);

impl Serialize for ValueCarrier {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// Encodes one [`Value`] with the binary tag-length-value codec, without
/// any container header. The wire protocol ([`crate::proto`]) frames its
/// payloads with this exact codec, so artefacts and wire messages share
/// one decoder (and its bounds/allocation hardening).
pub(crate) fn encode_value_bytes(value: &Value) -> Vec<u8> {
    let mut bytes = Vec::new();
    encode_value(value, &mut bytes);
    bytes
}

/// Decodes one header-less [`Value`] produced by [`encode_value_bytes`],
/// rejecting trailing bytes. Shares all the hardening of the artefact
/// decoder: bounds-checked lengths, capped up-front allocations and a
/// nesting-depth limit.
pub(crate) fn decode_value_bytes(bytes: &[u8]) -> WatermarkResult<Value> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let value = decode_value(&mut cursor, 0)?;
    if cursor.pos != cursor.bytes.len() {
        return Err(WatermarkError::CorruptedArtifact {
            detail: format!(
                "{} trailing bytes after the payload",
                cursor.bytes.len() - cursor.pos
            ),
        });
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Binary Value codec (little-endian, tag-length-value)
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_U64: u8 = 3;
const TAG_I64: u8 = 4;
const TAG_F64: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_SEQ: u8 = 7;
const TAG_MAP: u8 = 8;

fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::U64(v) => {
            out.push(TAG_U64);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::I64(v) => {
            out.push(TAG_I64);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::F64(v) => {
            out.push(TAG_F64);
            // Raw IEEE-754 bits: every f64 (including NaN payloads and
            // signed zeros) round-trips exactly.
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            out.extend_from_slice(&(items.len() as u64).to_le_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Map(entries) => {
            out.push(TAG_MAP);
            out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
            for (key, item) in entries {
                out.extend_from_slice(&(key.len() as u64).to_le_bytes());
                out.extend_from_slice(key.as_bytes());
                encode_value(item, out);
            }
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, count: usize) -> WatermarkResult<&'a [u8]> {
        let end =
            self.pos
                .checked_add(count)
                .filter(|&end| end <= self.bytes.len())
                .ok_or_else(|| WatermarkError::CorruptedArtifact {
                    detail: format!(
                        "truncated payload: wanted {count} bytes at offset {}, file has {}",
                        self.pos,
                        self.bytes.len()
                    ),
                })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn take_u64(&mut self) -> WatermarkResult<u64> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads a length field, rejecting values that cannot possibly fit in
    /// the remaining bytes (each encoded element needs at least one byte),
    /// so corrupted lengths fail fast instead of attempting huge
    /// allocations.
    fn take_len(&mut self) -> WatermarkResult<usize> {
        let raw = self.take_u64()?;
        let remaining = (self.bytes.len() - self.pos) as u64;
        if raw > remaining {
            return Err(WatermarkError::CorruptedArtifact {
                detail: format!("length {raw} exceeds the {remaining} bytes left in the file"),
            });
        }
        Ok(raw as usize)
    }

    fn take_string(&mut self) -> WatermarkResult<String> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WatermarkError::CorruptedArtifact {
            detail: "string payload is not valid UTF-8".to_string(),
        })
    }
}

fn decode_value(cursor: &mut Cursor<'_>, depth: usize) -> WatermarkResult<Value> {
    if depth > MAX_DEPTH {
        return Err(WatermarkError::CorruptedArtifact {
            detail: format!("payload nests deeper than {MAX_DEPTH} levels"),
        });
    }
    let tag = cursor.take(1)?[0];
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_U64 => Ok(Value::U64(cursor.take_u64()?)),
        TAG_I64 => Ok(Value::I64(cursor.take_u64()? as i64)),
        TAG_F64 => Ok(Value::F64(f64::from_bits(cursor.take_u64()?))),
        TAG_STR => Ok(Value::Str(cursor.take_string()?)),
        TAG_SEQ => {
            let len = cursor.take_len()?;
            // `take_len` bounds `len` by the remaining *bytes*, but one
            // `Value` is ~32–56× larger than its one-byte minimum
            // encoding; capping the up-front reservation keeps a crafted
            // length from amplifying into a multi-gigabyte allocation
            // before the first element fails to decode.
            let mut items = Vec::with_capacity(len.min(4096));
            for _ in 0..len {
                items.push(decode_value(cursor, depth + 1)?);
            }
            Ok(Value::Seq(items))
        }
        TAG_MAP => {
            let len = cursor.take_len()?;
            let mut entries = Vec::with_capacity(len.min(4096));
            for _ in 0..len {
                let key = cursor.take_string()?;
                let value = decode_value(cursor, depth + 1)?;
                entries.push((key, value));
            }
            Ok(Value::Map(entries))
        }
        other => Err(WatermarkError::CorruptedArtifact {
            detail: format!("unknown value tag {other:#04x}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::Signature;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn both_formats_round_trip_a_signature() {
        let signature = Signature::random(24, 0.5, &mut SmallRng::seed_from_u64(7));
        for format in [Format::Json, Format::Binary] {
            let bytes = to_bytes(&signature, format);
            assert_eq!(detect_format(&bytes), Some(format));
            let restored: Signature = from_bytes(&bytes).unwrap();
            assert_eq!(restored, signature, "format {format:?}");
        }
    }

    #[test]
    fn binary_preserves_f64_bit_patterns() {
        let specials = vec![
            0.0f64,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            1.0 / 3.0,
            f64::from_bits(0x7ff8_0000_dead_beef), // NaN with payload
        ];
        let bytes = to_bytes(&specials, Format::Binary);
        let restored: Vec<f64> = from_bytes(&bytes).unwrap();
        let original_bits: Vec<u64> = specials.iter().map(|v| v.to_bits()).collect();
        let restored_bits: Vec<u64> = restored.iter().map(|v| v.to_bits()).collect();
        assert_eq!(restored_bits, original_bits);
    }

    #[test]
    fn json_preserves_finite_values_and_non_finite_classes() {
        let values = vec![0.25f64, -1.5e-200, f64::INFINITY, f64::NEG_INFINITY, f64::NAN];
        let bytes = to_bytes(&values, Format::Json);
        let restored: Vec<f64> = from_bytes(&bytes).unwrap();
        assert_eq!(restored[0].to_bits(), values[0].to_bits());
        assert_eq!(restored[1].to_bits(), values[1].to_bits());
        assert_eq!(restored[2], f64::INFINITY);
        assert_eq!(restored[3], f64::NEG_INFINITY);
        assert!(restored[4].is_nan());
    }

    #[test]
    fn version_mismatch_is_a_typed_error() {
        let mut binary = to_bytes(&42u32, Format::Binary);
        binary[5] = 0xFF; // bump the little-endian version field
        binary[6] = 0x00;
        match from_bytes::<u32>(&binary).unwrap_err() {
            WatermarkError::UnsupportedFormatVersion { found, supported } => {
                assert_eq!(found, 0x00FF);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }

        let json = String::from_utf8(to_bytes(&42u32, Format::Json)).unwrap();
        let bumped = json.replace(&format!("\"version\": {FORMAT_VERSION}"), "\"version\": 999");
        assert_ne!(json, bumped, "the envelope must contain the version field");
        match from_bytes::<u32>(bumped.as_bytes()).unwrap_err() {
            WatermarkError::UnsupportedFormatVersion { found, .. } => assert_eq!(found, 999),
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn version_1_artifacts_still_load() {
        // Rewind the header to the pre-k-class version: a payload whose
        // shape did not change must decode under the widened window.
        let mut binary = to_bytes(&vec![1u64, 2, 3], Format::Binary);
        binary[5..7].copy_from_slice(&MIN_SUPPORTED_VERSION.to_le_bytes());
        assert_eq!(from_bytes::<Vec<u64>>(&binary).unwrap(), vec![1, 2, 3]);

        let json = String::from_utf8(to_bytes(&7u32, Format::Json)).unwrap();
        let rewound = json.replace(
            &format!("\"version\": {FORMAT_VERSION}"),
            &format!("\"version\": {MIN_SUPPORTED_VERSION}"),
        );
        assert_ne!(json, rewound);
        assert_eq!(from_bytes::<u32>(rewound.as_bytes()).unwrap(), 7);

        // Versions below the window still fail.
        let mut ancient = to_bytes(&7u32, Format::Binary);
        ancient[5..7].copy_from_slice(&0u16.to_le_bytes());
        assert!(matches!(
            from_bytes::<u32>(&ancient).unwrap_err(),
            WatermarkError::UnsupportedFormatVersion { found: 0, .. }
        ));
    }

    #[test]
    fn truncation_and_corruption_are_typed_errors() {
        let bytes = to_bytes(&vec![1.0f64, 2.0, 3.0], Format::Binary);
        for cut in [0, 3, 6, bytes.len() / 2, bytes.len() - 1] {
            let err = from_bytes::<Vec<f64>>(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    WatermarkError::CorruptedArtifact { .. } | WatermarkError::UnrecognizedFormat { .. }
                ),
                "cut {cut} produced {err:?}"
            );
        }
        // Unknown value tag inside an intact header.
        let mut garbled = bytes.clone();
        garbled[7] = 0x3F;
        assert!(matches!(
            from_bytes::<Vec<f64>>(&garbled).unwrap_err(),
            WatermarkError::CorruptedArtifact { .. }
        ));
        // Wrong magic entirely.
        assert!(matches!(
            from_bytes::<u32>(b"ELF\x7f....").unwrap_err(),
            WatermarkError::UnrecognizedFormat { .. }
        ));
    }

    #[test]
    fn absurd_length_fields_fail_instead_of_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(BINARY_TAG);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.push(TAG_SEQ);
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            from_bytes::<Vec<u64>>(&bytes).unwrap_err(),
            WatermarkError::CorruptedArtifact { .. }
        ));
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(BINARY_TAG);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        for _ in 0..(MAX_DEPTH + 8) {
            bytes.push(TAG_SEQ);
            bytes.extend_from_slice(&1u64.to_le_bytes());
        }
        bytes.push(TAG_NULL);
        assert!(matches!(
            from_bytes::<Vec<u64>>(&bytes).unwrap_err(),
            WatermarkError::CorruptedArtifact { .. }
        ));
    }

    #[test]
    fn deeply_nested_json_is_rejected_not_a_stack_overflow() {
        let mut hostile = String::from("{\"magic\": \"WDTE\", \"version\": 1, \"payload\": ");
        hostile.push_str(&"[".repeat(100_000));
        assert!(matches!(
            from_bytes::<Vec<u64>>(hostile.as_bytes()).unwrap_err(),
            WatermarkError::CorruptedArtifact { .. }
        ));
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join(format!("wdte-persist-test-{}", std::process::id()));
        let signature = Signature::from_identity("persist-test@example", 16);
        for (name, format) in [("sig.json", Format::Json), ("sig.wdte", Format::Binary)] {
            let path = dir.join(name);
            save(&path, &signature, format).unwrap();
            let restored: Signature = load(&path).unwrap();
            assert_eq!(restored, signature);
        }
        assert!(matches!(
            load::<Signature>(dir.join("missing.wdte")).unwrap_err(),
            WatermarkError::Io { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
