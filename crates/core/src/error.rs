//! Error type of the watermarking scheme.

use std::fmt;

/// Errors produced during watermark creation or verification.
#[derive(Debug, Clone, PartialEq)]
pub enum WatermarkError {
    /// The signature length does not match the requested ensemble size.
    SignatureLengthMismatch {
        /// Number of bits in the signature.
        signature_bits: usize,
        /// Number of trees requested.
        num_trees: usize,
    },
    /// The training set is too small for the requested trigger-set size.
    TriggerTooLarge {
        /// Requested trigger-set size.
        requested: usize,
        /// Available training instances.
        available: usize,
    },
    /// The training set is empty or otherwise unusable.
    EmptyTrainingSet,
    /// The weighting loop of `TrainWithTrigger` could not force the required
    /// behaviour on the trigger set within the configured budget.
    TriggerForcingFailed {
        /// Which of the two sub-ensembles failed (`"T0"` or `"T1"`).
        ensemble: &'static str,
        /// Number of retraining rounds performed.
        rounds: usize,
        /// Fraction of (tree, trigger instance) pairs already compliant.
        compliance: f64,
    },
    /// A degenerate signature (all zeros or all ones) was rejected by a
    /// caller that requires both sub-ensembles to be non-empty.
    DegenerateSignature,
    /// Reading or writing a persisted artefact — or a protocol socket —
    /// failed at the I/O layer.
    Io {
        /// Path of the file (or `"socket"` / the peer address) involved.
        path: String,
        /// Operating-system error message.
        message: String,
    },
    /// The file does not look like a WDTE artefact (wrong magic bytes /
    /// unknown container format).
    UnrecognizedFormat {
        /// What was found instead.
        detail: String,
    },
    /// The artefact was written by a different (usually newer) format
    /// version than this build supports.
    UnsupportedFormatVersion {
        /// Version recorded in the file header.
        found: u16,
        /// Version this build reads and writes.
        supported: u16,
    },
    /// The artefact header is valid but the payload is truncated,
    /// malformed, or fails structural validation.
    CorruptedArtifact {
        /// What went wrong while decoding.
        detail: String,
    },
    /// A dispute referenced a model id that is not registered with the
    /// [`crate::DisputeService`].
    UnknownModel {
        /// The model id the claim was filed against.
        model_id: String,
    },
    /// A docket exceeded the service's configured
    /// [`max_docket`](crate::service::DisputeServiceBuilder::max_docket)
    /// cap and was refused whole, before resolving anything.
    DocketTooLarge {
        /// Number of disputes in the refused docket.
        size: usize,
        /// The configured cap.
        max: usize,
    },
    /// A wire frame violated the dispute-resolution protocol: bad magic,
    /// truncated header or payload, trailing bytes, or a payload that does
    /// not decode as the expected message.
    ProtocolViolation {
        /// What was wrong with the frame.
        detail: String,
    },
    /// A wire frame was sent by a peer speaking a different (usually
    /// newer) protocol version than this build supports.
    UnsupportedProtocolVersion {
        /// Version announced in the frame header.
        found: u16,
        /// Version this build speaks.
        supported: u16,
    },
    /// A wire frame announced a payload larger than the receiver's
    /// configured cap; refused before any allocation.
    FrameTooLarge {
        /// Announced payload size in bytes.
        size: u64,
        /// The receiver's cap in bytes.
        max: u64,
    },
    /// A remote judge reported a failure that has no structured mapping on
    /// this side (e.g. an internal server error rendered as text).
    Remote {
        /// The error message as reported by the peer.
        message: String,
    },
    /// A frame failed authentication: unknown tenant, bad or missing HMAC
    /// tag, or a replayed (non-monotonic) sequence number.
    AuthenticationFailed {
        /// What failed — kept deliberately coarse so the error cannot be
        /// used as a padding/length oracle against the tag.
        detail: String,
    },
    /// A request crossed a tenant boundary: the caller asked about a model
    /// (or another resource) owned by a different tenant namespace.
    Forbidden {
        /// What was refused.
        detail: String,
    },
    /// A per-tenant quota would be exceeded; refused before allocating,
    /// like the frame caps.
    QuotaExceeded {
        /// Which quota axis was hit (`"models"`, `"docket"`,
        /// `"claim-bytes"`, `"in-flight"`).
        resource: String,
        /// Usage the request would have reached.
        used: u64,
        /// The configured per-tenant limit.
        limit: u64,
    },
}

impl fmt::Display for WatermarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatermarkError::SignatureLengthMismatch { signature_bits, num_trees } => write!(
                f,
                "signature has {signature_bits} bits but the ensemble has {num_trees} trees"
            ),
            WatermarkError::TriggerTooLarge { requested, available } => {
                write!(f, "trigger set of {requested} instances requested but only {available} available")
            }
            WatermarkError::EmptyTrainingSet => write!(f, "training set is empty"),
            WatermarkError::TriggerForcingFailed { ensemble, rounds, compliance } => write!(
                f,
                "could not force trigger behaviour on {ensemble} after {rounds} rounds (compliance {:.1}%)",
                compliance * 100.0
            ),
            WatermarkError::DegenerateSignature => {
                write!(f, "signature must contain at least one 0 bit and at least one 1 bit")
            }
            WatermarkError::Io { path, message } => {
                write!(f, "I/O error on `{path}`: {message}")
            }
            WatermarkError::UnrecognizedFormat { detail } => {
                write!(f, "not a WDTE artefact: {detail}")
            }
            WatermarkError::UnsupportedFormatVersion { found, supported } => write!(
                f,
                "artefact uses format version {found} but this build supports version {supported}"
            ),
            WatermarkError::CorruptedArtifact { detail } => {
                write!(f, "corrupted artefact: {detail}")
            }
            WatermarkError::UnknownModel { model_id } => {
                write!(f, "no model registered under id `{model_id}`")
            }
            WatermarkError::DocketTooLarge { size, max } => {
                write!(f, "docket of {size} disputes exceeds the service cap of {max}")
            }
            WatermarkError::ProtocolViolation { detail } => {
                write!(f, "protocol violation: {detail}")
            }
            WatermarkError::UnsupportedProtocolVersion { found, supported } => write!(
                f,
                "peer speaks protocol version {found} but this build supports version {supported}"
            ),
            WatermarkError::FrameTooLarge { size, max } => {
                write!(f, "frame payload of {size} bytes exceeds the {max}-byte cap")
            }
            WatermarkError::Remote { message } => {
                write!(f, "remote judge reported: {message}")
            }
            WatermarkError::AuthenticationFailed { detail } => {
                write!(f, "frame authentication failed: {detail}")
            }
            WatermarkError::Forbidden { detail } => {
                write!(f, "forbidden: {detail}")
            }
            WatermarkError::QuotaExceeded { resource, used, limit } => write!(
                f,
                "tenant quota exceeded on `{resource}`: {used} > limit {limit}"
            ),
        }
    }
}

impl std::error::Error for WatermarkError {}

/// Convenience result alias for the watermarking crate.
pub type WatermarkResult<T> = Result<T, WatermarkError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = WatermarkError::SignatureLengthMismatch {
            signature_bits: 8,
            num_trees: 16,
        };
        assert!(err.to_string().contains('8') && err.to_string().contains("16"));
        let err = WatermarkError::TriggerForcingFailed {
            ensemble: "T1",
            rounds: 30,
            compliance: 0.875,
        };
        assert!(err.to_string().contains("T1") && err.to_string().contains("87.5"));
    }

    #[test]
    fn errors_compare() {
        assert_eq!(WatermarkError::EmptyTrainingSet, WatermarkError::EmptyTrainingSet);
        assert_ne!(
            WatermarkError::EmptyTrainingSet,
            WatermarkError::DegenerateSignature
        );
    }
}
