//! Configuration of the watermark embedding procedure.

use serde::{Deserialize, Serialize};
use wdte_trees::{FeatureSubset, ParamGrid, TreeParams};

/// Upper bound on a bumped per-sample weight. Without a clamp a
/// multiplicative schedule grows without bound — `Multiplicative(3.0)`
/// overflows `f64` to `inf` after ~650 rounds, and an infinite weight
/// poisons every weighted-impurity computation with NaNs. `1e12` is far
/// above any weight needed to isolate a trigger instance (unit weights on
/// the rest of the training set) while leaving ~4 decimal digits of
/// headroom before `f64` precision loss in weight sums.
pub const MAX_TRIGGER_WEIGHT: f64 = 1e12;

/// How the per-sample weights of trigger instances grow between retraining
/// rounds of `TrainWithTrigger`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WeightSchedule {
    /// Add a constant to the trigger weights every round (the paper's
    /// `W[(x, y)] ← W[(x, y)] + 1`).
    Additive(f64),
    /// Multiply the trigger weights by a constant every round. Converges in
    /// far fewer (expensive) retraining rounds and reaches the same fixed
    /// point: trigger weights large enough that every tree isolates the
    /// trigger instances.
    Multiplicative(f64),
}

impl WeightSchedule {
    /// Applies one round of the schedule to a weight, clamped to
    /// [`MAX_TRIGGER_WEIGHT`] so arbitrarily many rounds stay finite.
    pub fn bump(&self, weight: f64) -> f64 {
        let bumped = match *self {
            WeightSchedule::Additive(step) => weight + step,
            WeightSchedule::Multiplicative(factor) => weight * factor,
        };
        bumped.min(MAX_TRIGGER_WEIGHT)
    }
}

/// Configuration of [`crate::Watermarker`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WatermarkConfig {
    /// Number of trees `m` of the watermarked ensemble; must equal the
    /// signature length.
    pub num_trees: usize,
    /// Size of the trigger set as a fraction of the training set
    /// (`k = trigger_fraction * |D_train|`, at least one instance).
    pub trigger_fraction: f64,
    /// Per-tree feature subset policy of the random forest.
    pub feature_subset: FeatureSubset,
    /// Hyper-parameter grid searched before embedding (`GridSearch` in
    /// Algorithm 1). `None` skips the search and uses [`Self::tree_params`]
    /// directly.
    pub grid: Option<ParamGrid>,
    /// Number of cross-validation folds used by the grid search.
    pub grid_folds: usize,
    /// Tree parameters used when no grid is given (and as the fallback
    /// template for grid results).
    pub tree_params: TreeParams,
    /// Whether to run the paper's `Adjust(H)` heuristic, shrinking the
    /// depth/leaf budget to `mean - std` of a standard ensemble so the
    /// `T0`/`T1` trees look alike.
    pub adjust_hyperparams: bool,
    /// Weight growth schedule of the trigger-forcing loop.
    pub weight_schedule: WeightSchedule,
    /// Maximum number of retraining rounds per sub-ensemble.
    pub max_weight_rounds: usize,
    /// Number of non-compliant rounds after which the structural budget is
    /// relaxed one step (an escape hatch the paper does not need to
    /// discuss; see DESIGN.md).
    pub relax_after: usize,
    /// When `true`, embedding fails with an error if full compliance on the
    /// trigger set cannot be reached; when `false`, the partially compliant
    /// model is returned and the diagnostics record the gap.
    pub strict: bool,
}

impl Default for WatermarkConfig {
    fn default() -> Self {
        Self {
            num_trees: 90,
            trigger_fraction: 0.02,
            feature_subset: FeatureSubset::Sqrt,
            grid: Some(ParamGrid::default()),
            grid_folds: 3,
            tree_params: TreeParams::default(),
            adjust_hyperparams: true,
            weight_schedule: WeightSchedule::Additive(1.0),
            max_weight_rounds: 60,
            relax_after: 20,
            strict: true,
        }
    }
}

impl WatermarkConfig {
    /// Paper-faithful defaults: 90 trees, 2% trigger set, grid search,
    /// additive weight growth.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// A fast preset for tests, examples and laptop-scale experiments:
    /// no grid search, bounded trees, multiplicative weight growth and a
    /// forgiving compliance policy.
    pub fn fast() -> Self {
        Self {
            num_trees: 16,
            trigger_fraction: 0.02,
            feature_subset: FeatureSubset::Sqrt,
            grid: None,
            grid_folds: 2,
            tree_params: TreeParams {
                max_depth: Some(8),
                max_leaves: Some(64),
                ..TreeParams::default()
            },
            adjust_hyperparams: true,
            weight_schedule: WeightSchedule::Multiplicative(3.0),
            max_weight_rounds: 25,
            relax_after: 8,
            strict: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_schedules_grow_weights() {
        assert_eq!(WeightSchedule::Additive(1.0).bump(3.0), 4.0);
        assert_eq!(WeightSchedule::Multiplicative(2.0).bump(3.0), 6.0);
    }

    #[test]
    fn bumped_weights_stay_finite_forever() {
        for schedule in [
            WeightSchedule::Multiplicative(3.0),
            WeightSchedule::Additive(1e11),
        ] {
            let mut weight = 1.0;
            for _ in 0..5_000 {
                weight = schedule.bump(weight);
                assert!(weight.is_finite());
                assert!(weight <= MAX_TRIGGER_WEIGHT);
            }
            assert_eq!(weight, MAX_TRIGGER_WEIGHT, "{schedule:?} reaches the clamp");
        }
    }

    #[test]
    fn paper_default_matches_evaluation_setup() {
        let config = WatermarkConfig::paper_default();
        assert_eq!(config.num_trees, 90);
        assert!((config.trigger_fraction - 0.02).abs() < 1e-12);
        assert!(config.grid.is_some());
        assert!(config.adjust_hyperparams);
        assert!(matches!(config.weight_schedule, WeightSchedule::Additive(step) if step == 1.0));
    }

    #[test]
    fn fast_preset_is_bounded() {
        let config = WatermarkConfig::fast();
        assert!(config.num_trees <= 32);
        assert!(config.grid.is_none());
        assert!(config.tree_params.max_depth.is_some());
        assert!(!config.strict);
    }
}
