//! # wdte-core
//!
//! The watermarking scheme of *Watermarking Decision Tree Ensembles*
//! (Calzavara, Cazzaro, Gera, Orlando — EDBT 2025): multi-bit, trigger-set
//! based watermark creation for random forests without bootstrap
//! (Algorithm 1), black-box verification, and the attack simulations of the
//! security evaluation (detection, suppression and forgery).
//!
//! ## Overview
//!
//! * [`Signature`] — the owner's bit string `σ`, one bit per tree.
//! * [`Watermarker`] / [`WatermarkConfig`] — watermark creation: grid
//!   search, the `Adjust(H)` heuristic, the `TrainWithTrigger` weighting
//!   loop and the interleaving of the `T0`/`T1` sub-ensembles.
//! * [`OwnershipClaim`] / [`verify_ownership`] — the black-box verification
//!   protocol between owner, suspect and judge, batched through the
//!   compiled inference path of `wdte-trees`.
//! * [`attack`] — the detection, suppression and forgery attacks evaluated
//!   in Section 4.2 of the paper.
//! * [`persist`] — the versioned on-disk format (JSON and little-endian
//!   binary) for models, signatures, trigger sets and claims, so disputes
//!   can be resolved from files alone.
//! * [`DisputeService`] — the concurrent dispute-resolution layer: a
//!   registry compiling each suspect model exactly once, with multi-claim
//!   fan-out across worker threads, built via [`DisputeService::builder`]
//!   (optionally warm-started from persisted artefacts).
//! * [`proto`] — the versioned wire protocol ("WDTP" frames) the
//!   `wdte-server` crate serves over TCP, making the judge independently
//!   deployable.
//! * [`tenant`] — the multi-tenant layer: HMAC-SHA-256 frame
//!   authentication, per-tenant namespaces and quotas, and the accounting
//!   behind the `Stats` request.
//! * [`fleet`] — horizontal-scale placement: the consistent-hash ring
//!   that assigns `(tenant, model id)` keys to backend judges, and the
//!   docket split/stitch helpers a fleet router uses to fan one docket
//!   across backends and reassemble verdicts in input order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod config;
pub mod error;
pub mod fleet;
pub mod persist;
pub mod proto;
pub mod service;
pub mod signature;
pub mod tenant;
pub mod verify;
pub mod watermark;

pub use attack::{
    detect_signature, evaluate_detection, evaluate_suppression, forge_trigger_set,
    forge_trigger_set_compiled, run_forgery_attack, DetectionFeature, DetectionReport,
    DetectionStrategy, ForgedInstance, ForgeryAttackConfig, ForgeryAttackResult, StructureOracle,
    SuppressionReport, SuppressionScore,
};
pub use config::{WatermarkConfig, WeightSchedule, MAX_TRIGGER_WEIGHT};
pub use error::{WatermarkError, WatermarkResult};
pub use fleet::HashRing;
pub use persist::{Format, FORMAT_VERSION};
pub use proto::{
    DisputeRef, DocketVerdict, PayloadDigest, Request, Response, WireFault, PROTOCOL_VERSION,
};
pub use service::{
    ClaimCache, Dispute, DisputeService, DisputeServiceBuilder, ManifestEntry, ModelManifest,
    SharedDispute, DEFAULT_BATCH_SHARD_ROWS, DEFAULT_CLAIM_CACHE_BYTES, MODEL_MANIFEST_FILE,
};
pub use signature::Signature;
pub use tenant::{KeyRing, TenantCounters, TenantId, TenantLedger, TenantQuotas, TenantStatsEntry};
pub use verify::{
    verify_ownership, verify_ownership_with_rng, ModelOracle, OwnershipClaim, VerificationReport,
};
pub use watermark::{
    adjust_hyperparameters, compiled_trigger_compliance, train_with_trigger, trigger_compliance,
    watermark_holds, EmbeddingDiagnostics, TriggerTrainingDiagnostics, WatermarkOutcome, Watermarker,
};
pub use wdte_trees::{Kernel, ResolvedKernel};

/// Commonly used types, re-exported for `use wdte_core::prelude::*`.
pub mod prelude {
    pub use crate::attack::{
        evaluate_detection, evaluate_suppression, run_forgery_attack, DetectionFeature, DetectionReport,
        DetectionStrategy, ForgeryAttackConfig, ForgeryAttackResult, SuppressionReport,
        SuppressionScore,
    };
    pub use crate::config::{WatermarkConfig, WeightSchedule};
    pub use crate::error::{WatermarkError, WatermarkResult};
    pub use crate::persist::{self, Format};
    pub use crate::proto;
    pub use crate::service::{Dispute, DisputeService, DisputeServiceBuilder, ModelManifest};
    pub use crate::signature::Signature;
    pub use crate::tenant::{KeyRing, TenantId, TenantQuotas};
    pub use crate::verify::{
        verify_ownership, verify_ownership_with_rng, ModelOracle, OwnershipClaim, VerificationReport,
    };
    pub use crate::watermark::{watermark_holds, WatermarkOutcome, Watermarker};
    pub use wdte_trees::{Kernel, ResolvedKernel};
}
