//! Property-based tests for the watermarking scheme.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte_core::{
    verify_ownership, watermark_holds, OwnershipClaim, Signature, WatermarkConfig, Watermarker,
};
use wdte_data::{Label, SyntheticSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_signatures_have_the_requested_ones_count(
        length in 1usize..200, ones_fraction in 0.0f64..1.0, seed in 0u64..1000
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let signature = Signature::random(length, ones_fraction, &mut rng);
        prop_assert_eq!(signature.len(), length);
        let expected = ((length as f64) * ones_fraction).round() as usize;
        prop_assert_eq!(signature.ones(), expected.min(length));
        prop_assert_eq!(signature.ones() + signature.zeros(), length);
    }

    #[test]
    fn required_predictions_flip_exactly_on_one_bits(bits in proptest::collection::vec(any::<bool>(), 1..64)) {
        let signature = Signature::from_bits(bits.clone());
        for (i, &bit) in bits.iter().enumerate() {
            for label in [Label::Positive, Label::Negative] {
                let required = signature.required_prediction(i, label);
                if bit {
                    prop_assert_eq!(required, label.flipped());
                } else {
                    prop_assert_eq!(required, label);
                }
            }
        }
    }

    #[test]
    fn hamming_distance_is_symmetric_and_bounded(
        a_bits in proptest::collection::vec(any::<bool>(), 32),
        b_bits in proptest::collection::vec(any::<bool>(), 32)
    ) {
        let a = Signature::from_bits(a_bits);
        let b = Signature::from_bits(b_bits);
        prop_assert_eq!(a.hamming_distance(&b), b.hamming_distance(&a));
        prop_assert!(a.hamming_distance(&b) <= 32);
        prop_assert_eq!(a.hamming_distance(&a), 0);
    }
}

proptest! {
    // Embedding is expensive; keep the case count small but still explore
    // several signatures and seeds.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn embedding_always_satisfies_the_watermark_property_and_verifies(
        seed in 0u64..50, ones_fraction in 0.2f64..0.8
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let dataset = SyntheticSpec::breast_cancer_like().scaled(0.5).generate(&mut rng);
        let (train, test) = dataset.split_stratified(0.75, &mut rng);
        let signature = Signature::random(8, ones_fraction, &mut rng);
        let config = WatermarkConfig { num_trees: 8, ..WatermarkConfig::fast() };
        let outcome = Watermarker::new(config).embed(&train, &signature, &mut rng).unwrap();
        prop_assert!(watermark_holds(&outcome.model, &signature, &outcome.trigger_set));
        let claim = OwnershipClaim::new(signature, outcome.trigger_set.clone(), test);
        prop_assert!(verify_ownership(&outcome.model, &claim).verified);
    }
}
