//! Property-based tests for the tree-learning substrate.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte_data::{Dataset, DenseMatrix, Label, SyntheticSpec};
use wdte_trees::{DecisionTree, ForestParams, RandomForest, TreeParams};

fn dataset_from(rows: Vec<Vec<f64>>, label_bits: Vec<bool>) -> Dataset {
    let labels: Vec<Label> = label_bits
        .iter()
        .map(|&b| if b { Label::Positive } else { Label::Negative })
        .collect();
    Dataset::new("prop", DenseMatrix::from_rows(&rows).unwrap(), labels).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn trees_always_respect_structural_budgets(
        rows in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 4), 10..60),
        label_bits in proptest::collection::vec(any::<bool>(), 60),
        max_depth in 1usize..6,
        max_leaves in 2usize..10
    ) {
        let n = rows.len();
        let dataset = dataset_from(rows, label_bits[..n].to_vec());
        let params = TreeParams {
            max_depth: Some(max_depth),
            max_leaves: Some(max_leaves),
            ..TreeParams::default()
        };
        let tree = DecisionTree::fit(&dataset, &params);
        prop_assert!(tree.depth() <= max_depth);
        prop_assert!(tree.num_leaves() <= max_leaves);
        // A binary tree with L leaves has 2L-1 nodes.
        prop_assert_eq!(tree.nodes().len(), 2 * tree.num_leaves() - 1);
    }

    #[test]
    fn unbounded_trees_fit_their_training_data_when_instances_are_distinct(
        seed in 0u64..500
    ) {
        // Distinct continuous instances are always separable by an
        // unbounded CART tree, so training accuracy must be 1.
        let dataset = SyntheticSpec::breast_cancer_like().scaled(0.15)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let tree = DecisionTree::fit(&dataset, &TreeParams::default());
        prop_assert_eq!(tree.accuracy(&dataset), 1.0);
    }

    #[test]
    fn leaf_regions_partition_the_feature_space(
        rows in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 3), 8..40),
        label_bits in proptest::collection::vec(any::<bool>(), 40),
        probes in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 3), 10)
    ) {
        let n = rows.len();
        let dataset = dataset_from(rows, label_bits[..n].to_vec());
        let tree = DecisionTree::fit(&dataset, &TreeParams::with_max_depth(4));
        let regions = tree.leaf_regions();
        for probe in &probes {
            let containing: Vec<_> = regions
                .iter()
                .filter(|r| {
                    r.bounds.iter().enumerate().all(|(f, &(lo, hi))| probe[f] > lo && probe[f] <= hi)
                })
                .collect();
            prop_assert_eq!(containing.len(), 1, "every point lies in exactly one leaf region");
            prop_assert_eq!(containing[0].label, tree.predict(probe));
        }
    }

    #[test]
    fn forest_majority_vote_matches_per_tree_votes(seed in 0u64..200, num_trees in 1usize..9) {
        let dataset = SyntheticSpec::breast_cancer_like().scaled(0.2)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xF00D);
        let forest = RandomForest::fit(&dataset, &ForestParams::with_trees(num_trees), &mut rng);
        for (instance, _) in dataset.iter().take(10) {
            let votes = forest.predict_all(instance);
            prop_assert_eq!(votes.len(), num_trees);
            let positives = votes.iter().filter(|&&v| v == Label::Positive).count();
            let expected = if 2 * positives > num_trees { Label::Positive } else { Label::Negative };
            prop_assert_eq!(forest.predict(instance), expected);
        }
    }

    #[test]
    fn heavily_weighted_samples_are_always_memorized(
        seed in 0u64..200,
        flip_index in 0usize..20
    ) {
        let dataset = SyntheticSpec::breast_cancer_like().scaled(0.2)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let flipped = dataset.with_labels_flipped_at(&[flip_index]).unwrap();
        let mut weights = vec![1.0; flipped.len()];
        weights[flip_index] = 10_000.0;
        let tree = DecisionTree::fit_weighted(&flipped, &weights, None, &TreeParams::default());
        prop_assert_eq!(tree.predict(flipped.instance(flip_index)), flipped.label(flip_index));
    }
}
