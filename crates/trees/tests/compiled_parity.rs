//! Property tests pinning the compiled inference path to the recursive
//! reference: for arbitrary datasets — including `NaN` and `±inf` feature
//! values — every compiled prediction must be bit-identical to the
//! pointer-tree walk, and serialization round-trips must preserve the
//! model's behaviour exactly.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte_data::{Dataset, DenseMatrix, Label};
use wdte_trees::{CompiledForest, ForestParams, RandomForest, TreeParams};

/// Feature values drawn from a finite range plus the non-finite specials
/// the split search and traversal must handle deterministically.
fn feature_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        -2.0f64..2.0,
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(0.0),
        Just(-0.0),
    ]
}

fn dataset_from(rows: Vec<Vec<f64>>, label_bits: &[bool]) -> Dataset {
    let labels: Vec<Label> = label_bits[..rows.len()]
        .iter()
        .map(|&b| if b { Label::Positive } else { Label::Negative })
        .collect();
    Dataset::new("parity", DenseMatrix::from_rows(&rows).unwrap(), labels).unwrap()
}

/// A k-class dataset with labels chosen by arbitrary picks reduced
/// modulo `num_classes`.
fn k_class_dataset_from(rows: Vec<Vec<f64>>, class_picks: &[u8], num_classes: usize) -> Dataset {
    let labels: Vec<Label> = class_picks[..rows.len()]
        .iter()
        .map(|&pick| Label::from_index(pick as usize % num_classes).unwrap())
        .collect();
    Dataset::with_classes(
        "parity-k",
        DenseMatrix::from_rows(&rows).unwrap(),
        labels,
        num_classes,
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compiled_batch_is_bit_identical_to_recursive_predictions(
        rows in proptest::collection::vec(proptest::collection::vec(feature_value(), 4), 6..48),
        probes in proptest::collection::vec(proptest::collection::vec(feature_value(), 4), 1..24),
        label_bits in proptest::collection::vec(any::<bool>(), 48),
        num_trees in 1usize..7,
        seed in 0u64..1000,
    ) {
        let dataset = dataset_from(rows, &label_bits);
        let params = ForestParams {
            num_trees,
            tree: TreeParams::with_max_depth(5),
            ..ForestParams::default()
        };
        let forest = RandomForest::fit(&dataset, &params, &mut SmallRng::seed_from_u64(seed));
        let compiled = CompiledForest::compile(&forest);

        // Training-set parity, through every batch entry point.
        prop_assert_eq!(compiled.predict_dataset(&dataset), forest.predict_dataset(&dataset));
        let batch = compiled.predict_all_batch(dataset.features());
        for (index, (row, _)) in dataset.iter().enumerate() {
            prop_assert_eq!(batch.sample(index), forest.predict_all(row).as_slice());
        }
        // The thread-sharded path must stitch shards back bit-identically,
        // for shard sizes smaller and larger than the batch.
        for shard_rows in [1usize, 3, 1024] {
            prop_assert_eq!(&compiled.par_predict_all_batch(dataset.features(), shard_rows), &batch);
        }

        // Probe-set parity on instances the forest never saw, including
        // rows that are entirely NaN/±inf.
        let probe_matrix = DenseMatrix::from_rows(&probes).unwrap();
        let probe_batch = compiled.predict_all_batch(&probe_matrix);
        for (index, probe) in probes.iter().enumerate() {
            prop_assert_eq!(probe_batch.sample(index), forest.predict_all(probe).as_slice());
            prop_assert_eq!(compiled.predict(probe), forest.predict(probe));
            prop_assert_eq!(compiled.predict_all(probe), forest.predict_all(probe));
        }

        // Vote counts agree with the per-tree labels they summarize.
        let votes = compiled.positive_vote_counts(&probe_matrix);
        for (index, &vote) in votes.iter().enumerate() {
            prop_assert_eq!(vote as usize, probe_batch.positive_votes(index));
        }
    }

    /// The batch-parity property over k-class label spaces: compiled
    /// predictions, plurality votes and per-class counts must all agree
    /// with the recursive reference for every k of the sweep, and serde
    /// round trips must preserve the class count.
    #[test]
    fn compiled_batch_matches_recursive_predictions_for_k_classes(
        rows in proptest::collection::vec(proptest::collection::vec(feature_value(), 4), 12..48),
        probes in proptest::collection::vec(proptest::collection::vec(feature_value(), 4), 1..24),
        class_picks in proptest::collection::vec(any::<u8>(), 48),
        k_pick in 0usize..4,
        num_trees in 1usize..7,
        seed in 0u64..1000,
    ) {
        let num_classes = [2usize, 3, 5, 10][k_pick];
        let dataset = k_class_dataset_from(rows, &class_picks, num_classes);
        let params = ForestParams {
            num_trees,
            tree: TreeParams::with_max_depth(5),
            ..ForestParams::default()
        };
        let forest = RandomForest::fit(&dataset, &params, &mut SmallRng::seed_from_u64(seed));
        prop_assert_eq!(forest.num_classes(), num_classes);
        let compiled = CompiledForest::compile(&forest);
        prop_assert_eq!(compiled.num_classes(), num_classes);

        prop_assert_eq!(compiled.predict_dataset(&dataset), forest.predict_dataset(&dataset));
        let probe_matrix = DenseMatrix::from_rows(&probes).unwrap();
        let probe_batch = compiled.predict_all_batch(&probe_matrix);
        prop_assert_eq!(probe_batch.num_classes(), num_classes);
        for (index, probe) in probes.iter().enumerate() {
            prop_assert_eq!(probe_batch.sample(index), forest.predict_all(probe).as_slice());
            prop_assert_eq!(compiled.predict(probe), forest.predict(probe));
            // The plurality of the batch agrees with the pointer walk's
            // plurality, tie-broken identically (lowest class index).
            prop_assert_eq!(probe_batch.majority(index), forest.predict(probe));
            // Per-class counts reconcile with the forest's own tally.
            prop_assert_eq!(probe_batch.class_votes(index), forest.vote_counts(probe));
        }

        // Serde preserves the class count along with behaviour.
        let json = serde_json::to_string(&compiled).unwrap();
        let restored: CompiledForest = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(restored.num_classes(), num_classes);
        prop_assert_eq!(&restored, &compiled);
    }

    #[test]
    fn json_round_trips_preserve_predictions_exactly(
        rows in proptest::collection::vec(proptest::collection::vec(feature_value(), 3), 6..32),
        probes in proptest::collection::vec(proptest::collection::vec(feature_value(), 3), 1..16),
        label_bits in proptest::collection::vec(any::<bool>(), 32),
        seed in 0u64..1000,
    ) {
        let dataset = dataset_from(rows, &label_bits);
        let params = ForestParams {
            num_trees: 3,
            tree: TreeParams::with_max_depth(6),
            ..ForestParams::default()
        };
        let forest = RandomForest::fit(&dataset, &params, &mut SmallRng::seed_from_u64(seed));
        let compiled = CompiledForest::compile(&forest);

        let forest_json = serde_json::to_string(&forest).unwrap();
        let restored_forest: RandomForest = serde_json::from_str(&forest_json).unwrap();
        prop_assert_eq!(&restored_forest, &forest);

        let compiled_json = serde_json::to_string(&compiled).unwrap();
        let restored_compiled: CompiledForest = serde_json::from_str(&compiled_json).unwrap();
        prop_assert_eq!(&restored_compiled, &compiled);

        let probe_matrix = DenseMatrix::from_rows(&probes).unwrap();
        prop_assert_eq!(
            restored_compiled.predict_batch(&probe_matrix),
            compiled.predict_batch(&probe_matrix)
        );
        for probe in &probes {
            prop_assert_eq!(restored_forest.predict_all(probe), forest.predict_all(probe));
            prop_assert_eq!(restored_compiled.predict_all(probe), compiled.predict_all(probe));
        }

        // Compiling the restored pointer forest reproduces the compiled
        // artefact bit for bit: thresholds survived the text round-trip.
        prop_assert_eq!(&CompiledForest::compile(&restored_forest), &compiled);
    }
}
