//! Parity and property tests for the split-search strategies.
//!
//! The presorted [`SplitStrategy::Exact`] search must reproduce the naive
//! reference algorithm ([`SplitStrategy::ExactNaive`]) exactly: same
//! thresholds, same structure, same predictions. The quantile
//! [`SplitStrategy::Histogram`] search is an approximation and is held to
//! a prediction-agreement tolerance instead.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wdte_data::{Dataset, DenseMatrix, Label, SyntheticSpec};
use wdte_trees::{DecisionTree, ForestParams, RandomForest, SplitStrategy, TreeParams};

/// The presorted builder sums weighted counts in the same (ascending row)
/// order as the naive builder's index lists, so parity is *bit-exact*:
/// identical structure, thresholds, labels and leaf counts.
fn assert_trees_equivalent(exact: &DecisionTree, naive: &DecisionTree) {
    assert_eq!(exact, naive, "presorted tree must equal naive tree bit-for-bit");
}

fn dataset_from(rows: Vec<Vec<f64>>, label_bits: &[bool]) -> Dataset {
    let labels: Vec<Label> = label_bits
        .iter()
        .take(rows.len())
        .map(|&b| if b { Label::Positive } else { Label::Negative })
        .collect();
    Dataset::new("parity", DenseMatrix::from_rows(&rows).unwrap(), labels).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole guarantee: presorted exact trees are *identical* to
    /// naive-search trees on NaN-free inputs — structure, thresholds and
    /// all — for unit and non-unit weights alike.
    #[test]
    fn presorted_exact_trees_match_the_naive_reference(
        rows in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 5), 10..80),
        label_bits in proptest::collection::vec(any::<bool>(), 80),
        weight_bumps in proptest::collection::vec(1.0f64..20.0, 80),
        max_depth in 2usize..8
    ) {
        let dataset = dataset_from(rows, &label_bits);
        let weights: Vec<f64> = weight_bumps[..dataset.len()].to_vec();
        let naive_params = TreeParams {
            max_depth: Some(max_depth),
            strategy: SplitStrategy::ExactNaive,
            ..TreeParams::default()
        };
        let exact_params = TreeParams { strategy: SplitStrategy::Exact, ..naive_params };
        let naive = DecisionTree::fit_weighted(&dataset, &weights, None, &naive_params);
        let exact = DecisionTree::fit_weighted(&dataset, &weights, None, &exact_params);
        assert_trees_equivalent(&exact, &naive);
        // Belt and braces: identical predictions on off-training probes.
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..20 {
            use rand::Rng;
            let probe: Vec<f64> = (0..dataset.num_features()).map(|_| rng.gen_range(0.0..1.0)).collect();
            prop_assert_eq!(exact.predict(&probe), naive.predict(&probe));
        }
    }

    /// Whole forests agree too: the strategy change must not perturb RNG
    /// consumption (feature subsets) or tree interleaving.
    #[test]
    fn presorted_exact_forests_match_the_naive_reference(seed in 0u64..24) {
        let dataset = SyntheticSpec::breast_cancer_like().scaled(0.3)
            .generate(&mut SmallRng::seed_from_u64(seed));
        let naive_params = ForestParams {
            num_trees: 5,
            tree: TreeParams { strategy: SplitStrategy::ExactNaive, ..TreeParams::default() },
            ..ForestParams::default()
        };
        let exact_params = ForestParams {
            tree: TreeParams { strategy: SplitStrategy::Exact, ..TreeParams::default() },
            ..naive_params
        };
        let naive = RandomForest::fit(&dataset, &naive_params, &mut SmallRng::seed_from_u64(seed + 1000));
        let exact = RandomForest::fit(&dataset, &exact_params, &mut SmallRng::seed_from_u64(seed + 1000));
        prop_assert_eq!(exact.feature_subsets(), naive.feature_subsets());
        for (a, b) in exact.trees().iter().zip(naive.trees()) {
            assert_trees_equivalent(a, b);
        }
    }

    /// Histogram trees stay close to exact trees on training data: with
    /// generous bins on small data the quantile edges recover most exact
    /// thresholds.
    #[test]
    fn histogram_trees_agree_with_exact_on_most_training_points(
        rows in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 4), 30..80),
        label_bits in proptest::collection::vec(any::<bool>(), 80)
    ) {
        let dataset = dataset_from(rows, &label_bits);
        let exact = DecisionTree::fit(&dataset, &TreeParams {
            max_depth: Some(4),
            strategy: SplitStrategy::Exact,
            ..TreeParams::default()
        });
        let histogram = DecisionTree::fit(&dataset, &TreeParams {
            max_depth: Some(4),
            strategy: SplitStrategy::Histogram { bins: 255 },
            ..TreeParams::default()
        });
        let agree = dataset
            .iter()
            .filter(|(row, _)| exact.predict(row) == histogram.predict(row))
            .count();
        let agreement = agree as f64 / dataset.len() as f64;
        prop_assert!(agreement >= 0.9, "histogram/exact agreement only {agreement}");
    }
}

#[test]
fn all_strategies_are_deterministic_for_a_fixed_seed() {
    let dataset = SyntheticSpec::breast_cancer_like()
        .scaled(0.4)
        .generate(&mut SmallRng::seed_from_u64(3));
    for strategy in [
        SplitStrategy::Exact,
        SplitStrategy::ExactNaive,
        SplitStrategy::Histogram { bins: 64 },
    ] {
        let params = ForestParams {
            num_trees: 6,
            tree: TreeParams {
                strategy,
                ..TreeParams::default()
            },
            ..ForestParams::default()
        };
        let a = RandomForest::fit(&dataset, &params, &mut SmallRng::seed_from_u64(11));
        let b = RandomForest::fit(&dataset, &params, &mut SmallRng::seed_from_u64(11));
        assert_eq!(a, b, "strategy {strategy:?} must be deterministic");
    }
}

#[test]
fn histogram_forest_learns_the_tabular_standin() {
    let dataset = SyntheticSpec::breast_cancer_like().generate(&mut SmallRng::seed_from_u64(5));
    let mut rng = SmallRng::seed_from_u64(6);
    let (train, test) = dataset.split_stratified(0.7, &mut rng);
    let params = ForestParams {
        num_trees: 20,
        tree: TreeParams {
            strategy: SplitStrategy::Histogram { bins: 64 },
            ..TreeParams::default()
        },
        ..ForestParams::default()
    };
    let forest = RandomForest::fit(&train, &params, &mut rng);
    let accuracy = forest.accuracy(&test);
    assert!(accuracy > 0.9, "histogram forest accuracy too low: {accuracy}");
}

#[test]
fn adjacent_double_values_terminate_and_separate_cleanly() {
    // For adjacent doubles the naive midpoint can round up to the larger
    // value, which would send both samples left, desynchronize the
    // partition from the recorded split, and (in a two-value node) grow
    // the same split forever. `midpoint_threshold` falls back to the lower
    // value; both exact strategies must terminate and classify perfectly.
    let a = 1.0 + f64::EPSILON; // odd mantissa: midpoint rounds up to `b`
    let b = 1.0 + 2.0 * f64::EPSILON;
    let rows = vec![vec![a], vec![b], vec![a], vec![b]];
    let labels = vec![Label::Negative, Label::Positive, Label::Negative, Label::Positive];
    let dataset = Dataset::new("ulp", DenseMatrix::from_rows(&rows).unwrap(), labels).unwrap();
    for strategy in [SplitStrategy::Exact, SplitStrategy::ExactNaive] {
        let tree = DecisionTree::fit(
            &dataset,
            &TreeParams {
                strategy,
                ..TreeParams::default()
            },
        );
        assert_eq!(tree.accuracy(&dataset), 1.0, "{strategy:?}");
        assert_eq!(tree.num_leaves(), 2, "{strategy:?}");
        assert_eq!(tree.predict(&[a]), Label::Negative);
        assert_eq!(tree.predict(&[b]), Label::Positive);
    }
}

#[test]
fn sample_weights_behave_identically_across_exact_strategies() {
    // The watermark loop's mechanism: a heavily weighted flipped sample
    // must be memorized — by both exact implementations, identically.
    let dataset = SyntheticSpec::breast_cancer_like()
        .scaled(0.3)
        .generate(&mut SmallRng::seed_from_u64(9));
    let flipped = dataset.with_labels_flipped_at(&[0, 1]).unwrap();
    let mut weights = vec![1.0; flipped.len()];
    weights[0] = 500.0;
    weights[1] = 500.0;
    for strategy in [SplitStrategy::Exact, SplitStrategy::ExactNaive] {
        let params = TreeParams {
            strategy,
            ..TreeParams::default()
        };
        let tree = DecisionTree::fit_weighted(&flipped, &weights, None, &params);
        assert_eq!(
            tree.predict(flipped.instance(0)),
            flipped.label(0),
            "{strategy:?}"
        );
        assert_eq!(
            tree.predict(flipped.instance(1)),
            flipped.label(1),
            "{strategy:?}"
        );
    }
}
