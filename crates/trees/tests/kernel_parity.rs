//! Kernel parity: every inference kernel — scalar, blocked, quantized and
//! the autotuned `Auto` — must be bit-identical to the recursive walk, on
//! trained forests over adversarial feature values (`NaN`, `±inf`, signed
//! zeros), on hand-built trees whose thresholds sit exactly on the
//! `f32`/`f64` rounding boundary (the quantized kernel's taint window),
//! and on the degenerate shapes the scalar tests already pin: leaf-only
//! trees and very deep chains.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wdte_data::{Dataset, DenseMatrix, Label};
use wdte_trees::{CompiledForest, ForestParams, Kernel, RandomForest, TreeParams};

const KERNELS: [Kernel; 4] = [Kernel::Scalar, Kernel::Blocked, Kernel::Quantized, Kernel::Auto];

/// Feature values drawn from a finite range plus the non-finite specials
/// traversal must handle deterministically.
fn feature_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        -2.0f64..2.0,
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(0.0),
        Just(-0.0),
    ]
}

/// Thresholds sitting exactly on, between, or one step past adjacent
/// `f32` values — the only region where an `f32` compare can disagree
/// with the exact `f64` one, which the quantized kernel's screen must
/// catch.
struct BoundaryThreshold;

impl Strategy for BoundaryThreshold {
    type Value = f64;

    fn generate(&self, rng: &mut proptest::TestRng) -> f64 {
        let raw = (-4.0f64..4.0).generate(rng);
        let lo = f64::from(raw as f32);
        let hi = f64::from((raw as f32).next_up());
        match (0u32..4).generate(rng) {
            0 => lo,                   // exactly representable in f32
            1 => lo + (hi - lo) * 0.5, // between two f32 neighbours
            2 => hi,
            _ => raw, // generic f64
        }
    }
}

fn dataset_from(rows: Vec<Vec<f64>>, label_bits: &[bool]) -> Dataset {
    let labels: Vec<Label> = label_bits[..rows.len()]
        .iter()
        .map(|&b| if b { Label::Positive } else { Label::Negative })
        .collect();
    Dataset::new("kernel-parity", DenseMatrix::from_rows(&rows).unwrap(), labels).unwrap()
}

/// A k-class dataset whose labels are arbitrary class picks reduced
/// modulo `num_classes`.
fn k_class_dataset_from(rows: Vec<Vec<f64>>, class_picks: &[u8], num_classes: usize) -> Dataset {
    let labels: Vec<Label> = class_picks[..rows.len()]
        .iter()
        .map(|&pick| Label::from_index(pick as usize % num_classes).unwrap())
        .collect();
    Dataset::with_classes(
        "kernel-parity-k",
        DenseMatrix::from_rows(&rows).unwrap(),
        labels,
        num_classes,
    )
    .unwrap()
}

/// A single-feature chain tree: each internal node sends `x <= t` to a
/// leaf and larger values onward, so one probe exercises every threshold
/// until its first `<=` hit. Built through `from_raw_parts` so thresholds
/// are taken verbatim (training would snap them to data midpoints). Leaf
/// labels cycle through all `num_classes` classes so wrong turns change
/// verdicts.
fn chain_forest(thresholds: &[f64], num_classes: usize) -> CompiledForest {
    let depth = thresholds.len();
    let nodes = 2 * depth + 1;
    let mut feature = vec![u32::MAX; nodes];
    let mut threshold = vec![0.0f64; nodes];
    let mut left = vec![0u32; nodes];
    let right: Vec<u32> = (0..nodes as u32).map(|n| n + 2).collect();
    for (step, &t) in thresholds.iter().enumerate() {
        let node = 2 * step;
        feature[node] = 0;
        threshold[node] = t;
        left[node] = node as u32 + 1;
        left[node + 1] = (step % num_classes) as u32;
    }
    left[nodes - 1] = 1 % num_classes as u32; // terminal leaf
    CompiledForest::from_raw_parts(
        feature,
        threshold,
        left,
        right,
        vec![0, nodes as u32],
        1,
        num_classes,
    )
    .expect("chain forest is structurally valid")
}

/// Asserts every kernel reproduces the recursive per-tree walk on `rows`,
/// through the batch, vote and sharded entry points.
fn assert_kernels_match(compiled: &CompiledForest, rows: &[Vec<f64>]) {
    let matrix = DenseMatrix::from_rows(rows).unwrap();
    let reference: Vec<Vec<Label>> = rows.iter().map(|row| compiled.predict_all(row)).collect();
    for kernel in KERNELS {
        let batch = compiled.predict_all_batch_with(&matrix, kernel);
        for (index, expected) in reference.iter().enumerate() {
            assert_eq!(
                batch.sample(index),
                expected.as_slice(),
                "kernel {kernel}, row {index}"
            );
        }
        let votes = compiled.positive_vote_counts_with(&matrix, kernel);
        for (index, &vote) in votes.iter().enumerate() {
            assert_eq!(
                vote as usize,
                batch.positive_votes(index),
                "kernel {kernel}, row {index}"
            );
        }
        // Per-class counts: every row sums to the tree count, matches the
        // per-tree labels class by class, and its class-1 column is the
        // one-vs-rest positive count above.
        let classes = compiled.num_classes().max(2);
        let class_votes = compiled.class_vote_counts_with(&matrix, kernel);
        assert_eq!(class_votes.len(), rows.len() * classes, "kernel {kernel}");
        for (index, row_votes) in class_votes.chunks_exact(classes).enumerate() {
            assert_eq!(
                row_votes.iter().map(|&v| v as usize).sum::<usize>(),
                compiled.num_trees(),
                "kernel {kernel}, row {index}"
            );
            assert_eq!(
                row_votes.iter().map(|&v| v as usize).collect::<Vec<_>>(),
                batch.class_votes(index),
                "kernel {kernel}, row {index}"
            );
            assert_eq!(row_votes[1] as usize, batch.positive_votes(index));
        }
        assert_eq!(
            compiled.predict_batch_with(&matrix, kernel),
            (0..rows.len()).map(|i| batch.majority(i)).collect::<Vec<_>>(),
            "kernel {kernel}"
        );
        // The sharded path must stitch bit-identically under every kernel;
        // a width-3 install forces real sharding even on one core.
        rayon::ThreadPoolBuilder::new().num_threads(3).build().unwrap().install(|| {
            for shard_rows in [1usize, 3, 1024] {
                assert_eq!(
                    &compiled.par_predict_all_batch_with(&matrix, shard_rows, kernel),
                    &batch,
                    "kernel {kernel}, shard_rows {shard_rows}"
                );
            }
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kernels_match_recursive_walk_on_trained_forests(
        rows in proptest::collection::vec(proptest::collection::vec(feature_value(), 4), 6..48),
        probes in proptest::collection::vec(proptest::collection::vec(feature_value(), 4), 1..24),
        label_bits in proptest::collection::vec(any::<bool>(), 48),
        num_trees in 1usize..7,
        seed in 0u64..1000,
    ) {
        let dataset = dataset_from(rows, &label_bits);
        let params = ForestParams {
            num_trees,
            tree: TreeParams::with_max_depth(5),
            ..ForestParams::default()
        };
        let forest = RandomForest::fit(&dataset, &params, &mut SmallRng::seed_from_u64(seed));
        let compiled = CompiledForest::compile(&forest);

        // The recursive pointer walk is the ground truth the compiled walk
        // is pinned to elsewhere; check it directly here too.
        for probe in &probes {
            prop_assert_eq!(compiled.predict_all(probe), forest.predict_all(probe));
        }
        assert_kernels_match(&compiled, &probes);
    }

    /// The trained-forest parity property, over k-class label spaces: for
    /// every k in the sweep the kernels must agree with the recursive walk
    /// on adversarial feature values, and the per-class vote counts must
    /// reconcile with the per-tree labels.
    #[test]
    fn kernels_match_recursive_walk_on_k_class_forests(
        rows in proptest::collection::vec(proptest::collection::vec(feature_value(), 4), 12..48),
        probes in proptest::collection::vec(proptest::collection::vec(feature_value(), 4), 1..24),
        class_picks in proptest::collection::vec(any::<u8>(), 48),
        k_pick in 0usize..4,
        num_trees in 1usize..7,
        seed in 0u64..1000,
    ) {
        let num_classes = [2usize, 3, 5, 10][k_pick];
        let dataset = k_class_dataset_from(rows, &class_picks, num_classes);
        let params = ForestParams {
            num_trees,
            tree: TreeParams::with_max_depth(5),
            ..ForestParams::default()
        };
        let forest = RandomForest::fit(&dataset, &params, &mut SmallRng::seed_from_u64(seed));
        let compiled = CompiledForest::compile(&forest);
        prop_assert_eq!(compiled.num_classes(), num_classes);

        for probe in &probes {
            prop_assert_eq!(compiled.predict_all(probe), forest.predict_all(probe));
            prop_assert_eq!(compiled.predict(probe), forest.predict(probe));
        }
        assert_kernels_match(&compiled, &probes);
    }

    #[test]
    fn kernels_agree_on_f32_boundary_thresholds(
        thresholds in proptest::collection::vec(BoundaryThreshold, 1..24),
        extra in proptest::collection::vec(feature_value(), 8),
        num_classes in prop_oneof![Just(2usize), Just(3), Just(5), Just(10)],
    ) {
        let compiled = chain_forest(&thresholds, num_classes);
        // Probe exactly on, one f32 ULP around, and away from every
        // threshold — the values whose `f32` compare can lie.
        let mut probes: Vec<Vec<f64>> = Vec::new();
        for &t in &thresholds {
            let lo = f64::from(t as f32);
            probes.push(vec![t]);
            probes.push(vec![lo]);
            probes.push(vec![f64::from((t as f32).next_up())]);
            probes.push(vec![f64::from((t as f32).next_down())]);
            probes.push(vec![lo + (f64::from((t as f32).next_up()) - lo) * 0.5]);
        }
        probes.extend(extra.into_iter().map(|v| vec![v]));
        assert_kernels_match(&compiled, &probes);
    }
}

#[test]
fn leaf_only_trees_agree_across_kernels() {
    let rows = vec![vec![0.0], vec![1.0]];
    let labels = vec![Label::Positive, Label::Positive];
    let dataset = Dataset::new("pure", DenseMatrix::from_rows(&rows).unwrap(), labels).unwrap();
    let forest = RandomForest::fit(
        &dataset,
        &ForestParams {
            num_trees: 3,
            tree: TreeParams::with_max_depth(0),
            ..ForestParams::default()
        },
        &mut SmallRng::seed_from_u64(7),
    );
    let compiled = CompiledForest::compile(&forest);
    let probes = vec![vec![0.25], vec![f64::NAN], vec![f64::INFINITY]];
    assert_kernels_match(&compiled, &probes);
}

#[test]
fn deep_chains_walk_identically_across_kernels() {
    // 2048 levels — deeper than any trained tree, stressing the lockstep
    // step count, the BFS renumbering and the quantized fallback re-walk.
    // Run the chain with every k of the sweep: the leaf labels cycle, so
    // for k > 2 a mis-stepped walk lands on a different class index.
    let thresholds: Vec<f64> = (0..2048).map(|i| f64::from(i) * 0.001 - 1.0).collect();
    for num_classes in [2usize, 3, 5, 10] {
        let compiled = chain_forest(&thresholds, num_classes);
        let probes: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![f64::from(i) * 0.061 - 1.2])
            .chain([vec![f64::NAN], vec![f64::INFINITY], vec![f64::NEG_INFINITY]])
            .collect();
        assert_kernels_match(&compiled, &probes);
    }
}

/// k = 2 bit-identity regression: a fixed-seed forest over a fixed
/// dataset must keep producing exactly these majority labels and positive
/// vote counts, under every kernel. The parity properties above tie all
/// kernels to the recursive walk for *one* build; pinning literal values
/// additionally catches any future change that shifts training or
/// inference for binary models, however internally consistent.
#[test]
fn fixed_seed_binary_outputs_are_pinned() {
    let mut rng = SmallRng::seed_from_u64(0xD0C5);
    let rows: Vec<Vec<f64>> =
        (0..64).map(|_| (0..4).map(|_| rng.gen_range(-2.0..2.0)).collect()).collect();
    let label_bits: Vec<bool> = (0..64).map(|_| rng.gen_bool(0.5)).collect();
    let dataset = dataset_from(rows, &label_bits);
    let params = ForestParams {
        num_trees: 9,
        tree: TreeParams::with_max_depth(6),
        ..ForestParams::default()
    };
    let forest = RandomForest::fit(&dataset, &params, &mut SmallRng::seed_from_u64(41));
    let compiled = CompiledForest::compile(&forest);
    assert_eq!(compiled.num_classes(), 2);

    let probes: Vec<Vec<f64>> = (0..12)
        .map(|i| (0..4).map(|j| f64::from(i * 4 + j) * 0.17 - 3.9).collect())
        .collect();
    let matrix = DenseMatrix::from_rows(&probes).unwrap();

    let expected_labels: Vec<usize> = vec![1, 1, 1, 0, 1, 0, 0, 1, 0, 0, 0, 0];
    let expected_votes: Vec<u32> = vec![8, 8, 8, 4, 7, 2, 0, 9, 4, 4, 4, 4];
    for kernel in KERNELS {
        let labels: Vec<usize> = compiled
            .predict_batch_with(&matrix, kernel)
            .iter()
            .map(|label| label.index())
            .collect();
        assert_eq!(labels, expected_labels, "kernel {kernel}");
        assert_eq!(
            compiled.positive_vote_counts_with(&matrix, kernel),
            expected_votes,
            "kernel {kernel}"
        );
    }
}
