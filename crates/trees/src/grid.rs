//! Grid search over forest hyper-parameters with stratified k-fold cross
//! validation (`GridSearch(D_train, m)` in Algorithm 1).

use crate::forest::RandomForest;
use crate::params::{ForestParams, SplitCriterion, SplitStrategy, TreeParams};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use wdte_data::{stratified_k_folds, Dataset};

/// The hyper-parameter grid explored by [`GridSearch`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamGrid {
    /// Candidate maximum depths (`None` = unlimited).
    pub max_depths: Vec<Option<usize>>,
    /// Candidate maximum leaf counts (`None` = unlimited).
    pub max_leaves: Vec<Option<usize>>,
    /// Candidate minimum samples per leaf.
    pub min_samples_leaf: Vec<usize>,
    /// Candidate split criteria.
    pub criteria: Vec<SplitCriterion>,
}

impl Default for ParamGrid {
    fn default() -> Self {
        Self {
            max_depths: vec![Some(4), Some(8), Some(12), None],
            max_leaves: vec![Some(16), Some(64), None],
            min_samples_leaf: vec![1],
            criteria: vec![SplitCriterion::Gini],
        }
    }
}

impl ParamGrid {
    /// A deliberately small grid for tests and quick experiments.
    pub fn small() -> Self {
        Self {
            max_depths: vec![Some(4), Some(8)],
            max_leaves: vec![Some(32), None],
            min_samples_leaf: vec![1],
            criteria: vec![SplitCriterion::Gini],
        }
    }

    /// Enumerates every [`TreeParams`] combination in the grid, using the
    /// default (exact presorted) split strategy.
    pub fn combinations(&self) -> Vec<TreeParams> {
        self.combinations_with(SplitStrategy::default())
    }

    /// Enumerates every [`TreeParams`] combination in the grid with the
    /// given split strategy. The grid does not explore strategies — the
    /// strategy is a speed/accuracy trade-off chosen per workload, not a
    /// tuned hyper-parameter.
    pub fn combinations_with(&self, strategy: SplitStrategy) -> Vec<TreeParams> {
        let mut combos = Vec::new();
        for &max_depth in &self.max_depths {
            for &max_leaves in &self.max_leaves {
                for &min_samples_leaf in &self.min_samples_leaf {
                    for &criterion in &self.criteria {
                        combos.push(TreeParams {
                            max_depth,
                            max_leaves,
                            min_samples_split: 2,
                            min_samples_leaf,
                            criterion,
                            strategy,
                        });
                    }
                }
            }
        }
        combos
    }
}

/// Result of evaluating one grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridPointResult {
    /// The per-tree hyper-parameters evaluated.
    pub tree_params: TreeParams,
    /// Mean validation accuracy across folds.
    pub mean_accuracy: f64,
    /// Per-fold validation accuracies.
    pub fold_accuracies: Vec<f64>,
}

/// Outcome of a full grid search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSearchResult {
    /// Forest parameters achieving the best mean validation accuracy.
    pub best_params: ForestParams,
    /// Mean validation accuracy of the best grid point.
    pub best_accuracy: f64,
    /// Every evaluated grid point, in evaluation order.
    pub all_results: Vec<GridPointResult>,
}

/// Cross-validated grid search over [`ParamGrid`] for a forest of
/// `base_params.num_trees` trees.
#[derive(Debug, Clone)]
pub struct GridSearch {
    /// Grid of per-tree hyper-parameters to explore.
    pub grid: ParamGrid,
    /// Number of cross-validation folds.
    pub folds: usize,
    /// Forest-level parameters (tree count, feature subset) reused for
    /// every grid point.
    pub base_params: ForestParams,
}

impl GridSearch {
    /// Creates a grid search with the default grid and 3 folds.
    pub fn new(base_params: ForestParams) -> Self {
        Self {
            grid: ParamGrid::default(),
            folds: 3,
            base_params,
        }
    }

    /// Creates a grid search with a small grid, for fast runs.
    pub fn fast(base_params: ForestParams) -> Self {
        Self {
            grid: ParamGrid::small(),
            folds: 2,
            base_params,
        }
    }

    /// Runs the search and returns the best hyper-parameters.
    ///
    /// Every (grid point, fold) pair is an independent task fanned out
    /// across worker threads, each training from its own seed derived from
    /// `rng` — so results are bit-identical for a fixed seed regardless of
    /// the worker-thread count, and load balances even when one expensive
    /// grid point (e.g. unlimited depth) dominates. Ties are broken towards
    /// the *smaller* structural budget (shallower, fewer leaves), matching
    /// the intuition that the paper's adjustment heuristic prefers compact
    /// trees.
    pub fn run<R: Rng + ?Sized>(&self, dataset: &Dataset, rng: &mut R) -> GridSearchResult {
        assert!(!dataset.is_empty(), "grid search needs data");
        let folds = stratified_k_folds(dataset, self.folds.max(2), rng);
        // Materialize each fold's train/validation datasets once, shared by
        // every grid point: all points then reuse one presort cache per
        // fold instead of re-selecting (and re-sorting) per point.
        let fold_datasets: Vec<(Dataset, Dataset)> = folds
            .iter()
            .map(|fold| {
                let train = dataset.select(&fold.train_indices).expect("fold indices valid");
                let validation = dataset.select(&fold.validation_indices).expect("fold indices valid");
                (train, validation)
            })
            .collect();
        // Grid points inherit the base split strategy.
        let combos = self.grid.combinations_with(self.base_params.tree.strategy);
        // One derived seed per (grid point, fold) pair, drawn before the
        // fan-out in (point-major, fold-minor) order, so results are
        // bit-identical no matter how tasks land on threads — and
        // identical to the earlier flattened single-level implementation,
        // which consumed the master RNG in the same order.
        let num_folds = fold_datasets.len();
        let seeds: Vec<u64> = (0..combos.len() * num_folds).map(|_| rng.gen()).collect();

        // Nested fan-out: grid points at the outer level, folds inside
        // each point (and `RandomForest::fit` fans out per tree below
        // that). The work-stealing pool schedules all three levels
        // together, so an expensive grid point (e.g. unlimited depth)
        // still spreads its folds and trees across idle workers instead
        // of serializing under one.
        let fold_results: Vec<Vec<Option<f64>>> = (0..combos.len())
            .into_par_iter()
            .map(|combo| -> Vec<Option<f64>> {
                (0..num_folds)
                    .into_par_iter()
                    .map(|fold| {
                        let (train, validation) = &fold_datasets[fold];
                        if train.is_empty() || validation.is_empty() {
                            return None;
                        }
                        let params = self.base_params.with_tree_params(combos[combo]);
                        let seed = seeds[combo * num_folds + fold];
                        let forest =
                            RandomForest::fit(train, &params, &mut SmallRng::seed_from_u64(seed));
                        Some(forest.accuracy(validation))
                    })
                    .collect()
            })
            .collect();

        let all_results: Vec<GridPointResult> = combos
            .iter()
            .enumerate()
            .map(|(combo, tree_params)| {
                let fold_accuracies: Vec<f64> = fold_results[combo].iter().flatten().copied().collect();
                let mean_accuracy = if fold_accuracies.is_empty() {
                    0.0
                } else {
                    fold_accuracies.iter().sum::<f64>() / fold_accuracies.len() as f64
                };
                GridPointResult {
                    tree_params: *tree_params,
                    mean_accuracy,
                    fold_accuracies,
                }
            })
            .collect();

        let best = all_results
            .iter()
            .max_by(|a, b| {
                a.mean_accuracy
                    .partial_cmp(&b.mean_accuracy)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| {
                        // Prefer smaller budgets on ties: compare in reverse.
                        let size = |p: &GridPointResult| {
                            (
                                p.tree_params.max_depth.unwrap_or(usize::MAX),
                                p.tree_params.max_leaves.unwrap_or(usize::MAX),
                            )
                        };
                        size(b).cmp(&size(a))
                    })
            })
            .expect("grid has at least one point");

        GridSearchResult {
            best_params: self.base_params.with_tree_params(best.tree_params),
            best_accuracy: best.mean_accuracy,
            all_results,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdte_data::SyntheticSpec;

    #[test]
    fn grid_enumerates_all_combinations() {
        let grid = ParamGrid::default();
        assert_eq!(
            grid.combinations().len(),
            grid.max_depths.len()
                * grid.max_leaves.len()
                * grid.min_samples_leaf.len()
                * grid.criteria.len()
        );
    }

    #[test]
    fn search_returns_a_grid_member_and_reasonable_accuracy() {
        let dataset = SyntheticSpec::breast_cancer_like()
            .scaled(0.6)
            .generate(&mut SmallRng::seed_from_u64(2));
        let mut rng = SmallRng::seed_from_u64(3);
        let search = GridSearch::fast(ForestParams::with_trees(9));
        let result = search.run(&dataset, &mut rng);
        assert!(
            result.best_accuracy > 0.85,
            "best CV accuracy {}",
            result.best_accuracy
        );
        assert!(search.grid.combinations().contains(&result.best_params.tree));
        assert_eq!(result.all_results.len(), search.grid.combinations().len());
        assert_eq!(result.best_params.num_trees, 9);
    }

    #[test]
    fn search_is_identical_with_one_worker_and_many() {
        let dataset = SyntheticSpec::breast_cancer_like()
            .scaled(0.4)
            .generate(&mut SmallRng::seed_from_u64(4));
        let search = GridSearch::fast(ForestParams::with_trees(5));
        let parallel = search.run(&dataset, &mut SmallRng::seed_from_u64(13));
        let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let serial = pool.install(|| search.run(&dataset, &mut SmallRng::seed_from_u64(13)));
        assert_eq!(parallel.best_params, serial.best_params);
        assert_eq!(parallel.all_results, serial.all_results);
    }

    #[test]
    fn search_is_deterministic_for_a_fixed_seed() {
        let dataset = SyntheticSpec::breast_cancer_like()
            .scaled(0.4)
            .generate(&mut SmallRng::seed_from_u64(2));
        let search = GridSearch::fast(ForestParams::with_trees(5));
        let a = search.run(&dataset, &mut SmallRng::seed_from_u64(11));
        let b = search.run(&dataset, &mut SmallRng::seed_from_u64(11));
        assert_eq!(a.best_params, b.best_params);
        assert_eq!(a.best_accuracy, b.best_accuracy);
    }
}
