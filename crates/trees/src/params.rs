//! Hyper-parameters for decision trees and random forests.

use serde::{Deserialize, Serialize};

/// Impurity criterion used to score candidate splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SplitCriterion {
    /// Gini impurity (CART default).
    #[default]
    Gini,
    /// Shannon entropy / information gain.
    Entropy,
}

/// Algorithm used to search for the best split of a node.
///
/// All strategies optimize the same weighted impurity objective; they
/// differ in how candidate thresholds are enumerated and what per-node
/// work costs:
///
/// * [`SplitStrategy::Exact`] — presorted CART: per-feature sorted orders
///   are computed **once per dataset** (`Dataset::presort`), kept
///   partitioned per node through training, and scanned sequentially from
///   a column-major buffer. Equivalent splits to the naive algorithm with
///   no per-node sorting. This is the default.
/// * [`SplitStrategy::Histogram`] — LightGBM-style: feature values are
///   pre-bucketed into at most `bins` per-dataset quantile bins
///   (`Dataset::binning`); each node accumulates one weighted class
///   histogram per feature and only bin edges are candidate thresholds.
///   `O(s + bins)` per feature per node; an approximation suited to wide
///   data such as the 784-feature image workload.
/// * [`SplitStrategy::ExactNaive`] — the reference implementation that
///   re-sorts a gathered `(value, label, weight)` column for every
///   feature at every node. Kept as the parity oracle for `Exact` and as
///   the baseline the training benchmarks compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SplitStrategy {
    /// Presorted exact split search (default).
    #[default]
    Exact,
    /// Quantile-histogram approximate split search.
    Histogram {
        /// Maximum number of bins per feature (clamped to `2..=65535`).
        bins: usize,
    },
    /// Naive per-node-sort exact search (reference/baseline).
    ExactNaive,
}

/// Structural hyper-parameters of a single decision tree.
///
/// These are the hyper-parameters the paper's grid search tunes and its
/// `Adjust(H)` heuristic later shrinks: maximum depth and maximum number of
/// leaves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (root has depth 0); `None` means unlimited.
    pub max_depth: Option<usize>,
    /// Maximum number of leaves; `None` means unlimited. When set, the tree
    /// is grown best-first (largest impurity decrease first), matching
    /// sklearn's `max_leaf_nodes` behaviour.
    pub max_leaves: Option<usize>,
    /// Minimum number of samples required to consider splitting a node.
    pub min_samples_split: usize,
    /// Minimum number of samples each child of a split must receive.
    pub min_samples_leaf: usize,
    /// Impurity criterion.
    pub criterion: SplitCriterion,
    /// Split search algorithm (exact presorted by default).
    pub strategy: SplitStrategy,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: None,
            max_leaves: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            criterion: SplitCriterion::Gini,
            strategy: SplitStrategy::Exact,
        }
    }
}

impl TreeParams {
    /// Convenience constructor bounding depth only.
    pub fn with_max_depth(depth: usize) -> Self {
        Self {
            max_depth: Some(depth),
            ..Self::default()
        }
    }

    /// Returns a copy using the given split-search strategy.
    pub fn with_strategy(&self, strategy: SplitStrategy) -> Self {
        Self { strategy, ..*self }
    }

    /// Returns a copy with both structural budgets replaced. This is the
    /// primitive used by the watermarking hyper-parameter adjustment
    /// (`Adjust(H)`), which tightens depth and leaf count to
    /// `mean - std` of the values observed in a standard ensemble.
    pub fn with_budget(&self, max_depth: Option<usize>, max_leaves: Option<usize>) -> Self {
        Self {
            max_depth,
            max_leaves,
            ..*self
        }
    }

    /// Returns a copy with the structural budget relaxed by one step:
    /// depth + 2 and leaves * 2. Used as an escape hatch when the
    /// trigger-forcing loop cannot converge under the adjusted budget.
    pub fn relaxed(&self) -> Self {
        Self {
            max_depth: self.max_depth.map(|d| d + 2),
            max_leaves: self.max_leaves.map(|l| (l * 2).max(l + 2)),
            ..*self
        }
    }
}

/// How many features each tree of the forest sees.
///
/// The paper trains random forests *without bootstrap* in which "each tree
/// is a classifier trained on a subset of the features of the entire
/// training set"; this enum controls the size of that per-tree subset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum FeatureSubset {
    /// Use all features (degenerates to bagging-free, fully-correlated trees).
    All,
    /// Use `sqrt(d)` features, the common random-forest default.
    #[default]
    Sqrt,
    /// Use a fixed fraction of the features (clamped to at least one).
    Fraction(f64),
}

impl FeatureSubset {
    /// Number of features a tree sees for a `d`-dimensional dataset.
    pub fn size(&self, num_features: usize) -> usize {
        match *self {
            FeatureSubset::All => num_features,
            FeatureSubset::Sqrt => (num_features as f64).sqrt().round().max(1.0) as usize,
            FeatureSubset::Fraction(fraction) => {
                ((num_features as f64) * fraction).round().max(1.0) as usize
            }
        }
        .min(num_features.max(1))
    }
}

/// Hyper-parameters of a random forest without bootstrap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees `m` in the ensemble.
    pub num_trees: usize,
    /// Per-tree structural hyper-parameters.
    pub tree: TreeParams,
    /// Size of the per-tree feature subset.
    pub feature_subset: FeatureSubset,
}

impl Default for ForestParams {
    fn default() -> Self {
        Self {
            num_trees: 100,
            tree: TreeParams::default(),
            feature_subset: FeatureSubset::Sqrt,
        }
    }
}

impl ForestParams {
    /// Convenience constructor for an `m`-tree forest with default trees.
    pub fn with_trees(num_trees: usize) -> Self {
        Self {
            num_trees,
            ..Self::default()
        }
    }

    /// Returns a copy using the given per-tree parameters.
    pub fn with_tree_params(&self, tree: TreeParams) -> Self {
        Self { tree, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_unbounded_gini_trees() {
        let params = TreeParams::default();
        assert_eq!(params.max_depth, None);
        assert_eq!(params.max_leaves, None);
        assert_eq!(params.criterion, SplitCriterion::Gini);
        assert_eq!(params.min_samples_split, 2);
    }

    #[test]
    fn budget_override_keeps_other_fields() {
        let params = TreeParams {
            min_samples_leaf: 5,
            ..TreeParams::default()
        };
        let adjusted = params.with_budget(Some(4), Some(9));
        assert_eq!(adjusted.max_depth, Some(4));
        assert_eq!(adjusted.max_leaves, Some(9));
        assert_eq!(adjusted.min_samples_leaf, 5);
    }

    #[test]
    fn relaxation_grows_both_budgets() {
        let params = TreeParams::default().with_budget(Some(3), Some(4));
        let relaxed = params.relaxed();
        assert_eq!(relaxed.max_depth, Some(5));
        assert_eq!(relaxed.max_leaves, Some(8));
        // Unbounded budgets stay unbounded.
        let unbounded = TreeParams::default().relaxed();
        assert_eq!(unbounded.max_depth, None);
        assert_eq!(unbounded.max_leaves, None);
    }

    #[test]
    fn feature_subset_sizes() {
        assert_eq!(FeatureSubset::All.size(784), 784);
        assert_eq!(FeatureSubset::Sqrt.size(784), 28);
        assert_eq!(FeatureSubset::Sqrt.size(1), 1);
        assert_eq!(FeatureSubset::Fraction(0.5).size(30), 15);
        assert_eq!(FeatureSubset::Fraction(0.001).size(30), 1);
        assert_eq!(FeatureSubset::Fraction(2.0).size(30), 30);
    }

    #[test]
    fn forest_params_builders() {
        let params = ForestParams::with_trees(16).with_tree_params(TreeParams::with_max_depth(6));
        assert_eq!(params.num_trees, 16);
        assert_eq!(params.tree.max_depth, Some(6));
    }
}
